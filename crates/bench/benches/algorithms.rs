//! Per-ACK cost of every congestion avoidance algorithm.
//!
//! CAAI's substrate drives one `pkts_acked` + `cong_avoid` call per
//! received ACK, so per-ACK cost bounds how fast traces can be simulated.
//! This bench drives each of the 16 algorithms through a fixed ACK stream
//! spanning both slow start and congestion avoidance.

use caai_congestion::{Ack, AlgorithmId, Transport, ALL_WITH_EXTENSIONS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// ACKs per measured iteration: enough to cross from slow start into
/// congestion avoidance and exercise the steady-state growth path.
const ACKS: u64 = 4_096;

fn drive(algo: AlgorithmId) -> u32 {
    let mut cc = algo.build();
    let mut tp = Transport::new(1460);
    cc.init(&mut tp);
    tp.ssthresh = 64;
    let mut now = 0.0;
    for i in 0..ACKS {
        now += 0.001;
        let ack = Ack {
            now,
            acked: 1,
            rtt: 0.1 + (i % 7) as f64 * 0.001,
        };
        tp.snd_una += 1;
        tp.snd_nxt = tp.snd_una + u64::from(tp.cwnd);
        cc.pkts_acked(&mut tp, &ack);
        cc.cong_avoid(&mut tp, &ack);
    }
    tp.cwnd
}

fn bench_per_ack(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_ack_cost");
    group.throughput(Throughput::Elements(ACKS));
    for algo in ALL_WITH_EXTENSIONS {
        group.bench_with_input(BenchmarkId::from_parameter(algo), &algo, |b, &algo| {
            b.iter(|| black_box(drive(algo)));
        });
    }
    group.finish();
}

fn bench_loss_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("loss_event_cost");
    for algo in [
        AlgorithmId::Reno,
        AlgorithmId::CubicV2,
        AlgorithmId::Htcp,
        AlgorithmId::Yeah,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(algo), &algo, |b, &algo| {
            let mut cc = algo.build();
            let mut tp = Transport::new(1460);
            cc.init(&mut tp);
            tp.cwnd = 512;
            tp.srtt = 1.0;
            tp.min_rtt = 0.8;
            b.iter(|| {
                let ss = cc.ssthresh(black_box(&tp));
                cc.on_loss(&mut tp, caai_congestion::LossKind::Timeout, 1.0);
                tp.cwnd = 512; // restore for the next iteration
                black_box(ss)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_per_ack, bench_loss_event);
criterion_main!(benches);
