//! Census throughput (§VII-B, Table IV).
//!
//! One measured element is one server probed end to end: sample a network
//! condition, walk the `w_max` ladder in both environments, extract
//! features, classify. This is the unit the paper repeated ~63,000 times.
//! The scaling group drives `caai-engine`'s work-stealing scheduler
//! across worker counts; a separate pair compares the engine against the
//! thin in-memory `Census::run` wrapper at the same worker count.

use caai_core::census::Census;
use caai_core::classify::CaaiClassifier;
use caai_core::prober::ProberConfig;
use caai_core::training::{build_training_set, TrainingConfig};
use caai_engine::{AggregatingSink, CensusEngine, EngineConfig};
use caai_netem::rng::seeded;
use caai_netem::ConditionDb;
use caai_webmodel::{PopulationConfig, WebServer};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn make_census() -> Census {
    let db = ConditionDb::paper_2011();
    let mut rng = seeded(1);
    let data = build_training_set(&TrainingConfig::quick(2), &db, &mut rng);
    let classifier = CaaiClassifier::train(&data, &mut rng);
    Census::new(classifier, db, ProberConfig::default())
}

fn population(n: u32) -> Vec<WebServer> {
    PopulationConfig::small(n).generate(&mut seeded(2))
}

fn engine_run(census: &Census, servers: &[WebServer], workers: usize) -> usize {
    let engine = CensusEngine::new(
        census.clone(),
        EngineConfig {
            seed: 9,
            workers,
            ..EngineConfig::default()
        },
    );
    let mut agg = AggregatingSink::new();
    let outcome = engine
        .run(servers, &mut [&mut agg], None)
        .expect("no I/O in bench");
    outcome.report.total
}

fn bench_probe_one(c: &mut Criterion) {
    let census = make_census();
    let servers = population(16);
    let mut group = c.benchmark_group("census_probe_one");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    group.bench_function("single_server", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = &servers[i % servers.len()];
            i += 1;
            black_box(census.probe_seeded(s, 3))
        });
    });
    group.finish();
}

fn bench_engine_thread_scaling(c: &mut Criterion) {
    let census = make_census();
    let servers = population(64);
    let mut group = c.benchmark_group("census_engine_thread_scaling");
    group.sample_size(10);
    group.throughput(Throughput::Elements(servers.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(engine_run(&census, &servers, w)));
        });
    }
    group.finish();
}

fn bench_engine_vs_thin_wrapper(c: &mut Criterion) {
    let census = make_census();
    let servers = population(64);
    let mut group = c.benchmark_group("census_engine_vs_wrapper");
    group.sample_size(10);
    group.throughput(Throughput::Elements(servers.len() as u64));
    group.bench_function("engine_4_workers", |b| {
        b.iter(|| black_box(engine_run(&census, &servers, 4)));
    });
    group.bench_function("core_run_4_workers", |b| {
        b.iter(|| black_box(census.run(&servers, 9, 4)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_probe_one,
    bench_engine_thread_scaling,
    bench_engine_vs_thin_wrapper
);
criterion_main!(benches);
