//! Cost of CAAI Step 2 (feature extraction, §V).
//!
//! Feature extraction runs once per gathered trace pair; its cost is tiny
//! next to gathering, but it sits on the census's critical path and its
//! boundary-RTT search is O(rounds), so we pin it down. Traces are
//! gathered once outside the measurement loop.

use caai_congestion::{AlgorithmId, ALL_IDENTIFIED};
use caai_core::features::{estimate_ack_loss, extract, extract_pair};
use caai_core::prober::{Prober, ProberConfig};
use caai_core::server_under_test::ServerUnderTest;
use caai_core::trace::TracePair;
use caai_netem::rng::seeded;
use caai_netem::PathConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn gather_pair(algo: AlgorithmId) -> TracePair {
    let server = ServerUnderTest::ideal(algo);
    let prober = Prober::new(ProberConfig::default());
    let mut rng = seeded(3);
    prober
        .gather(&server, &PathConfig::clean(), &mut rng)
        .pair
        .expect("ideal server")
}

fn bench_extract_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract_pair");
    for algo in [
        AlgorithmId::Reno,
        AlgorithmId::Bic,
        AlgorithmId::WestwoodPlus,
    ] {
        let pair = gather_pair(algo);
        group.bench_with_input(BenchmarkId::from_parameter(algo), &pair, |b, pair| {
            b.iter(|| black_box(extract_pair(pair)));
        });
    }
    group.finish();
}

fn bench_extract_all_algorithms(c: &mut Criterion) {
    // One batch = feature extraction for the whole algorithm zoo, the unit
    // of work the training-set builder repeats per network condition.
    let pairs: Vec<TracePair> = ALL_IDENTIFIED.iter().map(|&a| gather_pair(a)).collect();
    let mut group = c.benchmark_group("extract_batch");
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("all_14_algorithms", |b| {
        b.iter(|| {
            for pair in &pairs {
                black_box(extract_pair(pair));
            }
        });
    });
    group.finish();
}

fn bench_ack_loss_estimate(c: &mut Criterion) {
    let pair = gather_pair(AlgorithmId::Reno);
    let mut group = c.benchmark_group("ack_loss_estimate");
    group.bench_function("post_timeout_trace", |b| {
        b.iter(|| black_box(estimate_ack_loss(&pair.env_a.post)));
    });
    group.bench_function("single_trace_features", |b| {
        b.iter(|| black_box(extract(&pair.env_a)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_extract_pair,
    bench_extract_all_algorithms,
    bench_ack_loss_estimate
);
criterion_main!(benches);
