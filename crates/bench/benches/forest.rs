//! Cost of CAAI Step 3 (random forest training and prediction, §VI), plus
//! the classifier-comparison ablation: the paper picked random forest
//! after comparing kNN, decision trees, neural networks, naive Bayes and
//! SVMs in Weka — this bench compares the same line-up on wall-clock cost
//! (EXPERIMENTS.md records their accuracy comparison).

use caai_core::training::{build_training_set, TrainingConfig};
use caai_ml::{
    Classifier, Dataset, GaussianNaiveBayes, KnnClassifier, LinearSvm, MlpClassifier, MlpConfig,
    RandomForest, RandomForestConfig, SvmConfig,
};
use caai_netem::rng::seeded;
use caai_netem::ConditionDb;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// A small but real CAAI training set (14 algorithms × 4 rungs × 3
/// conditions), gathered once for all benches in this file.
fn training_set() -> Dataset {
    let db = ConditionDb::paper_2011();
    let mut rng = seeded(1);
    build_training_set(&TrainingConfig::quick(3), &db, &mut rng)
}

fn bench_forest_fit(c: &mut Criterion) {
    let data = training_set();
    let mut group = c.benchmark_group("forest_fit");
    group.sample_size(10);
    for n_trees in [10usize, 40, 80, 160] {
        group.bench_with_input(BenchmarkId::from_parameter(n_trees), &n_trees, |b, &n| {
            b.iter(|| {
                let mut f = RandomForest::new(RandomForestConfig {
                    n_trees: n,
                    mtry: 4,
                });
                f.fit(&data, &mut seeded(2));
                black_box(f)
            });
        });
    }
    group.finish();
}

fn bench_forest_predict(c: &mut Criterion) {
    let data = training_set();
    let mut forest = RandomForest::new(RandomForestConfig::paper());
    forest.fit(&data, &mut seeded(3));
    let queries: Vec<&[f64]> = data
        .samples()
        .iter()
        .take(64)
        .map(|s| s.features.as_slice())
        .collect();
    let mut group = c.benchmark_group("forest_predict");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("paper_config_batch64", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(forest.predict(q));
            }
        });
    });
    group.finish();
}

fn bench_mtry_sweep(c: &mut Criterion) {
    // The m axis of Fig. 12: split-selection cost grows with the subspace
    // size while accuracy stays flat (paper: m = 4 is Weka's default).
    let data = training_set();
    let mut group = c.benchmark_group("forest_fit_mtry");
    group.sample_size(10);
    for mtry in [1usize, 2, 4, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(mtry), &mtry, |b, &m| {
            b.iter(|| {
                let mut f = RandomForest::new(RandomForestConfig {
                    n_trees: 20,
                    mtry: m,
                });
                f.fit(&data, &mut seeded(4));
                black_box(f)
            });
        });
    }
    group.finish();
}

fn bench_classifier_lineup(c: &mut Criterion) {
    // The §VI model comparison, on cost: fit + full-trainset prediction.
    let data = training_set();
    let mut group = c.benchmark_group("classifier_lineup");
    group.sample_size(10);

    fn fit_and_score<C: Classifier>(mut model: C, data: &Dataset) -> usize {
        model.fit(data, &mut seeded(5));
        data.samples()
            .iter()
            .filter(|s| model.predict(&s.features).label == s.label)
            .count()
    }

    group.bench_function("random_forest", |b| {
        b.iter(|| {
            black_box(fit_and_score(
                RandomForest::new(RandomForestConfig::paper()),
                &data,
            ))
        });
    });
    group.bench_function("knn_k3", |b| {
        b.iter(|| black_box(fit_and_score(KnnClassifier::new(3), &data)));
    });
    group.bench_function("naive_bayes", |b| {
        b.iter(|| black_box(fit_and_score(GaussianNaiveBayes::default(), &data)));
    });
    group.bench_function("mlp", |b| {
        b.iter(|| {
            black_box(fit_and_score(
                MlpClassifier::new(MlpConfig::default()),
                &data,
            ))
        });
    });
    group.bench_function("linear_svm", |b| {
        b.iter(|| black_box(fit_and_score(LinearSvm::new(SvmConfig::default()), &data)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forest_fit,
    bench_forest_predict,
    bench_mtry_sweep,
    bench_classifier_lineup
);
criterion_main!(benches);
