//! The identification-pipeline benchmark suite behind `BENCH_identify.json`.
//!
//! Covers the stages a verdict costs: trace gathering (the emulated
//! probe), feature extraction + random-forest classification, pcap
//! ingestion (bytes → flows → window traces → verdicts), the streaming
//! multi-worker pipeline at 1/2/4 workers, the live-socket transport
//! at 1/2/4 concurrent reactor sessions against loopback emulated
//! servers, and the observability overhead pair (null vs counting
//! subscriber through the same `_obs` entry points). Unlike the other benches this one has a hand-rolled
//! `main`: after running the groups it writes the measurements — each
//! tagged with its input shape (bytes/packets/flows) — to
//! `BENCH_identify.json` at the repository root, so the perf trajectory
//! of the identify path is recorded machine-readably run over run.

use caai_capture::{
    identify_reassembly, identify_reassembly_obs, reassemble, reassemble_obs, CaptureRenderer,
    DEFAULT_LADDER,
};
use caai_congestion::AlgorithmId;
use caai_core::classify::CaaiClassifier;
use caai_core::features::extract_pair;
use caai_core::prober::{Prober, ProberConfig};
use caai_core::server_under_test::ServerUnderTest;
use caai_core::training::{build_training_set, TrainingConfig};
use caai_net::reactor::NetConfig;
use caai_net::{Behavior, EmulatedServer, NetTransport, ServerProfile};
use caai_netem::rng::seeded;
use caai_netem::{ConditionDb, PathConfig};
use caai_obs::{MetricsSubscriber, NullSubscriber};
use caai_stream::{run, PcapStream, StallPolicy, StreamConfig};
use criterion::{Criterion, InputMeta, Throughput};
use std::hint::black_box;

fn quick_classifier() -> CaaiClassifier {
    let db = ConditionDb::paper_2011();
    let mut rng = seeded(3);
    let data = build_training_set(&TrainingConfig::quick(1), &db, &mut rng);
    CaaiClassifier::train(&data, &mut rng)
}

fn bench_trace_gathering(c: &mut Criterion) {
    let mut group = c.benchmark_group("identify_trace_gathering");
    group.sample_size(10);
    // One full probe per iteration: rate_per_sec reads as probes/s.
    group.throughput(Throughput::Elements(1));
    let prober = Prober::new(ProberConfig::default());
    for algo in [AlgorithmId::Reno, AlgorithmId::CubicV2] {
        let server = ServerUnderTest::ideal(algo);
        group.bench_function(format!("{algo}"), |b| {
            let mut rng = seeded(17);
            b.iter(|| black_box(prober.gather(&server, &PathConfig::clean(), &mut rng)));
        });
    }
    group.finish();
}

fn bench_feature_classify(c: &mut Criterion) {
    let classifier = quick_classifier();
    let prober = Prober::new(ProberConfig::default());
    let server = ServerUnderTest::ideal(AlgorithmId::Htcp);
    let pair = prober
        .gather(&server, &PathConfig::clean(), &mut seeded(19))
        .pair
        .expect("ideal HTCP gathers");

    let mut group = c.benchmark_group("identify_features_and_forest");
    group.sample_size(20);
    // One vector through the stage per iteration: classifications/s.
    group.throughput(Throughput::Elements(1));
    group.bench_function("extract_pair", |b| {
        b.iter(|| black_box(extract_pair(black_box(&pair))));
    });
    let vector = extract_pair(&pair);
    group.bench_function("forest_classify", |b| {
        b.iter(|| black_box(classifier.classify(black_box(&vector))));
    });
    group.bench_function("extract_and_classify", |b| {
        b.iter(|| black_box(classifier.classify(&extract_pair(black_box(&pair)))));
    });
    group.finish();
}

/// Renders the three-server capture (two identifiable, one from an
/// algorithm outside the quick model) every ingestion group consumes,
/// plus its input shape for the BENCH entries.
fn render_capture() -> (Vec<u8>, InputMeta) {
    let prober = Prober::new(ProberConfig::default());
    let mut renderer = CaptureRenderer::new();
    let mut rng = seeded(23);
    for (host, algo) in [AlgorithmId::CubicV2, AlgorithmId::Reno, AlgorithmId::Bic]
        .into_iter()
        .enumerate()
    {
        let server = ServerUnderTest::ideal(algo);
        renderer
            .render_session(
                [192, 0, 2, 1],
                [198, 51, 100, host as u8 + 1],
                &server,
                &prober,
                &PathConfig::clean(),
                &mut rng,
            )
            .expect("in-memory render cannot fail");
    }
    let capture = renderer.to_bytes();
    let reassembly = reassemble(&capture).expect("own render ingests");
    let meta = InputMeta {
        bytes: Some(capture.len() as u64),
        packets: Some(reassembly.packets as u64),
        flows: Some(reassembly.flows.len() as u64),
    };
    (capture, meta)
}

fn bench_pcap_ingestion(c: &mut Criterion) {
    // The same capture shape the CI smoke job exercises.
    let classifier = quick_classifier();
    let prober = Prober::new(ProberConfig::default());
    let (capture, meta) = render_capture();

    let mut group = c.benchmark_group("identify_pcap_ingestion");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(capture.len() as u64));
    group.input_meta(meta);
    group.bench_function("reassemble", |b| {
        b.iter(|| black_box(reassemble(black_box(&capture)).expect("valid capture")));
    });
    group.bench_function("reassemble_and_identify", |b| {
        b.iter(|| {
            let r = reassemble(black_box(&capture)).expect("valid capture");
            black_box(identify_reassembly(&r, &classifier, &DEFAULT_LADDER))
        });
    });
    group.finish();

    // The streaming pipeline over the same bytes: full source framing,
    // RSS dispatch, per-worker reassembly, eviction, session assembly
    // and classification — at 1, 2 and 4 workers. (Scaling headroom is
    // bounded by the host's core count; the dispatcher decode is the
    // serial fraction.)
    let mut stream = c.benchmark_group("identify_stream_ingestion");
    stream.sample_size(10);
    stream.throughput(Throughput::Bytes(capture.len() as u64));
    stream.input_meta(meta);
    for workers in [1usize, 2, 4] {
        stream.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                let mut source = PcapStream::new(
                    std::io::Cursor::new(black_box(&capture[..])),
                    StallPolicy::Eof,
                );
                let config = StreamConfig {
                    workers,
                    ..StreamConfig::default()
                };
                let mut verdicts = 0usize;
                let stats = run(&mut source, &classifier, &config, |_r| verdicts += 1)
                    .expect("valid capture");
                black_box((stats, verdicts))
            });
        });
    }
    stream.finish();

    let mut render = c.benchmark_group("identify_pcap_render");
    render.sample_size(10);
    render.throughput(Throughput::Bytes(capture.len() as u64));
    render.input_meta(meta);
    render.bench_function("render_three_sessions", |b| {
        b.iter(|| {
            let mut renderer = CaptureRenderer::new();
            let mut rng = seeded(23);
            for (host, algo) in [AlgorithmId::CubicV2, AlgorithmId::Reno, AlgorithmId::Bic]
                .into_iter()
                .enumerate()
            {
                let server = ServerUnderTest::ideal(algo);
                renderer
                    .render_session(
                        [192, 0, 2, 1],
                        [198, 51, 100, host as u8 + 1],
                        &server,
                        &prober,
                        &PathConfig::clean(),
                        &mut rng,
                    )
                    .expect("in-memory render cannot fail");
            }
            black_box(renderer.to_bytes())
        });
    });
    render.finish();
}

/// Pins the zero-cost claim measurably: the same ingest and gather work
/// through the `_obs` entry points with the [`NullSubscriber`] (what
/// every un-instrumented public call compiles down to) vs a counting
/// [`MetricsSubscriber`] (what `--metrics` pays). The null rows should
/// track the matching uninstrumented groups above; the metrics rows
/// bound the cost of counting everything.
fn bench_obs_overhead(c: &mut Criterion) {
    let classifier = quick_classifier();
    let (capture, meta) = render_capture();
    let metrics = MetricsSubscriber::new();

    let mut group = c.benchmark_group("identify_obs_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(capture.len() as u64));
    group.input_meta(meta);
    group.bench_function("ingest_null", |b| {
        b.iter(|| {
            let r = reassemble_obs(black_box(&capture), &NullSubscriber).expect("valid capture");
            black_box(identify_reassembly_obs(
                &r,
                &classifier,
                &DEFAULT_LADDER,
                &NullSubscriber,
            ))
        });
    });
    group.bench_function("ingest_metrics", |b| {
        b.iter(|| {
            let r = reassemble_obs(black_box(&capture), &metrics).expect("valid capture");
            black_box(identify_reassembly_obs(
                &r,
                &classifier,
                &DEFAULT_LADDER,
                &metrics,
            ))
        });
    });

    // One full probe per iteration; no capture input.
    group.throughput(Throughput::Elements(1));
    group.input_meta(InputMeta::default());
    let prober = Prober::new(ProberConfig::default());
    let server = ServerUnderTest::ideal(AlgorithmId::Reno);
    group.bench_function("gather_null", |b| {
        let mut rng = seeded(17);
        b.iter(|| {
            black_box(prober.gather_obs(&server, &PathConfig::clean(), &mut rng, &NullSubscriber))
        });
    });
    group.bench_function("gather_metrics", |b| {
        let mut rng = seeded(17);
        b.iter(|| black_box(prober.gather_obs(&server, &PathConfig::clean(), &mut rng, &metrics)));
    });
    group.finish();
}

/// What one unit of `rate_per_sec` means for this entry. Byte-counted
/// groups are bytes/s; element-counted groups are whatever one element
/// is in that group (a full probe, or one vector through the
/// feature/forest stage).
fn rate_unit(r: &criterion::BenchResult) -> Option<&'static str> {
    match r.throughput? {
        Throughput::Bytes(_) => Some("bytes/s"),
        Throughput::Elements(_) => Some(if r.group == "identify_features_and_forest" {
            "classifications/s"
        } else {
            "probes/s"
        }),
    }
}

/// Serializes the collected measurements as the `BENCH_identify.json`
/// document (hand-formatted: group/id strings are plain ASCII). v2 added
/// the per-entry `input` object (bytes/packets/flows per iteration); v3
/// adds `rate_unit`, naming what `rate_per_sec` counts — the bytes/s
/// ingestion groups and probes/s gather groups differ by six orders of
/// magnitude, so the unit must travel with the number.
fn results_json(c: &Criterion) -> String {
    let mut out = String::from("{\n  \"schema\": \"caai-bench-identify-v3\",\n  \"benches\": [\n");
    let results = c.results();
    for (i, r) in results.iter().enumerate() {
        let rate = r
            .rate_per_sec()
            .map_or("null".to_owned(), |x| format!("{x:.1}"));
        let unit = rate_unit(r).map_or("null".to_owned(), |u| format!("\"{u}\""));
        let opt = |v: Option<u64>| v.map_or("null".to_owned(), |n| n.to_string());
        let input = if r.input.is_empty() {
            "null".to_owned()
        } else {
            format!(
                "{{\"bytes\": {}, \"packets\": {}, \"flows\": {}}}",
                opt(r.input.bytes),
                opt(r.input.packets),
                opt(r.input.flows),
            )
        };
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns\": {}, \"rate_per_sec\": {}, \
             \"rate_unit\": {}, \"input\": {}}}{}\n",
            r.group,
            r.id,
            r.median_ns,
            rate,
            unit,
            input,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// The live-socket transport end to end: full ladder probes of loopback
/// emulated servers, at growing concurrent-session caps. Throughput is
/// probes/s. On loopback the peer answers instantly, so this measures
/// the reactor thread's frame-handling ceiling; against real RTTs the
/// caps would overlap waiting instead.
fn bench_net_transport(c: &mut Criterion) {
    let classifier = quick_classifier();
    let mut group = c.benchmark_group("identify_net_transport");
    group.sample_size(10);
    for cap in [1usize, 2, 4] {
        let servers: Vec<EmulatedServer> = (0..cap)
            .map(|_| {
                EmulatedServer::spawn(ServerProfile::ideal(AlgorithmId::CubicV2), Behavior::Normal)
                    .expect("spawn emulated server")
            })
            .collect();
        let targets = servers.iter().map(|s| s.target()).collect();
        let transport = NetTransport::new(
            targets,
            classifier.clone(),
            NetConfig {
                max_sessions: cap,
                ..NetConfig::default()
            },
            std::sync::Arc::new(NullSubscriber),
        )
        .expect("start reactor");
        // `cap` probes per iteration, all in flight at once.
        group.throughput(Throughput::Elements(cap as u64));
        group.bench_function(format!("sessions_{cap}"), |b| {
            b.iter(|| {
                let receivers: Vec<_> = (0..cap as u32)
                    .map(|id| transport.probe_async(id))
                    .collect();
                for rx in receivers {
                    let result = rx.recv().expect("reactor alive");
                    assert!(result.outcome.pair.is_some(), "probe must stay usable");
                    black_box(result);
                }
            });
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_trace_gathering(&mut criterion);
    bench_feature_classify(&mut criterion);
    bench_pcap_ingestion(&mut criterion);
    bench_net_transport(&mut criterion);
    bench_obs_overhead(&mut criterion);

    // CARGO_MANIFEST_DIR is crates/bench; the repo root is two up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_identify.json");
    std::fs::write(path, results_json(&criterion)).expect("write BENCH_identify.json");
    println!("wrote {path}");
}
