//! Cost of CAAI Step 1 (trace gathering, §IV).
//!
//! One measured iteration is one full emulated TCP connection: slow start
//! past the `w_max` threshold, the forced timeout, and 18 post-timeout
//! rounds. Parameterized over algorithm, environment, `w_max` rung, and
//! path condition, mirroring the knobs the paper's protocol walks.

use caai_congestion::AlgorithmId;
use caai_core::prober::{Prober, ProberConfig};
use caai_core::server_under_test::ServerUnderTest;
use caai_netem::rng::seeded;
use caai_netem::{EnvironmentId, PathConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_single_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_one_trace");
    let prober = Prober::new(ProberConfig::default());
    for algo in [
        AlgorithmId::Reno,
        AlgorithmId::CubicV2,
        AlgorithmId::CtcpV2,
        AlgorithmId::Htcp,
    ] {
        for env in [EnvironmentId::A, EnvironmentId::B] {
            let id = BenchmarkId::new(format!("{algo}"), format!("env_{env:?}"));
            group.bench_with_input(id, &(algo, env), |b, &(algo, env)| {
                let server = ServerUnderTest::ideal(algo);
                let mut rng = seeded(42);
                b.iter(|| {
                    let (trace, _) = prober.gather_trace(
                        black_box(&server),
                        env,
                        512,
                        0.0,
                        &PathConfig::clean(),
                        &mut rng,
                    );
                    black_box(trace)
                });
            });
        }
    }
    group.finish();
}

fn bench_wmax_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_wmax_rungs");
    let prober = Prober::new(ProberConfig::default());
    let server = ServerUnderTest::ideal(AlgorithmId::Reno);
    for wmax in [64u32, 128, 256, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(wmax), &wmax, |b, &wmax| {
            let mut rng = seeded(7);
            b.iter(|| {
                let (trace, _) = prober.gather_trace(
                    &server,
                    EnvironmentId::A,
                    wmax,
                    0.0,
                    &PathConfig::clean(),
                    &mut rng,
                );
                black_box(trace)
            });
        });
    }
    group.finish();
}

fn bench_full_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_full_protocol");
    group.sample_size(20);
    let prober = Prober::new(ProberConfig::default());
    for (name, path) in [
        ("clean", PathConfig::clean()),
        ("lossy_2pct", PathConfig::lossy(0.02)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &path, |b, path| {
            let server = ServerUnderTest::ideal(AlgorithmId::CubicV2);
            let mut rng = seeded(11);
            b.iter(|| black_box(prober.gather(&server, path, &mut rng)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_trace,
    bench_wmax_ladder,
    bench_full_protocol
);
criterion_main!(benches);
