//! # caai-bench
//!
//! Criterion benchmark harness for the CAAI reproduction. The library
//! itself is empty — everything lives in `benches/`:
//!
//! * `algorithms` — per-ACK and per-loss-event cost of all 16 congestion
//!   avoidance algorithms;
//! * `trace_gathering` — CAAI Step 1: one emulated connection per
//!   iteration, across algorithms, environments, `w_max` rungs and path
//!   conditions;
//! * `feature_extraction` — CAAI Step 2: β/G3/G6 extraction and the
//!   ACK-loss estimator;
//! * `forest` — CAAI Step 3: random forest fit/predict across the Fig. 12
//!   parameter axes, plus the §VI classifier line-up (forest vs kNN,
//!   naive Bayes, MLP, SVM) on wall-clock cost;
//! * `census` — end-to-end census throughput and thread scaling.
//!
//! Accuracy-oriented ablations (environment pair vs A alone, feature-set
//! and ladder ablations, classifier accuracy comparison) are one-shot
//! studies, not timings; they live in `caai-repro` as `ablation_*` and
//! `model_comparison` binaries.

#![forbid(unsafe_code)]
