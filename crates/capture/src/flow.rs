//! TCP flow reassembly.
//!
//! Groups a capture's packets into connections keyed on the 4-tuple,
//! determines which endpoint is the prober (client) and which the web
//! server, extracts the negotiated MSS from the handshake, rebases raw
//! sequence numbers onto the server's ISN, and reduces each connection to
//! the event stream window reconstruction needs: server data arrivals and
//! prober ACK departures, in capture order, plus who closed. Packets that
//! fail to decode are skipped and reported, never fatal — the capture-
//! level mirror of `read_jsonl_tagged`'s torn-line policy.

use crate::packet::{self, flags, TcpSegmentView};
use crate::pcap::{PcapError, PcapReader};
use caai_obs::{
    CaptureTruncated, EvictionCause, FlowEvicted, FlowOpened, FrameDecoded, NullSubscriber,
    PacketSkipped, Subscriber,
};
use std::collections::HashMap;

/// A TCP connection 4-tuple in capture orientation (first-seen direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Lower endpoint (IP, port) of the canonical ordering.
    pub a: ([u8; 4], u16),
    /// Higher endpoint of the canonical ordering.
    pub b: ([u8; 4], u16),
}

impl FlowKey {
    /// Direction-insensitive key for a decoded segment.
    pub fn of(seg: &TcpSegmentView<'_>) -> FlowKey {
        let x = (seg.src_ip, seg.src_port);
        let y = (seg.dst_ip, seg.dst_port);
        if x <= y {
            FlowKey { a: x, b: y }
        } else {
            FlowKey { a: y, b: x }
        }
    }
}

/// Which endpoint of a flow did something.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// The probing client (connection initiator).
    Client,
    /// The web server (data sender).
    Server,
}

/// One wire event relevant to window reconstruction, in capture order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowEvent {
    /// A server data segment arrived at the prober.
    Data {
        /// Capture timestamp, seconds.
        t: f64,
        /// Payload start, bytes relative to the server's first data byte.
        seq: u64,
        /// Payload length in bytes.
        len: u32,
        /// True when bytes at or past this offset were seen before.
        retransmit: bool,
    },
    /// The prober sent a (pure) ACK.
    Ack {
        /// Capture timestamp, seconds.
        t: f64,
        /// Acknowledged bytes relative to the server's first data byte.
        ack: u64,
        /// True when the ACK did not advance the cumulative point.
        duplicate: bool,
    },
}

impl FlowEvent {
    /// The event's capture timestamp.
    pub fn t(&self) -> f64 {
        match self {
            FlowEvent::Data { t, .. } | FlowEvent::Ack { t, .. } => *t,
        }
    }
}

/// One reassembled connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// The prober endpoint (IP, port).
    pub client: ([u8; 4], u16),
    /// The web-server endpoint (IP, port).
    pub server: ([u8; 4], u16),
    /// Timestamp of the first packet of the flow.
    pub start: f64,
    /// MSS option announced in the prober's SYN, if seen.
    pub client_mss: Option<u16>,
    /// MSS option announced in the server's SYN/ACK, if seen.
    pub server_mss: Option<u16>,
    /// Largest data payload observed (the effective segment size).
    pub max_payload: u32,
    /// Data/ACK events in capture order, ending at the first FIN/RST.
    pub events: Vec<FlowEvent>,
    /// Who closed first (FIN or RST), if the capture saw the close.
    pub closed_by: Option<Endpoint>,
    /// Timestamp of the close, when seen.
    pub closed_at: Option<f64>,
}

impl Flow {
    /// The effective MSS: the largest observed data payload, falling back
    /// to the handshake options (server grant bounded by the client's
    /// proposal) when the flow carried no data.
    pub fn effective_mss(&self) -> Option<u32> {
        if self.max_payload > 0 {
            return Some(self.max_payload);
        }
        match (self.client_mss, self.server_mss) {
            (Some(c), Some(s)) => Some(u32::from(c.min(s))),
            (Some(m), None) | (None, Some(m)) => Some(u32::from(m)),
            (None, None) => None,
        }
    }
}

/// Per-flow reassembly state while packets stream in.
///
/// The incremental core of [`reassemble`], public so streaming ingestion
/// (`caai-stream`) can feed one packet at a time and evict idle flows
/// without buffering a whole capture: construct with [`FlowBuilder::new`]
/// on a flow's first segment, [`feed`](FlowBuilder::feed) every segment
/// (including the first), and [`into_flow`](FlowBuilder::into_flow) when
/// the flow closes or is evicted.
#[derive(Debug)]
pub struct FlowBuilder {
    flow: Flow,
    /// Set once the initiator is known (SYN seen or data observed).
    oriented: bool,
    /// ISN of the server (sequence of its SYN/ACK), once seen.
    server_isn: Option<u32>,
    /// Relative byte just past the highest data seen so far.
    high_water: u64,
    /// Highest cumulative ACK (relative bytes) sent by the client.
    last_ack: Option<u64>,
    /// True once any data was seen (gates handshake-ACK suppression).
    data_seen: bool,
    /// Largest timestamp fed so far.
    last_seen: f64,
}

/// Everything reassembled from one capture.
#[derive(Debug)]
pub struct Reassembly {
    /// Flows in order of their first packet.
    pub flows: Vec<Flow>,
    /// Packets skipped with their record index and reason.
    pub skipped: Vec<(usize, String)>,
    /// A fatal framing error that ended reading early, if any.
    pub truncated: Option<PcapError>,
    /// Total packets decoded into flows.
    pub packets: usize,
}

/// Reassembles a raw capture buffer into flows.
///
/// Per-packet problems (non-IP ethertypes, corrupt headers, mid-stream
/// garbage) are skipped and reported in [`Reassembly::skipped`]; only a
/// broken pcap *framing* stops early, recorded in
/// [`Reassembly::truncated`]. The function never panics on any input.
pub fn reassemble(buf: &[u8]) -> Result<Reassembly, PcapError> {
    reassemble_obs(buf, &NullSubscriber)
}

/// [`reassemble`] with a structured-event subscriber: [`FrameDecoded`]
/// per decoded packet, [`PacketSkipped`] for every skip-and-report entry,
/// [`CaptureTruncated`] when framing breaks mid-file, [`FlowOpened`] per
/// new 4-tuple, and a [`FlowEvicted`] (cause [`EvictionCause::Drain`])
/// per flow when the end of the buffer closes the table. The returned
/// [`Reassembly`] is identical to the unobserved call.
pub fn reassemble_obs<S: Subscriber>(buf: &[u8], obs: &S) -> Result<Reassembly, PcapError> {
    let mut reader = PcapReader::new(buf)?;
    if reader.linktype() != crate::pcap::LINKTYPE_ETHERNET {
        // Feeding e.g. LINKTYPE_LINUX_SLL (113) or raw-IP (101) frames
        // to the Ethernet decoder would mis-frame every packet; fail
        // once with the actual link type instead of skipping them all.
        return Err(PcapError {
            offset: 20,
            reason: format!(
                "unsupported link type {} (only Ethernet, 1, is supported)",
                reader.linktype()
            ),
        });
    }
    let mut table: HashMap<FlowKey, usize> = HashMap::new();
    let mut order: Vec<FlowBuilder> = Vec::new();
    let mut skipped = Vec::new();
    let mut truncated = None;
    let mut packets = 0usize;

    while let Some(next) = reader.next() {
        let record = match next {
            Ok(r) => r,
            Err(e) => {
                obs.on_capture_truncated(&CaptureTruncated {
                    packets: packets as u64,
                    reason: &e.reason,
                });
                truncated = Some(e);
                break;
            }
        };
        let seg = match packet::decode(record.data) {
            Ok(s) => s,
            Err(e) => {
                let reason = e.to_string();
                obs.on_packet_skipped(&PacketSkipped {
                    index: record.index as u64,
                    reason: &reason,
                });
                skipped.push((record.index, reason));
                continue;
            }
        };
        packets += 1;
        obs.on_frame_decoded(&FrameDecoded {
            bytes: record.data.len() as u64,
        });
        let key = FlowKey::of(&seg);
        let idx = *table.entry(key).or_insert_with(|| {
            obs.on_flow_opened(&FlowOpened {});
            order.push(FlowBuilder::new(&seg, record.ts));
            order.len() - 1
        });
        if let Some(reason) = order[idx].feed(record.ts, &seg) {
            obs.on_packet_skipped(&PacketSkipped {
                index: record.index as u64,
                reason: &reason,
            });
            skipped.push((record.index, reason));
        }
    }

    let flows: Vec<Flow> = order
        .into_iter()
        .map(|b| {
            obs.on_flow_evicted(&FlowEvicted {
                cause: EvictionCause::Drain,
                events: b.events() as u64,
            });
            b.into_flow()
        })
        .collect();
    Ok(Reassembly {
        flows,
        skipped,
        truncated,
        packets,
    })
}

impl FlowBuilder {
    /// Opens a flow on its first segment. The same segment must still be
    /// [`feed`](FlowBuilder::feed)-ed afterwards — `new` only fixes the
    /// provisional orientation and the start timestamp.
    pub fn new(seg: &TcpSegmentView<'_>, ts: f64) -> FlowBuilder {
        // Provisional orientation from the first packet: a pure SYN names
        // the client; anything else is re-oriented when data appears.
        let (client, server, oriented) = if seg.has(flags::SYN) && !seg.has(flags::ACK) {
            ((seg.src_ip, seg.src_port), (seg.dst_ip, seg.dst_port), true)
        } else if seg.has(flags::SYN) && seg.has(flags::ACK) {
            ((seg.dst_ip, seg.dst_port), (seg.src_ip, seg.src_port), true)
        } else if !seg.payload.is_empty() {
            // Mid-stream capture: orient by the service port — the lower
            // port is the server side (a capture can just as well start
            // at the client's HTTP request as at server data). When the
            // ports tie, fall back to "the data sender is the server".
            if seg.dst_port < seg.src_port {
                ((seg.src_ip, seg.src_port), (seg.dst_ip, seg.dst_port), true)
            } else {
                ((seg.dst_ip, seg.dst_port), (seg.src_ip, seg.src_port), true)
            }
        } else {
            (
                (seg.src_ip, seg.src_port),
                (seg.dst_ip, seg.dst_port),
                false,
            )
        };
        FlowBuilder {
            flow: Flow {
                client,
                server,
                start: ts,
                client_mss: None,
                server_mss: None,
                max_payload: 0,
                events: Vec::new(),
                closed_by: None,
                closed_at: None,
            },
            oriented,
            server_isn: None,
            high_water: 0,
            last_ack: None,
            data_seen: false,
            last_seen: ts,
        }
    }

    /// Records one server data segment as a [`FlowEvent::Data`]. Returns a
    /// skip reason when the segment could not be placed.
    fn server_data(&mut self, ts: f64, seg: &TcpSegmentView<'_>) -> Option<String> {
        // First data anchors the relative space when no SYN/ACK was
        // captured (mid-stream ingest): the first data byte sits one past
        // the ISN.
        let anchor = *self.server_isn.get_or_insert(seg.seq.wrapping_sub(1));
        let data_base = anchor.wrapping_add(1);
        let Some(rel) = self.rel(data_base, seg.seq) else {
            return Some("data sequence before the server ISN".to_owned());
        };
        let len = seg.payload.len() as u32;
        let end = rel + u64::from(len);
        let retransmit = rel < self.high_water;
        self.high_water = self.high_water.max(end);
        self.flow.max_payload = self.flow.max_payload.max(len);
        self.data_seen = true;
        self.flow.events.push(FlowEvent::Data {
            t: ts,
            seq: rel,
            len,
            retransmit,
        });
        None
    }

    /// Relative data offset of a raw server sequence number. Sequence
    /// arithmetic is modular; offsets in the lower half of the u32 ring
    /// are "at or after" the anchor, the upper half would be "before" it
    /// (stray packets, which the caller drops).
    fn rel(&self, anchor: u32, raw: u32) -> Option<u64> {
        let d = raw.wrapping_sub(anchor);
        if d < 0x8000_0000 {
            Some(u64::from(d))
        } else {
            None
        }
    }

    /// Folds one segment into the flow. Returns a skip reason when the
    /// segment could not be used (at most one per call); `None` means it
    /// was consumed (possibly as a deliberate no-op, e.g. teardown
    /// chatter after the close).
    pub fn feed(&mut self, ts: f64, seg: &TcpSegmentView<'_>) -> Option<String> {
        self.last_seen = self.last_seen.max(ts);
        if self.flow.closed_by.is_some() {
            return None; // close teardown chatter is not part of the trace
        }
        let from_server = (seg.src_ip, seg.src_port) == self.flow.server;
        let from_client = (seg.src_ip, seg.src_port) == self.flow.client;
        if !from_server && !from_client {
            return Some("packet matches neither flow endpoint".to_owned());
        }

        // Late orientation fix: the first packets were pure ACKs (e.g. a
        // capture opening mid-handshake), so roles were provisional. The
        // first payload decides, with the same rule as `new`: the lower
        // port is the server; on a tie, the payload sender is.
        if !self.oriented && !seg.payload.is_empty() {
            let server = if seg.dst_port < seg.src_port {
                (seg.dst_ip, seg.dst_port)
            } else {
                (seg.src_ip, seg.src_port)
            };
            if server != self.flow.server {
                std::mem::swap(&mut self.flow.client, &mut self.flow.server);
            }
            self.oriented = true;
            return self.feed(ts, seg);
        }

        if seg.has(flags::SYN) {
            if from_client {
                self.flow.client_mss = seg.mss_option;
            } else {
                self.flow.server_mss = seg.mss_option;
                self.server_isn = Some(seg.seq);
            }
            self.oriented = true;
            return None;
        }
        if seg.flags & (flags::FIN | flags::RST) != 0 {
            // A FIN routinely piggybacks the sender's last data segment
            // (Linux sends FIN on the final data packet): count those
            // bytes before recording the close, or the last round's
            // window is undercounted.
            let skip = if from_server && !seg.payload.is_empty() {
                self.server_data(ts, seg)
            } else {
                None
            };
            self.flow.closed_by = Some(if from_server {
                Endpoint::Server
            } else {
                Endpoint::Client
            });
            self.flow.closed_at = Some(ts);
            return skip;
        }

        if from_server {
            if seg.payload.is_empty() {
                return None; // server pure ACKs carry no window information
            }
            self.server_data(ts, seg)
        } else {
            // Client side: pure cumulative ACKs. Payload from the client
            // (HTTP requests) carries no window information either — CAAI
            // measures the server's sending process — so only the ACK
            // number matters.
            if !seg.has(flags::ACK) {
                return None;
            }
            let Some(anchor) = self.server_isn else {
                return None; // handshake ACK before any server context
            };
            let data_base = anchor.wrapping_add(1);
            let rel = self.rel(data_base, seg.ack)?;
            if rel == 0 && !self.data_seen {
                return None; // the handshake's third ACK, not a round boundary
            }
            let duplicate = self.last_ack.is_some_and(|last| rel <= last);
            if !duplicate {
                self.last_ack = Some(rel);
            }
            self.flow.events.push(FlowEvent::Ack {
                t: ts,
                ack: rel,
                duplicate,
            });
            None
        }
    }

    /// The largest capture timestamp fed so far (the flow's idle clock).
    pub fn last_seen(&self) -> f64 {
        self.last_seen
    }

    /// Number of events recorded so far (Data + Ack).
    pub fn events(&self) -> usize {
        self.flow.events.len()
    }

    /// The flow as reassembled so far.
    pub fn flow(&self) -> &Flow {
        &self.flow
    }

    /// Finishes the flow (on close, eviction, or end of capture).
    pub fn into_flow(self) -> Flow {
        self.flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{encode, FrameSpec};
    use crate::pcap::PcapWriter;

    const CLIENT: ([u8; 4], u16) = ([192, 0, 2, 1], 40000);
    const SERVER: ([u8; 4], u16) = ([198, 51, 100, 9], 80);

    struct Builder {
        out: Vec<u8>,
        w: Option<PcapWriter<Vec<u8>>>,
    }

    impl Builder {
        fn new() -> Builder {
            Builder {
                out: Vec::new(),
                w: Some(PcapWriter::new(Vec::new()).unwrap()),
            }
        }

        fn frame(&mut self, ts: f64, spec: FrameSpec<'_>) {
            self.w
                .as_mut()
                .unwrap()
                .write_frame(ts, &encode(&spec))
                .unwrap();
        }

        fn push_raw(&mut self, ts: f64, bytes: &[u8]) {
            self.w.as_mut().unwrap().write_frame(ts, bytes).unwrap();
        }

        fn finish(mut self) -> Vec<u8> {
            self.out = self.w.take().unwrap().finish().unwrap();
            self.out
        }
    }

    fn seg(from: ([u8; 4], u16), to: ([u8; 4], u16)) -> FrameSpec<'static> {
        FrameSpec {
            src_ip: from.0,
            dst_ip: to.0,
            src_port: from.1,
            dst_port: to.1,
            seq: 0,
            ack: 0,
            flags: flags::ACK,
            window: 65000,
            mss_option: None,
            payload: b"",
        }
    }

    /// A tiny handshake + 2 data packets + ACKs + server FIN.
    fn tiny_capture() -> Vec<u8> {
        let mut b = Builder::new();
        let isn_c = 1000u32;
        let isn_s = 5000u32;
        b.frame(
            0.0,
            FrameSpec {
                seq: isn_c,
                flags: flags::SYN,
                mss_option: Some(100),
                ..seg(CLIENT, SERVER)
            },
        );
        b.frame(
            0.1,
            FrameSpec {
                seq: isn_s,
                ack: isn_c + 1,
                flags: flags::SYN | flags::ACK,
                mss_option: Some(1460),
                ..seg(SERVER, CLIENT)
            },
        );
        b.frame(
            0.2,
            FrameSpec {
                seq: isn_c + 1,
                ack: isn_s + 1,
                ..seg(CLIENT, SERVER)
            },
        );
        let payload = [7u8; 100];
        b.frame(
            1.0,
            FrameSpec {
                seq: isn_s + 1,
                ack: isn_c + 1,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        b.frame(
            1.0,
            FrameSpec {
                seq: isn_s + 101,
                ack: isn_c + 1,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        b.frame(
            2.0,
            FrameSpec {
                seq: isn_c + 1,
                ack: isn_s + 101,
                ..seg(CLIENT, SERVER)
            },
        );
        b.frame(
            2.0,
            FrameSpec {
                seq: isn_c + 1,
                ack: isn_s + 201,
                ..seg(CLIENT, SERVER)
            },
        );
        b.frame(
            3.0,
            FrameSpec {
                seq: isn_s + 201,
                ack: isn_c + 1,
                flags: flags::FIN | flags::ACK,
                ..seg(SERVER, CLIENT)
            },
        );
        b.finish()
    }

    #[test]
    fn reassembles_the_tiny_flow() {
        let r = reassemble(&tiny_capture()).unwrap();
        assert!(r.truncated.is_none());
        assert!(r.skipped.is_empty());
        assert_eq!(r.flows.len(), 1);
        let f = &r.flows[0];
        assert_eq!(f.client, CLIENT);
        assert_eq!(f.server, SERVER);
        assert_eq!(f.client_mss, Some(100));
        assert_eq!(f.server_mss, Some(1460));
        assert_eq!(f.effective_mss(), Some(100));
        assert_eq!(f.closed_by, Some(Endpoint::Server));
        let kinds: Vec<(bool, u64)> = f
            .events
            .iter()
            .map(|e| match *e {
                FlowEvent::Data { seq, .. } => (true, seq),
                FlowEvent::Ack { ack, .. } => (false, ack),
            })
            .collect();
        assert_eq!(
            kinds,
            vec![(true, 0), (true, 100), (false, 100), (false, 200)]
        );
    }

    #[test]
    fn handshake_ack_is_not_an_event() {
        let r = reassemble(&tiny_capture()).unwrap();
        let acks = r.flows[0]
            .events
            .iter()
            .filter(|e| matches!(e, FlowEvent::Ack { .. }))
            .count();
        assert_eq!(acks, 2, "the third handshake packet is suppressed");
    }

    #[test]
    fn garbage_packets_are_skipped_and_reported() {
        let mut b = Builder::new();
        b.frame(
            0.0,
            FrameSpec {
                seq: 1,
                flags: flags::SYN,
                mss_option: Some(100),
                ..seg(CLIENT, SERVER)
            },
        );
        b.push_raw(0.5, &[0xAB; 40]); // mid-stream garbage
        b.push_raw(0.6, b"tiny");
        b.frame(
            1.0,
            FrameSpec {
                seq: 77,
                ack: 2,
                flags: flags::SYN | flags::ACK,
                mss_option: Some(536),
                ..seg(SERVER, CLIENT)
            },
        );
        let r = reassemble(&b.finish()).unwrap();
        assert_eq!(r.skipped.len(), 2, "{:?}", r.skipped);
        assert_eq!(r.skipped[0].0, 1);
        assert_eq!(r.flows.len(), 1);
        assert_eq!(r.flows[0].server_mss, Some(536));
    }

    #[test]
    fn retransmissions_are_flagged() {
        let mut b = Builder::new();
        let payload = [1u8; 50];
        b.frame(
            0.0,
            FrameSpec {
                seq: 101,
                ack: 1,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        b.frame(
            5.0,
            FrameSpec {
                seq: 101,
                ack: 1,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        let r = reassemble(&b.finish()).unwrap();
        let f = &r.flows[0];
        assert_eq!(f.server, SERVER, "data sender becomes the server");
        match f.events.as_slice() {
            [FlowEvent::Data {
                retransmit: false, ..
            }, FlowEvent::Data {
                retransmit: true,
                seq: 0,
                ..
            }] => {}
            other => panic!("unexpected events {other:?}"),
        }
    }

    #[test]
    fn non_ethernet_link_type_is_a_single_clear_error() {
        let mut capture = Builder::new().finish();
        capture[20..24].copy_from_slice(&113u32.to_le_bytes()); // LINUX_SLL
        let err = reassemble(&capture).unwrap_err();
        assert!(err.reason.contains("link type 113"), "{err}");
    }

    #[test]
    fn midstream_capture_starting_at_the_client_request_orients_by_port() {
        // Handshake not captured; the first packet is the prober's HTTP
        // request toward port 80, then server data flows back. The
        // request sender must not be mistaken for the server.
        let mut b = Builder::new();
        b.frame(
            0.0,
            FrameSpec {
                seq: 500,
                ack: 9000,
                payload: b"GET /longest HTTP/1.1\r\n\r\n",
                ..seg(CLIENT, SERVER)
            },
        );
        let payload = [5u8; 100];
        b.frame(
            1.0,
            FrameSpec {
                seq: 9000,
                ack: 525,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        let r = reassemble(&b.finish()).unwrap();
        let f = &r.flows[0];
        assert_eq!(f.server, SERVER, "port 80 side is the server");
        assert_eq!(f.client, CLIENT);
        let data_events = f
            .events
            .iter()
            .filter(|e| matches!(e, FlowEvent::Data { .. }))
            .count();
        assert_eq!(data_events, 1, "only the server's bytes count as data");
        assert_eq!(f.max_payload, 100);
    }

    #[test]
    fn pure_ack_prefix_then_client_request_still_orients_by_port() {
        // Capture opens at the client's third handshake ACK, then the
        // client's HTTP request, then server data: the request sender
        // must not be mistaken for the server.
        let mut b = Builder::new();
        b.frame(
            0.0,
            FrameSpec {
                seq: 500,
                ack: 9000,
                ..seg(CLIENT, SERVER)
            },
        );
        b.frame(
            0.1,
            FrameSpec {
                seq: 500,
                ack: 9000,
                payload: b"GET / HTTP/1.1\r\n\r\n",
                ..seg(CLIENT, SERVER)
            },
        );
        let payload = [6u8; 100];
        b.frame(
            1.0,
            FrameSpec {
                seq: 9000,
                ack: 518,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        let r = reassemble(&b.finish()).unwrap();
        let f = &r.flows[0];
        assert_eq!(f.server, SERVER, "port 80 side stays the server");
        let data_lens: Vec<u32> = f
            .events
            .iter()
            .filter_map(|e| match e {
                FlowEvent::Data { len, .. } => Some(*len),
                FlowEvent::Ack { .. } => None,
            })
            .collect();
        assert_eq!(data_lens, vec![100], "only server bytes are data");
    }

    #[test]
    fn fin_with_piggybacked_data_counts_the_payload() {
        let mut b = Builder::new();
        let payload = [3u8; 80];
        b.frame(
            0.0,
            FrameSpec {
                seq: 1,
                ack: 1,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        b.frame(
            0.0,
            FrameSpec {
                seq: 81,
                ack: 1,
                flags: flags::FIN | flags::ACK,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        let r = reassemble(&b.finish()).unwrap();
        let f = &r.flows[0];
        assert_eq!(f.closed_by, Some(Endpoint::Server));
        let data_bytes: u64 = f
            .events
            .iter()
            .map(|e| match e {
                FlowEvent::Data { len, .. } => u64::from(*len),
                FlowEvent::Ack { .. } => 0,
            })
            .sum();
        assert_eq!(data_bytes, 160, "the FIN segment's payload must count");
    }

    #[test]
    fn two_interleaved_flows_separate() {
        let other_client = ([192, 0, 2, 1], 40001);
        let mut b = Builder::new();
        let payload = [9u8; 10];
        b.frame(
            0.0,
            FrameSpec {
                seq: 1,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        b.frame(
            0.1,
            FrameSpec {
                seq: 1,
                payload: &payload,
                ..seg(SERVER, other_client)
            },
        );
        b.frame(
            0.2,
            FrameSpec {
                seq: 11,
                payload: &payload,
                ..seg(SERVER, CLIENT)
            },
        );
        let r = reassemble(&b.finish()).unwrap();
        assert_eq!(r.flows.len(), 2);
        assert_eq!(r.flows[0].events.len(), 2);
        assert_eq!(r.flows[1].events.len(), 1);
    }
}
