//! Capture-level identification: pcap bytes → per-server verdicts.
//!
//! Ties the subsystem together: reassemble flows, reconstruct each probe
//! session's [`GatherOutcome`], and run the standard CAAI step-2/3
//! pipeline (special-case detection, feature extraction, random-forest
//! classification) on the result. Each session yields one
//! [`CensusRecord`] with `truth: None` — on a real capture the ground
//! truth is the unknown being measured — so the records flow through the
//! same `ResultSink` machinery (JSONL streaming, aggregation) as the
//! synthetic census.

use crate::flow::Reassembly;
use crate::pcap::PcapError;
use crate::reconstruct::{self, ProbeSession, DEFAULT_LADDER};
use caai_core::census::{CensusRecord, Verdict};
use caai_core::classify::{CaaiClassifier, Identification};
use caai_core::prober::GatherOutcome;
use caai_obs::{span_begin, NullSubscriber, SessionEmitted, SpanKind, Subscriber};

/// One probe session's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// The prober's IPv4 address.
    pub client_ip: [u8; 4],
    /// The server's IPv4 address.
    pub server_ip: [u8; 4],
    /// TCP connections grouped into the session.
    pub flows: usize,
    /// The reconstructed gathering outcome (trace pair or failures).
    pub outcome: GatherOutcome,
    /// The classifier's raw output, when a usable pair existed and no
    /// special case preempted it.
    pub identification: Option<Identification>,
    /// The census-shaped record (`server_id` is the session index within
    /// the capture; `truth` is `None` — captures carry no ground truth).
    pub record: CensusRecord,
}

/// Everything identified from one capture.
#[derive(Debug)]
pub struct CaptureVerdicts {
    /// Per-session verdicts, in capture order.
    pub sessions: Vec<SessionReport>,
    /// Packets skipped during decode, as `(record index, reason)`.
    pub skipped: Vec<(usize, String)>,
    /// Fatal framing error that ended reading early, if any.
    pub truncated: Option<PcapError>,
    /// Packets decoded.
    pub packets: usize,
}

/// The step-2/3 pipeline applied to a reconstructed outcome — exactly
/// `caai_core::census::verdict_for_outcome`, re-exported here so capture
/// verdicts can never diverge from census verdicts for the same traces.
pub fn verdict_for(
    outcome: &GatherOutcome,
    classifier: &CaaiClassifier,
) -> (Verdict, Option<Identification>) {
    caai_core::census::verdict_for_outcome(outcome, classifier)
}

/// Builds per-session verdicts from an already-reassembled capture.
///
/// Sessions with no reconstructable probe connection at all (e.g. a
/// handshake-only flow, a SYN scan, or non-probe chatter between two
/// hosts) yield no verdict — fabricating an `Invalid` record for
/// traffic that was never a probe would corrupt the aggregates.
pub fn identify_reassembly(
    reassembly: &Reassembly,
    classifier: &CaaiClassifier,
    ladder: &[u32],
) -> Vec<SessionReport> {
    identify_reassembly_obs(reassembly, classifier, ladder, &NullSubscriber)
}

/// [`identify_reassembly`] with a structured-event subscriber: one
/// [`SessionEmitted`] per verdict (`lag_secs` is `0` — offline ingestion
/// has no watermark). The reports are identical to the unobserved call.
pub fn identify_reassembly_obs<S: Subscriber>(
    reassembly: &Reassembly,
    classifier: &CaaiClassifier,
    ladder: &[u32],
    obs: &S,
) -> Vec<SessionReport> {
    let sessions: Vec<ProbeSession> = reconstruct::sessions(reassembly, ladder);
    sessions
        .iter()
        .filter(|s| !s.connections.is_empty())
        .enumerate()
        .map(|(i, s)| {
            let replay_span = span_begin(obs, SpanKind::SessionReplay, i as i64, 0);
            let outcome = reconstruct::session_outcome(s, ladder);
            replay_span.end(obs);
            let classify_span = span_begin(obs, SpanKind::Classify, i as i64, 0);
            let (verdict, identification) = verdict_for(&outcome, classifier);
            classify_span.end(obs);
            obs.on_session_emitted(&SessionEmitted {
                verdict: verdict.kind(),
                wmax: verdict.wmax(),
                flows: s.flows as u64,
                lag_secs: 0.0,
            });
            SessionReport {
                client_ip: s.client_ip,
                server_ip: s.server_ip,
                flows: s.flows,
                outcome,
                identification,
                record: CensusRecord {
                    server_id: i as u32,
                    truth: None,
                    verdict,
                },
            }
        })
        .collect()
}

/// Identifies every probe session in a raw capture buffer.
///
/// One verdict per (prober IP, server IP) session; corrupt packets are
/// skipped and reported, and a capture whose framing breaks mid-file is
/// identified up to the break (`truncated` says where). Only an
/// unreadable *header* is a hard error.
pub fn identify_capture(
    buf: &[u8],
    classifier: &CaaiClassifier,
    ladder: Option<&[u32]>,
) -> Result<CaptureVerdicts, PcapError> {
    identify_capture_obs(buf, classifier, ladder, &NullSubscriber)
}

/// [`identify_capture`] with a structured-event subscriber: the
/// reassembly events of [`crate::flow::reassemble_obs`] plus one
/// [`SessionEmitted`] per verdict. The verdicts are identical to the
/// unobserved call.
pub fn identify_capture_obs<S: Subscriber>(
    buf: &[u8],
    classifier: &CaaiClassifier,
    ladder: Option<&[u32]>,
    obs: &S,
) -> Result<CaptureVerdicts, PcapError> {
    let ladder = ladder.unwrap_or(&DEFAULT_LADDER);
    let reassembly_span = span_begin(obs, SpanKind::Reassembly, buf.len() as i64, 0);
    let reassembly = crate::flow::reassemble_obs(buf, obs);
    reassembly_span.end(obs);
    let reassembly = reassembly?;
    let sessions = identify_reassembly_obs(&reassembly, classifier, ladder, obs);
    Ok(CaptureVerdicts {
        sessions,
        skipped: reassembly.skipped,
        truncated: reassembly.truncated,
        packets: reassembly.packets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{encode, flags, FrameSpec};
    use crate::pcap::PcapWriter;
    use caai_core::training::{build_training_set, TrainingConfig};
    use caai_netem::rng::seeded;
    use caai_netem::ConditionDb;

    fn quick_classifier() -> CaaiClassifier {
        let db = ConditionDb::paper_2011();
        let mut rng = seeded(4);
        let data = build_training_set(&TrainingConfig::quick(1), &db, &mut rng);
        CaaiClassifier::train(&data, &mut rng)
    }

    #[test]
    fn handshake_only_traffic_yields_no_verdict() {
        // A SYN-scan-like exchange: SYN, SYN/ACK, ACK, client FIN — no
        // server data ever flows. This was never a probe; it must not
        // surface as an Invalid census record.
        let mut out = Vec::new();
        let mut w = PcapWriter::new(&mut out).unwrap();
        let base = FrameSpec {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            src_port: 5555,
            dst_port: 80,
            seq: 100,
            ack: 0,
            flags: flags::SYN,
            window: 1000,
            mss_option: None,
            payload: b"",
        };
        w.write_frame(0.0, &encode(&base)).unwrap();
        w.write_frame(
            0.1,
            &encode(&FrameSpec {
                src_ip: [10, 0, 0, 2],
                dst_ip: [10, 0, 0, 1],
                src_port: 80,
                dst_port: 5555,
                seq: 900,
                ack: 101,
                flags: flags::SYN | flags::ACK,
                ..base
            }),
        )
        .unwrap();
        w.write_frame(
            0.2,
            &encode(&FrameSpec {
                seq: 101,
                ack: 901,
                flags: flags::ACK,
                ..base
            }),
        )
        .unwrap();
        w.write_frame(
            0.3,
            &encode(&FrameSpec {
                seq: 101,
                ack: 901,
                flags: flags::FIN | flags::ACK,
                ..base
            }),
        )
        .unwrap();
        w.finish().unwrap();

        let verdicts = identify_capture(&out, &quick_classifier(), None).unwrap();
        assert_eq!(verdicts.packets, 4, "the flow itself parses fine");
        assert!(
            verdicts.sessions.is_empty(),
            "non-probe traffic must not fabricate a verdict: {:?}",
            verdicts.sessions
        );
    }
}
