//! # caai-capture — packet-capture ingestion for CAAI
//!
//! The simulated pipeline classifies servers it probes itself; this crate
//! closes the loop with the wire, in both directions:
//!
//! * **read**: a zero-copy classic-pcap reader ([`pcap`]) with a tolerant
//!   error model, Ethernet/IPv4/TCP decode ([`packet`]), TCP flow
//!   reassembly keyed on the 4-tuple ([`flow`]), and per-RTT window
//!   reconstruction ([`reconstruct`]) that turns a recorded prober↔server
//!   exchange back into the exact [`WindowTrace`]/[`TracePair`] the
//!   prober measured — pre/post-timeout split at the detected RTO,
//!   `w_max` rung pinned at the ACK-withholding point — feeding straight
//!   into feature extraction and the random forest ([`identify`]);
//! * **write**: a pcap renderer ([`render`]) that replays a simulated
//!   probe session into a byte-valid capture (handshakes, checksums, FIN
//!   semantics), which makes the whole subsystem verifiable offline:
//!   simulate → write → ingest must reproduce the identical trace and
//!   the identical identification.
//!
//! ```
//! use caai_capture::{identify_capture, CaptureRenderer};
//! use caai_core::prober::{Prober, ProberConfig};
//! use caai_core::server_under_test::ServerUnderTest;
//! use caai_congestion::AlgorithmId;
//! use caai_netem::PathConfig;
//!
//! // Render a probe of a (simulated) RENO server into a capture...
//! let mut renderer = CaptureRenderer::new();
//! let prober = Prober::new(ProberConfig::default());
//! let mut rng = caai_netem::rng::seeded(7);
//! let direct = renderer.render_session(
//!     [192, 0, 2, 1],
//!     [198, 51, 100, 1],
//!     &ServerUnderTest::ideal(AlgorithmId::Reno),
//!     &prober,
//!     &PathConfig::clean(),
//!     &mut rng,
//! ).expect("in-memory render cannot fail");
//! let capture = renderer.to_bytes();
//!
//! // ...and reconstruct the identical trace pair from the bytes alone.
//! let reassembly = caai_capture::reassemble(&capture).unwrap();
//! let sessions = caai_capture::sessions(&reassembly, &[512, 256, 128, 64]);
//! let outcome = caai_capture::session_outcome(&sessions[0], &[512, 256, 128, 64]);
//! assert_eq!(outcome.pair, direct.pair);
//! # let _ = identify_capture; // re-export smoke
//! ```
//!
//! [`WindowTrace`]: caai_core::trace::WindowTrace
//! [`TracePair`]: caai_core::trace::TracePair

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod identify;
pub mod packet;
pub mod pcap;
pub mod reconstruct;
pub mod render;

pub use flow::{reassemble, reassemble_obs, Flow, FlowBuilder, FlowEvent, FlowKey, Reassembly};
pub use identify::{
    identify_capture, identify_capture_obs, identify_reassembly, identify_reassembly_obs,
    verdict_for, CaptureVerdicts, SessionReport,
};
pub use packet::{decode, encode, DecodeError, FrameSpec, TcpSegmentView};
pub use pcap::{PcapError, PcapReader, PcapRecord, PcapWriter};
pub use reconstruct::{
    observe_connection, session_outcome, sessions, ConnectionObservation, ProbeSession,
    DEFAULT_LADDER,
};
pub use render::{CaptureRenderer, CAPTURE_EPOCH};
