//! Ethernet / IPv4 / TCP decode and encode.
//!
//! The decoder is zero-copy ([`TcpSegmentView::payload`] borrows from the
//! frame) and returns a typed error for every malformed layer so the flow
//! reassembler can *skip and report* single bad packets without giving up
//! on the capture — the same torn-line policy the census JSONL reader
//! applies. The encoder produces byte-valid frames: correct header
//! lengths, IPv4 header checksum, and TCP checksum over the pseudo-header,
//! so rendered captures survive strict tools (`tcpdump`, Wireshark).

use std::fmt;

/// TCP flag bits used by this crate.
pub mod flags {
    /// FIN: sender is done sending.
    pub const FIN: u8 = 0x01;
    /// SYN: connection establishment.
    pub const SYN: u8 = 0x02;
    /// RST: abortive close.
    pub const RST: u8 = 0x04;
    /// PSH: push buffered data.
    pub const PSH: u8 = 0x08;
    /// ACK: acknowledgement field is valid.
    pub const ACK: u8 = 0x10;
}

/// Why a frame could not be decoded down to TCP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than an Ethernet header.
    ShortEthernet(usize),
    /// Not IPv4 (the ethertype found).
    NotIpv4(u16),
    /// IPv4 header malformed (bad version/IHL or truncated).
    BadIpv4(String),
    /// The IPv4 payload is not TCP (the protocol number found).
    NotTcp(u8),
    /// TCP header malformed (bad data offset or truncated).
    BadTcp(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::ShortEthernet(n) => write!(f, "frame too short for Ethernet ({n} bytes)"),
            DecodeError::NotIpv4(ty) => write!(f, "not IPv4 (ethertype {ty:#06X})"),
            DecodeError::BadIpv4(why) => write!(f, "bad IPv4 header: {why}"),
            DecodeError::NotTcp(p) => write!(f, "not TCP (IP protocol {p})"),
            DecodeError::BadTcp(why) => write!(f, "bad TCP header: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A decoded TCP segment (views borrow from the frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpSegmentView<'a> {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source TCP port.
    pub src_port: u16,
    /// Destination TCP port.
    pub dst_port: u16,
    /// Raw 32-bit sequence number.
    pub seq: u32,
    /// Raw 32-bit acknowledgement number (meaningful when ACK is set).
    pub ack: u32,
    /// TCP flag byte (see [`flags`]).
    pub flags: u8,
    /// Advertised receive window.
    pub window: u16,
    /// The MSS option value, when present (SYN segments).
    pub mss_option: Option<u16>,
    /// The TCP payload.
    pub payload: &'a [u8],
}

impl TcpSegmentView<'_> {
    /// True when the given flag bits are all set.
    pub fn has(&self, bits: u8) -> bool {
        self.flags & bits == bits
    }
}

/// Decodes an Ethernet frame down to a TCP segment view.
pub fn decode(frame: &[u8]) -> Result<TcpSegmentView<'_>, DecodeError> {
    if frame.len() < 14 {
        return Err(DecodeError::ShortEthernet(frame.len()));
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != 0x0800 {
        return Err(DecodeError::NotIpv4(ethertype));
    }
    let ip = &frame[14..];
    if ip.len() < 20 {
        return Err(DecodeError::BadIpv4(format!(
            "truncated ({} bytes)",
            ip.len()
        )));
    }
    let version = ip[0] >> 4;
    if version != 4 {
        return Err(DecodeError::BadIpv4(format!("version {version}")));
    }
    let ihl = usize::from(ip[0] & 0x0F) * 4;
    if !(20..=60).contains(&ihl) || ip.len() < ihl {
        return Err(DecodeError::BadIpv4(format!("IHL {ihl} bytes")));
    }
    let total_len = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
    if total_len < ihl || total_len > ip.len() {
        return Err(DecodeError::BadIpv4(format!(
            "total length {total_len} vs {} captured",
            ip.len()
        )));
    }
    let proto = ip[9];
    if proto != 6 {
        return Err(DecodeError::NotTcp(proto));
    }
    let src_ip: [u8; 4] = ip[12..16].try_into().expect("4 bytes");
    let dst_ip: [u8; 4] = ip[16..20].try_into().expect("4 bytes");
    let tcp = &ip[ihl..total_len];
    if tcp.len() < 20 {
        return Err(DecodeError::BadTcp(format!(
            "truncated ({} bytes)",
            tcp.len()
        )));
    }
    let data_off = usize::from(tcp[12] >> 4) * 4;
    if !(20..=60).contains(&data_off) || tcp.len() < data_off {
        return Err(DecodeError::BadTcp(format!("data offset {data_off} bytes")));
    }
    let mss_option = parse_mss_option(&tcp[20..data_off]);
    Ok(TcpSegmentView {
        src_ip,
        dst_ip,
        src_port: u16::from_be_bytes([tcp[0], tcp[1]]),
        dst_port: u16::from_be_bytes([tcp[2], tcp[3]]),
        seq: u32::from_be_bytes([tcp[4], tcp[5], tcp[6], tcp[7]]),
        ack: u32::from_be_bytes([tcp[8], tcp[9], tcp[10], tcp[11]]),
        flags: tcp[13],
        window: u16::from_be_bytes([tcp[14], tcp[15]]),
        mss_option,
        payload: &tcp[data_off..],
    })
}

/// Walks the TCP options block for a kind-2 (MSS) option. Tolerates (and
/// stops at) malformed option lengths.
fn parse_mss_option(mut options: &[u8]) -> Option<u16> {
    while let Some(&kind) = options.first() {
        match kind {
            0 => return None,             // end of options
            1 => options = &options[1..], // NOP
            2 => {
                if options.len() >= 4 && options[1] == 4 {
                    return Some(u16::from_be_bytes([options[2], options[3]]));
                }
                return None;
            }
            _ => {
                let len = usize::from(*options.get(1)?);
                if len < 2 || len > options.len() {
                    return None;
                }
                options = &options[len..];
            }
        }
    }
    None
}

/// Everything needed to build one TCP/IPv4/Ethernet frame.
#[derive(Debug, Clone, Copy)]
pub struct FrameSpec<'a> {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Source TCP port.
    pub src_port: u16,
    /// Destination TCP port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// TCP flags.
    pub flags: u8,
    /// Advertised receive window.
    pub window: u16,
    /// MSS option to include (SYN segments).
    pub mss_option: Option<u16>,
    /// TCP payload.
    pub payload: &'a [u8],
}

/// RFC 1071 ones'-complement sum over 16-bit words.
fn checksum_words(sum: &mut u32, bytes: &[u8]) {
    let mut chunks = bytes.chunks_exact(2);
    for c in &mut chunks {
        *sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        *sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
}

fn fold_checksum(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Builds a byte-valid Ethernet/IPv4/TCP frame (checksums included).
pub fn encode(spec: &FrameSpec<'_>) -> Vec<u8> {
    let options_len = if spec.mss_option.is_some() { 4 } else { 0 };
    let tcp_len = 20 + options_len + spec.payload.len();
    let ip_len = 20 + tcp_len;
    let mut frame = Vec::with_capacity(14 + ip_len);

    // Ethernet: locally administered MACs derived from the IPs, so every
    // endpoint keeps a stable address across the capture.
    frame.extend_from_slice(&mac_for(spec.dst_ip));
    frame.extend_from_slice(&mac_for(spec.src_ip));
    frame.extend_from_slice(&0x0800u16.to_be_bytes());

    // IPv4 header.
    let ip_start = frame.len();
    frame.push(0x45); // version 4, IHL 5
    frame.push(0);
    frame.extend_from_slice(&(ip_len as u16).to_be_bytes());
    frame.extend_from_slice(&0u16.to_be_bytes()); // identification
    frame.extend_from_slice(&0x4000u16.to_be_bytes()); // don't fragment
    frame.push(64); // TTL
    frame.push(6); // TCP
    frame.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    frame.extend_from_slice(&spec.src_ip);
    frame.extend_from_slice(&spec.dst_ip);
    let mut ip_sum = 0u32;
    checksum_words(&mut ip_sum, &frame[ip_start..ip_start + 20]);
    let ip_csum = fold_checksum(ip_sum);
    frame[ip_start + 10..ip_start + 12].copy_from_slice(&ip_csum.to_be_bytes());

    // TCP header.
    let tcp_start = frame.len();
    frame.extend_from_slice(&spec.src_port.to_be_bytes());
    frame.extend_from_slice(&spec.dst_port.to_be_bytes());
    frame.extend_from_slice(&spec.seq.to_be_bytes());
    frame.extend_from_slice(&spec.ack.to_be_bytes());
    let data_off = ((20 + options_len) / 4) as u8;
    frame.push(data_off << 4);
    frame.push(spec.flags);
    frame.extend_from_slice(&spec.window.to_be_bytes());
    frame.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    frame.extend_from_slice(&0u16.to_be_bytes()); // urgent pointer
    if let Some(mss) = spec.mss_option {
        frame.extend_from_slice(&[2, 4]);
        frame.extend_from_slice(&mss.to_be_bytes());
    }
    frame.extend_from_slice(spec.payload);

    // TCP checksum over the pseudo-header + segment.
    let mut sum = 0u32;
    checksum_words(&mut sum, &spec.src_ip);
    checksum_words(&mut sum, &spec.dst_ip);
    sum += 6; // protocol
    sum += tcp_len as u32;
    checksum_words(&mut sum, &frame[tcp_start..]);
    let tcp_csum = fold_checksum(sum);
    frame[tcp_start + 16..tcp_start + 18].copy_from_slice(&tcp_csum.to_be_bytes());
    frame
}

/// A stable locally-administered MAC for an IPv4 address.
fn mac_for(ip: [u8; 4]) -> [u8; 6] {
    [0x02, 0x00, ip[0], ip[1], ip[2], ip[3]]
}

/// Verifies the IPv4 header checksum and TCP checksum of an encoded
/// frame. Exposed for tests and capture linting; ingestion itself stays
/// lenient (real captures legitimately carry offloaded/zeroed checksums).
pub fn verify_checksums(frame: &[u8]) -> Result<(), DecodeError> {
    decode(frame)?; // structural validity first
    let ip = &frame[14..];
    let ihl = usize::from(ip[0] & 0x0F) * 4;
    let mut ip_sum = 0u32;
    checksum_words(&mut ip_sum, &ip[..ihl]);
    if fold_checksum(ip_sum) != 0 {
        return Err(DecodeError::BadIpv4("header checksum mismatch".into()));
    }
    let total_len = usize::from(u16::from_be_bytes([ip[2], ip[3]]));
    let tcp = &ip[ihl..total_len];
    let mut sum = 0u32;
    checksum_words(&mut sum, &ip[12..16]);
    checksum_words(&mut sum, &ip[16..20]);
    sum += 6;
    sum += tcp.len() as u32;
    checksum_words(&mut sum, tcp);
    if fold_checksum(sum) != 0 {
        return Err(DecodeError::BadTcp("checksum mismatch".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(payload: &'a [u8], mss: Option<u16>) -> FrameSpec<'a> {
        FrameSpec {
            src_ip: [192, 0, 2, 1],
            dst_ip: [198, 51, 100, 7],
            src_port: 40001,
            dst_port: 80,
            seq: 0xDEAD_BEEF,
            ack: 0x0102_0304,
            flags: flags::ACK | flags::PSH,
            window: 65000,
            mss_option: mss,
            payload,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = spec(b"GET / HTTP/1.1\r\n", Some(100));
        let frame = encode(&s);
        let v = decode(&frame).unwrap();
        assert_eq!(v.src_ip, s.src_ip);
        assert_eq!(v.dst_ip, s.dst_ip);
        assert_eq!(v.src_port, s.src_port);
        assert_eq!(v.dst_port, s.dst_port);
        assert_eq!(v.seq, s.seq);
        assert_eq!(v.ack, s.ack);
        assert_eq!(v.flags, s.flags);
        assert_eq!(v.window, s.window);
        assert_eq!(v.mss_option, Some(100));
        assert_eq!(v.payload, s.payload);
    }

    #[test]
    fn checksums_are_valid_and_detect_corruption() {
        let frame = encode(&spec(b"payload bytes", None));
        verify_checksums(&frame).unwrap();
        let mut bad = frame.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(
            verify_checksums(&bad).is_err(),
            "payload flip must break the TCP checksum"
        );
        let mut bad_ip = frame;
        bad_ip[14 + 8] = 1; // TTL participates in the IP checksum
        assert!(verify_checksums(&bad_ip).is_err());
    }

    #[test]
    fn non_ipv4_and_non_tcp_are_typed_errors() {
        let mut arp = encode(&spec(b"", None));
        arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
        assert!(matches!(decode(&arp), Err(DecodeError::NotIpv4(0x0806))));
        let mut udp = encode(&spec(b"", None));
        udp[14 + 9] = 17;
        assert!(matches!(decode(&udp), Err(DecodeError::NotTcp(17))));
    }

    #[test]
    fn truncated_layers_are_errors_not_panics() {
        let frame = encode(&spec(b"abcdef", None));
        for cut in 0..frame.len() {
            // Every prefix must decode or fail cleanly.
            let _ = decode(&frame[..cut]);
        }
        assert!(matches!(
            decode(&frame[..10]),
            Err(DecodeError::ShortEthernet(10))
        ));
        assert!(matches!(decode(&frame[..20]), Err(DecodeError::BadIpv4(_))));
    }

    #[test]
    fn bad_data_offset_is_rejected() {
        let mut frame = encode(&spec(b"xy", None));
        let tcp_start = 14 + 20;
        frame[tcp_start + 12] = 0x20; // data offset 8 bytes: below minimum
        assert!(matches!(decode(&frame), Err(DecodeError::BadTcp(_))));
    }

    #[test]
    fn mss_option_parsing_tolerates_garbage() {
        assert_eq!(parse_mss_option(&[1, 1, 2, 4, 0, 100]), Some(100));
        assert_eq!(
            parse_mss_option(&[3, 0, 2, 4, 0, 100]),
            None,
            "bad length stops the walk"
        );
        assert_eq!(
            parse_mss_option(&[0, 2, 4, 0, 100]),
            None,
            "EOL stops the walk"
        );
        assert_eq!(parse_mss_option(&[2, 3, 0]), None, "truncated MSS option");
    }
}
