//! The classic libpcap capture container.
//!
//! Supports the classic (pre-pcapng) file format in all four framings
//! found in the wild: microsecond and nanosecond timestamp magic, each in
//! either byte order (a capture written on a big-endian machine keeps its
//! native order; readers must byte-swap). Writing always produces the
//! canonical little-endian microsecond framing.
//!
//! ```text
//! global header (24 bytes)
//!   magic     u32   0xA1B2C3D4 (µs) / 0xA1B23C4D (ns), either endianness
//!   version   u16.u16   2.4
//!   thiszone  i32   0
//!   sigfigs   u32   0
//!   snaplen   u32   max captured length
//!   network   u32   link type (1 = Ethernet)
//! per-packet record header (16 bytes)
//!   ts_sec    u32   seconds
//!   ts_frac   u32   microseconds (or nanoseconds under the ns magic)
//!   incl_len  u32   bytes captured and stored in the file
//!   orig_len  u32   bytes on the wire
//! ```
//!
//! The reader is **zero-copy** — [`PcapRecord::data`] borrows straight
//! from the input buffer — and **tolerant**: a framing error (truncated
//! record header, an `incl_len` that runs past the file or past any sane
//! snap length) ends iteration with a diagnostic instead of panicking,
//! because a corrupt length field destroys the framing of everything
//! after it. Per-packet *content* corruption is the next layer's problem
//! (see [`crate::packet`]), where single packets can be skipped.

use std::fmt;
use std::io::{self, Write};

/// Classic pcap magic, microsecond timestamps.
pub const MAGIC_MICROS: u32 = 0xA1B2_C3D4;
/// Classic pcap magic, nanosecond timestamps.
pub const MAGIC_NANOS: u32 = 0xA1B2_3C4D;
/// Link type written (and required) by this crate: Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Ceiling on `incl_len` accepted by the reader. Anything larger is a
/// corrupt length field, not a packet (standard snap lengths top out at
/// 256 KiB for jumbo captures).
pub const MAX_INCL_LEN: u32 = 256 * 1024;

/// Byte order of a capture's integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endianness {
    /// Integers are little-endian (the common case).
    Little,
    /// Integers are big-endian (capture written on a BE machine).
    Big,
}

/// A fatal framing problem: nothing after the reported offset can be
/// trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapError {
    /// Byte offset into the capture where framing broke.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for PcapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pcap framing error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for PcapError {}

fn err(offset: usize, reason: impl Into<String>) -> PcapError {
    PcapError {
        offset,
        reason: reason.into(),
    }
}

/// One captured packet, borrowing its bytes from the input buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcapRecord<'a> {
    /// 0-based index of the record within the capture.
    pub index: usize,
    /// Timestamp in seconds (fractional part from the µs/ns field).
    pub ts: f64,
    /// The captured link-layer frame.
    pub data: &'a [u8],
    /// Original on-the-wire length (≥ `data.len()` when truncated by the
    /// capturing snap length).
    pub orig_len: u32,
}

/// Zero-copy reader over a classic pcap buffer.
#[derive(Debug, Clone)]
pub struct PcapReader<'a> {
    buf: &'a [u8],
    offset: usize,
    endianness: Endianness,
    nanos: bool,
    linktype: u32,
    index: usize,
    fatal: bool,
}

impl<'a> PcapReader<'a> {
    /// Parses the global header. Fails when the buffer is shorter than a
    /// header or carries an unknown magic.
    pub fn new(buf: &'a [u8]) -> Result<Self, PcapError> {
        if buf.len() < 24 {
            return Err(err(
                0,
                format!("file too short for a pcap header ({} bytes)", buf.len()),
            ));
        }
        let magic_le = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
        let magic_be = u32::from_be_bytes(buf[0..4].try_into().expect("4 bytes"));
        let (endianness, nanos) = match (magic_le, magic_be) {
            (MAGIC_MICROS, _) => (Endianness::Little, false),
            (MAGIC_NANOS, _) => (Endianness::Little, true),
            (_, MAGIC_MICROS) => (Endianness::Big, false),
            (_, MAGIC_NANOS) => (Endianness::Big, true),
            _ => return Err(err(0, format!("unknown pcap magic {magic_le:#010X}"))),
        };
        let rd = |range: std::ops::Range<usize>| -> u32 {
            let bytes: [u8; 4] = buf[range].try_into().expect("4 bytes");
            match endianness {
                Endianness::Little => u32::from_le_bytes(bytes),
                Endianness::Big => u32::from_be_bytes(bytes),
            }
        };
        let linktype = rd(20..24);
        Ok(PcapReader {
            buf,
            offset: 24,
            endianness,
            nanos,
            linktype,
            index: 0,
            fatal: false,
        })
    }

    /// The capture's byte order.
    pub fn endianness(&self) -> Endianness {
        self.endianness
    }

    /// True when timestamps carry nanoseconds.
    pub fn nanosecond_timestamps(&self) -> bool {
        self.nanos
    }

    /// The link type declared in the global header.
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    fn read_u32(&self, at: usize) -> u32 {
        let bytes: [u8; 4] = self.buf[at..at + 4].try_into().expect("4 bytes");
        match self.endianness {
            Endianness::Little => u32::from_le_bytes(bytes),
            Endianness::Big => u32::from_be_bytes(bytes),
        }
    }

    /// Reads the next record. `None` at a clean end of file; a framing
    /// error is returned once and ends iteration.
    #[allow(clippy::should_implement_trait)] // iterator-style, but fallible
    pub fn next(&mut self) -> Option<Result<PcapRecord<'a>, PcapError>> {
        if self.fatal || self.offset >= self.buf.len() {
            return None;
        }
        let at = self.offset;
        if self.buf.len() - at < 16 {
            self.fatal = true;
            return Some(Err(err(
                at,
                format!(
                    "truncated record header ({} trailing bytes)",
                    self.buf.len() - at
                ),
            )));
        }
        let ts_sec = self.read_u32(at);
        let ts_frac = self.read_u32(at + 4);
        let incl_len = self.read_u32(at + 8);
        if incl_len > MAX_INCL_LEN {
            self.fatal = true;
            return Some(Err(err(
                at + 8,
                format!("corrupt incl_len {incl_len} (max {MAX_INCL_LEN})"),
            )));
        }
        let orig_len = self.read_u32(at + 12);
        let data_start = at + 16;
        let data_end = data_start + incl_len as usize;
        if data_end > self.buf.len() {
            self.fatal = true;
            return Some(Err(err(
                at + 8,
                format!(
                    "record of {incl_len} bytes runs past the end of the file \
                     ({} bytes remain)",
                    self.buf.len() - data_start
                ),
            )));
        }
        let divisor = if self.nanos { 1e9 } else { 1e6 };
        let ts = f64::from(ts_sec) + f64::from(ts_frac) / divisor;
        let record = PcapRecord {
            index: self.index,
            ts,
            data: &self.buf[data_start..data_end],
            orig_len,
        };
        self.offset = data_end;
        self.index += 1;
        Some(Ok(record))
    }
}

/// Writes the canonical little-endian microsecond framing.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    w: W,
    /// `(sec, µs)` of the last record, for monotonicity enforcement.
    last: Option<(u64, u32)>,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header (Ethernet link type) and returns the
    /// writer.
    pub fn new(mut w: W) -> io::Result<Self> {
        w.write_all(&MAGIC_MICROS.to_le_bytes())?;
        w.write_all(&2u16.to_le_bytes())?; // version major
        w.write_all(&4u16.to_le_bytes())?; // version minor
        w.write_all(&0i32.to_le_bytes())?; // thiszone
        w.write_all(&0u32.to_le_bytes())?; // sigfigs
        w.write_all(&MAX_INCL_LEN.to_le_bytes())?; // snaplen
        w.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { w, last: None })
    }

    /// Appends one frame at timestamp `ts` (seconds). Timestamps are
    /// nudged forward by one microsecond when needed so the file stays
    /// strictly chronological — simulation events routinely share an
    /// instant, and downstream round grouping relies on file order
    /// agreeing with time order. The nudge operates on the quantized
    /// `(sec, µs)` pair, not the float, so it survives rounding.
    pub fn write_frame(&mut self, ts: f64, frame: &[u8]) -> io::Result<()> {
        let whole = ts.floor();
        let mut sec = whole.max(0.0) as u64;
        let mut micros = ((ts - whole) * 1e6).round() as u32;
        // 1e6 µs would denormalize the record; carry into the seconds.
        if micros >= 1_000_000 {
            sec += 1;
            micros = 0;
        }
        if let Some(last) = self.last {
            if (sec, micros) <= last {
                (sec, micros) = last;
                micros += 1;
                if micros >= 1_000_000 {
                    sec += 1;
                    micros = 0;
                }
            }
        }
        self.last = Some((sec, micros));
        self.w.write_all(&(sec as u32).to_le_bytes())?;
        self.w.write_all(&micros.to_le_bytes())?;
        let len = u32::try_from(frame.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too long"))?;
        self.w.write_all(&len.to_le_bytes())?; // incl_len
        self.w.write_all(&len.to_le_bytes())?; // orig_len
        self.w.write_all(frame)
    }

    /// Flushes and returns the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Byte-swaps a little-endian capture into its big-endian twin (and vice
/// versa), record by record, stopping at the first ill-framed record.
///
/// Real big-endian captures come from BE capture hosts; this synthesizes
/// one from the canonical LE output so endianness handling can be tested
/// (and exotic captures reproduced) without such a machine.
pub fn byteswap_capture(src: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(src.len());
    if src.len() < 24 {
        out.extend_from_slice(src);
        return out;
    }
    let swap = |out: &mut Vec<u8>, bytes: &[u8]| out.extend(bytes.iter().rev());
    swap(&mut out, &src[0..4]); // magic
    swap(&mut out, &src[4..6]); // version major
    swap(&mut out, &src[6..8]); // version minor
    for word in 2..6 {
        swap(&mut out, &src[word * 4..word * 4 + 4]);
    }
    // incl_len must be read in the capture's own byte order.
    let native_le = u32::from_le_bytes(src[0..4].try_into().expect("4 bytes")) == MAGIC_MICROS
        || u32::from_le_bytes(src[0..4].try_into().expect("4 bytes")) == MAGIC_NANOS;
    let mut at = 24;
    while at + 16 <= src.len() {
        let len_bytes: [u8; 4] = src[at + 8..at + 12].try_into().expect("4 bytes");
        let incl = if native_le {
            u32::from_le_bytes(len_bytes)
        } else {
            u32::from_be_bytes(len_bytes)
        } as usize;
        if at + 16 + incl > src.len() {
            break;
        }
        for word in 0..4 {
            swap(&mut out, &src[at + word * 4..at + word * 4 + 4]);
        }
        out.extend_from_slice(&src[at + 16..at + 16 + incl]);
        at += 16 + incl;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_one(ts: f64, payload: &[u8]) -> (f64, Vec<u8>) {
        let mut out = Vec::new();
        {
            let mut w = PcapWriter::new(&mut out).unwrap();
            w.write_frame(ts, payload).unwrap();
            w.finish().unwrap();
        }
        let mut r = PcapReader::new(&out).unwrap();
        let rec = r.next().unwrap().unwrap();
        assert!(r.next().is_none());
        (rec.ts, rec.data.to_vec())
    }

    #[test]
    fn write_read_roundtrip() {
        let (ts, data) = roundtrip_one(1_300_000_000.25, b"hello frame");
        assert!((ts - 1_300_000_000.25).abs() < 2e-6, "ts {ts}");
        assert_eq!(data, b"hello frame");
    }

    #[test]
    fn timestamps_are_forced_strictly_monotonic() {
        let mut out = Vec::new();
        let mut w = PcapWriter::new(&mut out).unwrap();
        w.write_frame(10.0, b"a").unwrap();
        w.write_frame(10.0, b"b").unwrap();
        w.write_frame(9.0, b"c").unwrap();
        w.finish().unwrap();
        let mut r = PcapReader::new(&out).unwrap();
        let mut last = f64::NEG_INFINITY;
        while let Some(rec) = r.next() {
            let rec = rec.unwrap();
            assert!(rec.ts > last, "monotonic: {} after {last}", rec.ts);
            last = rec.ts;
        }
    }

    #[test]
    fn big_endian_captures_parse_identically() {
        let mut le = Vec::new();
        let mut w = PcapWriter::new(&mut le).unwrap();
        w.write_frame(123.000004, b"payload one").unwrap();
        w.write_frame(124.5, b"two").unwrap();
        w.finish().unwrap();
        let be = byteswap_capture(&le);
        assert_eq!(byteswap_capture(&be), le, "byteswap is an involution");
        let mut rl = PcapReader::new(&le).unwrap();
        let mut rb = PcapReader::new(&be).unwrap();
        assert_eq!(rb.endianness(), Endianness::Big);
        assert_eq!(rb.linktype(), LINKTYPE_ETHERNET);
        loop {
            match (rl.next(), rb.next()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    let (a, b) = (a.unwrap(), b.unwrap());
                    assert_eq!(a.ts, b.ts);
                    assert_eq!(a.data, b.data);
                }
                other => panic!("reader divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_header_is_an_error_not_a_panic() {
        assert!(PcapReader::new(&[0xD4, 0xC3]).is_err());
        let e = PcapReader::new(&[0u8; 24]).unwrap_err();
        assert!(e.reason.contains("magic"), "{e}");
    }

    #[test]
    fn corrupt_incl_len_stops_with_a_diagnostic() {
        let mut out = Vec::new();
        let mut w = PcapWriter::new(&mut out).unwrap();
        w.write_frame(1.0, b"ok").unwrap();
        w.finish().unwrap();
        // Smash the record length to an absurd value.
        let at = 24 + 8;
        out[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = PcapReader::new(&out).unwrap();
        let e = r.next().unwrap().unwrap_err();
        assert!(e.reason.contains("incl_len"), "{e}");
        assert!(r.next().is_none(), "iteration ends after a framing error");
    }

    #[test]
    fn record_running_past_eof_is_reported() {
        let mut out = Vec::new();
        let mut w = PcapWriter::new(&mut out).unwrap();
        w.write_frame(1.0, &[7u8; 64]).unwrap();
        w.finish().unwrap();
        out.truncate(out.len() - 10);
        let mut r = PcapReader::new(&out).unwrap();
        let e = r.next().unwrap().unwrap_err();
        assert!(e.reason.contains("runs past"), "{e}");
    }
}
