//! Per-RTT window reconstruction: flow events → [`WindowTrace`].
//!
//! CAAI's prober measures the server's congestion window per emulated
//! round as "highest sequence received this round minus the previous
//! round's highest" (§IV-D). On the wire those rounds are visible without
//! any side channel: every round is one burst of server data followed by
//! the prober's batch of deferred ACKs, so
//!
//! * a maximal run of data packets (or data separated by sub-round gaps)
//!   is one round's receipt;
//! * the emulated-RTT schedule is recoverable from the data→ACK spacing
//!   (0.8 s ⇒ environment B, 1.0 s ⇒ environment A — Fig. 2);
//! * the **ACK-withholding point** is a data burst that is never ACKed —
//!   that burst's window exceeded the `w_max` threshold, which pins the
//!   threshold to the unique ladder rung in `[w_prev, w_cross)`;
//! * the **emulated timeout** is a retransmission arriving after a burst
//!   that received no ACKs (pre/post split);
//! * silent rounds (all data or all ACK progress lost) reappear as `w = 0`
//!   rounds by walking the known per-round RTT schedule across larger
//!   burst-to-burst gaps;
//! * the close tells invalid traces apart: a server FIN before the
//!   crossing is *page too short*, during recovery *recovery too short*;
//!   a prober FIN after an unanswered withholding is *no timeout
//!   response*, and otherwise *never exceeded threshold*.
//!
//! A probe session (all connections between one prober and one server)
//! then replays the `w_max` ladder walk of `Prober::gather` to rebuild
//! the full [`GatherOutcome`] — including the threshold rungs of attempts
//! that never crossed, which leave no rung evidence on the wire.

use crate::flow::{Endpoint, Flow, FlowEvent, Reassembly};
use caai_core::prober::GatherOutcome;
use caai_core::trace::{InvalidReason, TracePair, WindowTrace, POST_TIMEOUT_ROUNDS};
use caai_netem::schedule::{RTT_LONG, RTT_SHORT};
use caai_netem::{EnvironmentId, Phase, RttSchedule};

/// Data packets closer together than this are one burst; the emulated
/// RTTs (0.8 s / 1.0 s) are an order of magnitude larger, so the margin
/// is wide on both sides.
pub const BURST_GAP: f64 = 0.25;

/// The default `w_max` ladder (mirrors `ProberConfig::default`).
pub const DEFAULT_LADDER: [u32; 4] = [512, 256, 128, 64];

/// Ceiling on schedule-inferred silent rounds inserted between two
/// bursts, so a wildly mis-timed capture cannot inflate a trace without
/// bound.
const MAX_INSERTED_ZEROS: usize = 64;

/// One reconstructed probing connection.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionObservation {
    /// Timestamp of the connection's first packet.
    pub start: f64,
    /// The reconstructed trace. For connections that never crossed the
    /// threshold, `wmax_threshold` is 0 here — the wire carries no rung
    /// evidence — and is assigned by the session-level ladder replay.
    pub trace: WindowTrace,
    /// True when the ACK-withholding point was observed.
    pub crossed: bool,
    /// The `w_max` rung pinned by the withholding point, when crossed.
    pub inferred_wmax: Option<u32>,
}

/// One data burst: a candidate measurement round.
#[derive(Debug, Clone, Copy)]
struct Burst {
    t0: f64,
    /// Smallest packet index seen in the burst.
    min_pkt: u64,
    /// One past the largest packet index seen in the burst.
    max_end: u64,
    /// True when the burst opens with a retransmission.
    head_retransmit: bool,
    /// True when at least one ACK followed the previous burst.
    acked_before: bool,
    /// Time of the first ACK following this burst (for RTT inference).
    first_ack_after: Option<f64>,
}

/// Groups a flow's events into bursts, annotating each with whether ACKs
/// preceded it and when the first ACK after it was sent.
fn group_bursts(events: &[FlowEvent], mss: u64) -> Vec<Burst> {
    let mut bursts: Vec<Burst> = Vec::new();
    let mut acks_since_last_data = 0usize;
    let mut last_data_t = f64::NEG_INFINITY;
    for ev in events {
        match *ev {
            FlowEvent::Data {
                t,
                seq,
                len,
                retransmit,
            } => {
                let pkt = seq / mss;
                let end = (seq + u64::from(len)).div_ceil(mss);
                let new_burst = match bursts.last() {
                    None => true,
                    Some(_) => acks_since_last_data > 0 || t - last_data_t > BURST_GAP,
                };
                if new_burst {
                    bursts.push(Burst {
                        t0: t,
                        min_pkt: pkt,
                        max_end: end,
                        head_retransmit: retransmit,
                        acked_before: acks_since_last_data > 0 || bursts.is_empty(),
                        first_ack_after: None,
                    });
                } else {
                    let b = bursts.last_mut().expect("burst exists");
                    b.min_pkt = b.min_pkt.min(pkt);
                    b.max_end = b.max_end.max(end);
                }
                acks_since_last_data = 0;
                last_data_t = t;
            }
            FlowEvent::Ack { t, .. } => {
                acks_since_last_data += 1;
                if let Some(b) = bursts.last_mut() {
                    if b.first_ack_after.is_none() {
                        b.first_ack_after = Some(t);
                    }
                }
            }
        }
    }
    bursts
}

/// Infers the environment from the first round's emulated RTT (the gap
/// between a burst's arrival and its deferred ACK batch, Fig. 2).
fn infer_env(bursts: &[Burst]) -> EnvironmentId {
    for b in bursts {
        if let Some(ack_t) = b.first_ack_after {
            let rtt = ack_t - b.t0;
            return if (rtt - RTT_SHORT).abs() < (rtt - RTT_LONG).abs() {
                EnvironmentId::B
            } else {
                EnvironmentId::A
            };
        }
    }
    EnvironmentId::A
}

/// Pins the `w_max` rung from the withholding point: the prober withholds
/// as soon as a measured window *exceeds* the threshold, so the rung is
/// the largest ladder value below the crossing window (slow start at most
/// doubles per round, making that value unique).
fn infer_wmax(w_cross: u32, ladder: &[u32]) -> u32 {
    ladder
        .iter()
        .copied()
        .filter(|&r| r < w_cross)
        .max()
        .or_else(|| ladder.iter().copied().min())
        .unwrap_or(64)
}

/// Appends `w = 0` rounds for schedule-sized silences between `prev_t`
/// and `next_t`, advancing the 1-based round counter. Returns the updated
/// expected time base.
fn insert_silent_rounds(
    windows: &mut Vec<u32>,
    schedule: &RttSchedule,
    phase: Phase,
    round: &mut u32,
    prev_t: f64,
    next_t: f64,
) {
    let mut expected = prev_t + schedule.rtt(phase, *round);
    let mut inserted = 0;
    while inserted < MAX_INSERTED_ZEROS {
        let next_rtt = schedule.rtt(phase, *round + 1);
        if next_t <= expected + 0.5 * next_rtt {
            break;
        }
        windows.push(0);
        *round += 1;
        expected += next_rtt;
        inserted += 1;
    }
}

/// Reconstructs one connection's window trace from its reassembled flow.
/// Returns `None` for flows that carried no server data at all (not a
/// probe connection this pipeline can say anything about).
pub fn observe_connection(flow: &Flow, ladder: &[u32]) -> Option<ConnectionObservation> {
    let mss = flow.effective_mss()?;
    if flow
        .events
        .iter()
        .all(|e| !matches!(e, FlowEvent::Data { .. }))
    {
        return None;
    }
    let bursts = group_bursts(&flow.events, u64::from(mss.max(1)));
    let env = infer_env(&bursts);
    let schedule = RttSchedule::new(env);

    // The pre/post boundary: the first burst that opens with a
    // retransmission after a burst that was never ACKed — the server's
    // response to the emulated timeout.
    let timeout_idx = bursts
        .iter()
        .enumerate()
        .skip(1)
        .find(|(_, b)| !b.acked_before && b.head_retransmit)
        .map(|(i, _)| i);

    // ---- Pre-timeout windows (§IV-D measurement). ----------------------
    let pre_bursts = &bursts[..timeout_idx.unwrap_or(bursts.len())];
    let mut pre: Vec<u32> = Vec::new();
    let mut prev_end = 0u64;
    let mut round = 0u32;
    let mut prev_t = None;
    for b in pre_bursts {
        if let Some(pt) = prev_t {
            insert_silent_rounds(
                &mut pre,
                &schedule,
                Phase::BeforeTimeout,
                &mut round,
                pt,
                b.t0,
            );
        }
        let w = b.max_end.saturating_sub(prev_end);
        prev_end = prev_end.max(b.max_end);
        pre.push(u32::try_from(w).unwrap_or(u32::MAX));
        round += 1;
        prev_t = Some(b.t0);
    }

    // The withholding point: the last pre burst drew no ACKs (either the
    // timeout followed, or the flow ended with the server never
    // responding to it).
    let withheld = match timeout_idx {
        Some(_) => true,
        None => pre_bursts
            .last()
            .is_some_and(|b| b.first_ack_after.is_none()),
    };

    // ---- Post-timeout windows. -----------------------------------------
    let mut post: Vec<u32> = Vec::new();
    if let Some(idx) = timeout_idx {
        let post_bursts = &bursts[idx..];
        // §IV-D re-anchoring: the first retransmission's index restarts
        // the measurement baseline.
        let mut prev_end = post_bursts.first().map_or(0, |b| b.min_pkt);
        let mut round = 0u32;
        let mut prev_t = None;
        for b in post_bursts {
            if let Some(pt) = prev_t {
                insert_silent_rounds(
                    &mut post,
                    &schedule,
                    Phase::AfterTimeout,
                    &mut round,
                    pt,
                    b.t0,
                );
            }
            let w = b.max_end.saturating_sub(prev_end);
            prev_end = prev_end.max(b.max_end);
            post.push(u32::try_from(w).unwrap_or(u32::MAX));
            round += 1;
            prev_t = Some(b.t0);
        }
    }

    // ---- Validity & failure classification (§IV-E, §VII-B). ------------
    let invalid = if timeout_idx.is_some() {
        if post.len() >= POST_TIMEOUT_ROUNDS {
            None
        } else {
            Some(InvalidReason::RecoveryTooShort)
        }
    } else if withheld {
        Some(InvalidReason::NoTimeoutResponse)
    } else if flow.closed_by == Some(Endpoint::Server) {
        Some(InvalidReason::PageTooShort)
    } else {
        Some(InvalidReason::NeverExceededThreshold)
    };

    let crossed = withheld;
    let inferred_wmax = if crossed {
        pre.last().map(|&w| infer_wmax(w, ladder))
    } else {
        None
    };

    Some(ConnectionObservation {
        start: flow.start,
        trace: WindowTrace {
            env,
            wmax_threshold: inferred_wmax.unwrap_or(0),
            mss,
            pre,
            post,
            invalid,
        },
        crossed,
        inferred_wmax,
    })
}

/// All connections between one prober and one server, in capture order —
/// the unit that yields one identification verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSession {
    /// The prober's IPv4 address.
    pub client_ip: [u8; 4],
    /// The server's IPv4 address.
    pub server_ip: [u8; 4],
    /// Reconstructed connections, ordered by first packet.
    pub connections: Vec<ConnectionObservation>,
    /// Flows grouped into this session (including dataless ones).
    pub flows: usize,
}

/// Groups a reassembled capture into probe sessions by (prober IP,
/// server IP), preserving capture order within and across sessions.
pub fn sessions(reassembly: &Reassembly, ladder: &[u32]) -> Vec<ProbeSession> {
    let mut out: Vec<ProbeSession> = Vec::new();
    for flow in &reassembly.flows {
        let key = (flow.client.0, flow.server.0);
        let session = match out.iter_mut().find(|s| (s.client_ip, s.server_ip) == key) {
            Some(s) => s,
            None => {
                out.push(ProbeSession {
                    client_ip: key.0,
                    server_ip: key.1,
                    connections: Vec::new(),
                    flows: 0,
                });
                out.last_mut().expect("just pushed")
            }
        };
        session.flows += 1;
        if let Some(obs) = observe_connection(flow, ladder) {
            session.connections.push(obs);
        }
    }
    for s in &mut out {
        s.connections
            .sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite timestamps"));
    }
    out
}

/// Replays the `w_max` ladder walk of `Prober::gather` over a session's
/// reconstructed connections, assigning threshold rungs to attempts that
/// never crossed and assembling the same [`GatherOutcome`] the prober
/// produced: the usable environment-A/B pair when one exists, and every
/// failed attempt otherwise.
pub fn session_outcome(session: &ProbeSession, ladder: &[u32]) -> GatherOutcome {
    let fallback = ladder.last().copied().unwrap_or(64);
    let mut failed: Vec<WindowTrace> = Vec::new();
    let mut rung_i = 0usize;
    let mut pending_a: Option<WindowTrace> = None;

    for conn in &session.connections {
        let mut trace = conn.trace.clone();
        match conn.inferred_wmax {
            Some(w) => {
                // The wire pinned the rung; keep the replay in sync.
                if let Some(pos) = ladder.iter().position(|&r| r == w) {
                    rung_i = pos;
                }
                trace.wmax_threshold = w;
            }
            None => {
                trace.wmax_threshold = ladder.get(rung_i).copied().unwrap_or(fallback);
            }
        }
        match trace.env {
            EnvironmentId::A => {
                if let Some(a) = pending_a.take() {
                    failed.push(a); // A followed by A: the B leg is missing
                }
                if trace.is_valid() {
                    pending_a = Some(trace);
                } else {
                    let descend = trace.invalid == Some(InvalidReason::NeverExceededThreshold);
                    failed.push(trace);
                    if descend {
                        rung_i += 1;
                        continue;
                    }
                    break; // any other failure aborts the walk
                }
            }
            EnvironmentId::B => match pending_a.take() {
                Some(a) => {
                    if trace.usable_for_classification() {
                        return GatherOutcome {
                            pair: Some(TracePair {
                                env_a: a,
                                env_b: trace,
                            }),
                            failed_attempts: failed,
                            // A wire observer cannot tell defense overhead
                            // from real data; reconstruction never claims it.
                            defense_overhead: None,
                        };
                    }
                    let descend = trace.invalid == Some(InvalidReason::NeverExceededThreshold);
                    failed.push(a);
                    failed.push(trace);
                    if !descend {
                        break;
                    }
                    rung_i += 1;
                }
                None => failed.push(trace), // B without a preceding A
            },
        }
    }
    if let Some(a) = pending_a {
        failed.push(a); // the capture ended before the B leg
    }
    GatherOutcome {
        pair: None,
        failed_attempts: failed,
        defense_overhead: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;

    fn data(t: f64, pkt: u64, retransmit: bool) -> FlowEvent {
        FlowEvent::Data {
            t,
            seq: pkt * 100,
            len: 100,
            retransmit,
        }
    }

    fn ack(t: f64, pkt: u64) -> FlowEvent {
        FlowEvent::Ack {
            t,
            ack: pkt * 100,
            duplicate: false,
        }
    }

    fn flow_of(events: Vec<FlowEvent>, closed_by: Option<Endpoint>) -> Flow {
        Flow {
            client: ([192, 0, 2, 1], 40000),
            server: ([198, 51, 100, 1], 80),
            start: events.first().map(FlowEvent::t).unwrap_or(0.0),
            client_mss: Some(100),
            server_mss: Some(100),
            max_payload: 100,
            events,
            closed_by,
            closed_at: None,
        }
    }

    /// Slow start 2, 4 at 1 s rounds, crossing burst of 8 at w_max 4
    /// (toy rungs), timeout, then a short recovery.
    fn toy_events(post_rounds: usize) -> Vec<FlowEvent> {
        let mut ev = Vec::new();
        let mut t = 0.0;
        let mut pkt = 0u64;
        for w in [2u64, 4] {
            for i in 0..w {
                ev.push(data(t, pkt + i, false));
            }
            pkt += w;
            t += 1.0;
            for i in 0..w {
                ev.push(ack(t, pkt - w + i + 1));
            }
        }
        // Crossing burst: 8 packets, never ACKed.
        for i in 0..8 {
            ev.push(data(t, pkt + i, false));
        }
        // Timeout: head retransmission 3 s later, then doubling recovery.
        let mut rt = t + 3.0;
        let mut una = pkt;
        for r in 0..post_rounds {
            let w = 1u64 << r.min(3);
            for i in 0..w {
                ev.push(data(rt, una + i, true));
            }
            una += w;
            rt += 1.0;
            for i in 0..w {
                ev.push(ack(rt, una - w + i + 1));
            }
        }
        ev
    }

    #[test]
    fn reconstructs_rounds_timeout_and_rung() {
        let flow = flow_of(toy_events(18), None);
        let obs = observe_connection(&flow, &[4, 2]).expect("observable");
        assert_eq!(obs.trace.env, EnvironmentId::A);
        assert_eq!(obs.trace.pre, vec![2, 4, 8]);
        assert!(obs.crossed);
        assert_eq!(
            obs.inferred_wmax,
            Some(4),
            "largest rung below the crossing w=8"
        );
        assert_eq!(obs.trace.post.len(), 18);
        assert_eq!(&obs.trace.post[..4], &[1, 2, 4, 8]);
        assert!(obs.trace.is_valid(), "{:?}", obs.trace);
    }

    #[test]
    fn short_recovery_is_recovery_too_short() {
        let flow = flow_of(toy_events(5), Some(Endpoint::Server));
        let obs = observe_connection(&flow, &[4]).unwrap();
        assert_eq!(obs.trace.invalid, Some(InvalidReason::RecoveryTooShort));
    }

    #[test]
    fn unanswered_withholding_is_no_timeout_response() {
        let mut ev = toy_events(0);
        // Truncate at the crossing burst: keep everything up to the last
        // pre-timeout data packet.
        ev.truncate(2 + 2 + 4 + 4 + 8);
        let flow = flow_of(ev, Some(Endpoint::Client));
        let obs = observe_connection(&flow, &[4]).unwrap();
        assert!(obs.crossed);
        assert_eq!(obs.trace.invalid, Some(InvalidReason::NoTimeoutResponse));
    }

    #[test]
    fn server_close_before_crossing_is_page_too_short() {
        let ev = vec![
            data(0.0, 0, false),
            data(0.0, 1, false),
            ack(1.0, 1),
            ack(1.0, 2),
        ];
        let flow = flow_of(ev, Some(Endpoint::Server));
        let obs = observe_connection(&flow, &[512]).unwrap();
        assert_eq!(obs.trace.invalid, Some(InvalidReason::PageTooShort));
        assert!(!obs.crossed);
        assert_eq!(
            obs.trace.wmax_threshold, 0,
            "rung comes from the session replay"
        );
    }

    #[test]
    fn prober_close_without_crossing_is_never_exceeded() {
        let ev = vec![
            data(0.0, 0, false),
            data(0.0, 1, false),
            ack(1.0, 2),
            data(1.0, 2, false),
            data(1.0, 3, false),
            ack(2.0, 4),
        ];
        let flow = flow_of(ev, Some(Endpoint::Client));
        let obs = observe_connection(&flow, &[512]).unwrap();
        assert_eq!(
            obs.trace.invalid,
            Some(InvalidReason::NeverExceededThreshold)
        );
    }

    #[test]
    fn environment_b_inferred_from_short_first_round() {
        let ev = vec![
            data(0.0, 0, false),
            data(0.0, 1, false),
            ack(0.8, 2),
            data(0.8, 2, false),
            ack(1.6, 3),
        ];
        let flow = flow_of(ev, Some(Endpoint::Client));
        let obs = observe_connection(&flow, &[512]).unwrap();
        assert_eq!(obs.trace.env, EnvironmentId::B);
    }

    #[test]
    fn silent_rounds_reappear_as_zero_windows() {
        // Round 1 at t=0 (w=2, ACKed), then a 2-round silence (ACKs lost,
        // server stalled), then a round at t=3.
        let ev = vec![
            data(0.0, 0, false),
            data(0.0, 1, false),
            ack(1.0, 2),
            data(3.0, 2, false),
            ack(4.0, 3),
        ];
        let flow = flow_of(ev, Some(Endpoint::Client));
        let obs = observe_connection(&flow, &[512]).unwrap();
        assert_eq!(obs.trace.pre, vec![2, 0, 0, 1]);
    }

    #[test]
    fn session_replay_assigns_descending_rungs() {
        // Connection 1 (env A): never exceeds; connection 2 (env A):
        // crosses at the 2-rung; connection 3 (env B): valid pair leg.
        let c1 = {
            let ev = vec![
                data(0.0, 0, false),
                ack(1.0, 1),
                data(1.0, 1, false),
                ack(2.0, 2),
            ];
            observe_connection(&flow_of(ev, Some(Endpoint::Client)), &[4, 2]).unwrap()
        };
        let mk_crossing = |base: f64, env_b: bool| {
            let rtt = if env_b { 0.8 } else { 1.0 };
            let mut ev = vec![data(base, 0, false), data(base, 1, false)];
            ev.push(ack(base + rtt, 2));
            ev.push(ack(base + rtt, 2));
            for i in 0..3 {
                ev.push(data(base + rtt, 2 + i, false));
            }
            // timeout + 18 post rounds of one packet each
            let mut t = base + rtt + 3.0;
            let mut una = 2u64;
            let mut ev2 = Vec::new();
            for _ in 0..18 {
                ev2.push(data(t, una, true));
                una += 1;
                t += rtt;
                ev2.push(ack(t, una));
            }
            ev.extend(ev2);
            let mut f = flow_of(ev, Some(Endpoint::Client));
            f.start = base;
            f
        };
        let c2 = observe_connection(&mk_crossing(100.0, false), &[4, 2]).unwrap();
        let c3 = observe_connection(&mk_crossing(200.0, true), &[4, 2]).unwrap();
        let session = ProbeSession {
            client_ip: [192, 0, 2, 1],
            server_ip: [198, 51, 100, 1],
            connections: vec![c1, c2, c3],
            flows: 3,
        };
        let outcome = session_outcome(&session, &[4, 2]);
        assert_eq!(outcome.failed_attempts.len(), 1);
        assert_eq!(
            outcome.failed_attempts[0].wmax_threshold, 4,
            "first attempt replayed at the top rung"
        );
        let pair = outcome.pair.expect("pair assembled");
        assert_eq!(pair.wmax_threshold(), 2, "crossing w=3 pins the 2-rung");
        assert_eq!(pair.env_b.env, EnvironmentId::B);
    }
}
