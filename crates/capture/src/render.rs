//! Rendering simulated probe sessions into byte-valid captures.
//!
//! [`CaptureRenderer`] drives `Prober::gather_with_tap` and converts the
//! tap's event stream — data arrivals at the prober, ACK departures,
//! connection open/close — into Ethernet/IPv4/TCP frames with proper
//! handshakes, byte-granular sequence numbers (packets × MSS), checksums,
//! and FIN direction encoding who closed. The result round-trips: feeding
//! the rendered capture to [`crate::reconstruct`] reproduces the exact
//! [`GatherOutcome`] the simulation measured, which is the subsystem's
//! end-to-end correctness oracle (and a handy fixture generator — the CI
//! smoke job and the README walkthrough both build captures this way).

use crate::packet::{encode, flags, FrameSpec};
use crate::pcap::PcapWriter;
use caai_core::prober::{CloseInitiator, GatherOutcome, ProbeTap, Prober};
use caai_core::server_under_test::ServerUnderTest;
use caai_netem::{EnvironmentId, PathConfig};
use rand::Rng;
use std::io::{self, Write};

/// Base wall-clock epoch of rendered captures (March 2011, the paper's
/// measurement period). Reconstruction uses only relative times.
pub const CAPTURE_EPOCH: f64 = 1_300_000_000.0;

/// Idle gap inserted between rendered sessions, seconds.
const SESSION_GAP: f64 = 600.0;

/// Renders one or more probe sessions into a single capture.
///
/// Frames stream straight through the underlying [`PcapWriter`] as the
/// simulation emits them (they are produced in chronological order), so
/// rendering is O(connection state) in memory however many sessions the
/// capture holds — pass a file writer via
/// [`with_writer`](CaptureRenderer::with_writer) to render arbitrarily
/// large captures without buffering them.
#[derive(Debug)]
pub struct CaptureRenderer<W: Write = Vec<u8>> {
    writer: PcapWriter<W>,
    frames: usize,
    connections: u32,
    next_session_start: f64,
}

impl CaptureRenderer<Vec<u8>> {
    /// An in-memory capture.
    pub fn new() -> Self {
        CaptureRenderer::with_writer(Vec::new()).expect("Vec writes are infallible")
    }

    /// Finishes the capture and returns its bytes.
    pub fn to_bytes(self) -> Vec<u8> {
        self.finish().expect("Vec writes are infallible")
    }
}

impl Default for CaptureRenderer<Vec<u8>> {
    fn default() -> Self {
        CaptureRenderer::new()
    }
}

impl<W: Write> CaptureRenderer<W> {
    /// Starts a capture on an arbitrary writer (the pcap global header is
    /// written immediately).
    pub fn with_writer(w: W) -> io::Result<Self> {
        Ok(CaptureRenderer {
            writer: PcapWriter::new(w)?,
            frames: 0,
            connections: 0,
            next_session_start: 0.0,
        })
    }

    /// Runs the full CAAI protocol against `server` while rendering every
    /// wire event between `client_ip` and `server_ip` into the capture.
    /// Returns the simulated [`GatherOutcome`] (the round-trip oracle);
    /// an `Err` is the underlying writer failing.
    ///
    /// Sessions are laid out sequentially in capture time, separated by
    /// an idle gap, the way a real prober walks a target list.
    pub fn render_session(
        &mut self,
        client_ip: [u8; 4],
        server_ip: [u8; 4],
        server: &ServerUnderTest,
        prober: &Prober,
        path: &PathConfig,
        rng: &mut impl Rng,
    ) -> io::Result<GatherOutcome> {
        let mut tap = RenderTap {
            writer: &mut self.writer,
            frames: &mut self.frames,
            connections: &mut self.connections,
            offset: self.next_session_start,
            client_ip,
            server_ip,
            conn: None,
            end: 0.0,
            error: None,
        };
        let outcome = prober.gather_with_tap(server, path, rng, &mut tap);
        let (end, error) = (tap.end, tap.error.take());
        self.next_session_start += end + SESSION_GAP;
        match error {
            Some(e) => Err(e),
            None => Ok(outcome),
        }
    }

    /// Number of frames rendered so far.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(self) -> io::Result<W> {
        self.writer.finish()
    }
}

/// Per-connection wire state.
#[derive(Debug, Clone, Copy)]
struct ConnState {
    client_port: u16,
    client_isn: u32,
    server_isn: u32,
    mss: u32,
    /// One past the highest data packet rendered (for the server's FIN).
    high_end: u64,
    /// Highest cumulative ACK rendered (for FIN acknowledgment numbers).
    last_ack: u64,
}

struct RenderTap<'a, W: Write> {
    writer: &'a mut PcapWriter<W>,
    frames: &'a mut usize,
    connections: &'a mut u32,
    offset: f64,
    client_ip: [u8; 4],
    server_ip: [u8; 4],
    conn: Option<ConnState>,
    end: f64,
    /// First writer failure; once set, further frames are dropped and
    /// the error surfaces from `render_session` ([`ProbeTap`] callbacks
    /// cannot themselves fail).
    error: Option<io::Error>,
}

impl<W: Write> RenderTap<'_, W> {
    fn ts(&mut self, now: f64) -> f64 {
        self.end = self.end.max(now);
        CAPTURE_EPOCH + self.offset + now
    }

    fn push(&mut self, ts: f64, spec: FrameSpec<'_>) {
        if self.error.is_some() {
            return;
        }
        match self.writer.write_frame(ts, &encode(&spec)) {
            Ok(()) => *self.frames += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn client_spec<'p>(&self, c: &ConnState, payload: &'p [u8]) -> FrameSpec<'p> {
        FrameSpec {
            src_ip: self.client_ip,
            dst_ip: self.server_ip,
            src_port: c.client_port,
            dst_port: 80,
            seq: c.client_isn.wrapping_add(1),
            ack: 0,
            flags: flags::ACK,
            window: 65535,
            mss_option: None,
            payload,
        }
    }

    fn server_spec<'p>(&self, c: &ConnState, payload: &'p [u8]) -> FrameSpec<'p> {
        FrameSpec {
            src_ip: self.server_ip,
            dst_ip: self.client_ip,
            src_port: 80,
            dst_port: c.client_port,
            seq: c.server_isn.wrapping_add(1),
            ack: c.client_isn.wrapping_add(1),
            flags: flags::ACK,
            window: 65535,
            mss_option: None,
            payload,
        }
    }

    /// Byte sequence of packet-unit offset `pkts` in the server's stream.
    fn data_seq(c: &ConnState, pkts: u64) -> u32 {
        c.server_isn
            .wrapping_add(1)
            .wrapping_add((pkts.wrapping_mul(u64::from(c.mss))) as u32)
    }
}

/// Deterministic payload for one data packet.
fn payload_bytes(seq: u64, mss: u32) -> Vec<u8> {
    (0..mss as usize)
        .map(|i| {
            ((seq as usize)
                .wrapping_mul(131)
                .wrapping_add(i.wrapping_mul(7))
                & 0xFF) as u8
        })
        .collect()
}

impl<W: Write> ProbeTap for RenderTap<'_, W> {
    fn connection_opened(
        &mut self,
        now: f64,
        _env: EnvironmentId,
        _wmax: u32,
        proposed_mss: u32,
        granted_mss: u32,
    ) {
        let index = *self.connections;
        *self.connections += 1;
        let conn = ConnState {
            client_port: 40000u16.wrapping_add((index % 20000) as u16),
            client_isn: 0x1357_9BDFu32.wrapping_mul(index.wrapping_add(1)),
            server_isn: 0x2468_ACE0u32.wrapping_mul(index.wrapping_add(3)),
            mss: granted_mss.max(1),
            high_end: 0,
            last_ack: 0,
        };
        let ts = self.ts(now);
        // SYN with the prober's proposed MSS, SYN/ACK granting the MSS
        // the server will actually segment at, final ACK.
        self.push(
            ts,
            FrameSpec {
                seq: conn.client_isn,
                flags: flags::SYN,
                mss_option: Some(proposed_mss.min(u32::from(u16::MAX)) as u16),
                ack: 0,
                ..self.client_spec(&conn, b"")
            },
        );
        self.push(
            ts,
            FrameSpec {
                seq: conn.server_isn,
                ack: conn.client_isn.wrapping_add(1),
                flags: flags::SYN | flags::ACK,
                mss_option: Some(granted_mss.min(u32::from(u16::MAX)) as u16),
                ..self.server_spec(&conn, b"")
            },
        );
        self.push(
            ts,
            FrameSpec {
                ack: conn.server_isn.wrapping_add(1),
                ..self.client_spec(&conn, b"")
            },
        );
        self.conn = Some(conn);
    }

    fn data_received(&mut self, now: f64, seq: u64, _duplicate: bool) {
        let Some(mut conn) = self.conn else { return };
        let ts = self.ts(now);
        let payload = payload_bytes(seq, conn.mss);
        self.push(
            ts,
            FrameSpec {
                seq: Self::data_seq(&conn, seq),
                flags: flags::ACK | flags::PSH,
                ..self.server_spec(&conn, &payload)
            },
        );
        conn.high_end = conn.high_end.max(seq + 1);
        self.conn = Some(conn);
    }

    fn ack_sent(&mut self, now: f64, cum_ack: u64, _duplicate: bool) {
        let Some(mut conn) = self.conn else { return };
        let ts = self.ts(now);
        self.push(
            ts,
            FrameSpec {
                ack: Self::data_seq(&conn, cum_ack),
                ..self.client_spec(&conn, b"")
            },
        );
        conn.last_ack = conn.last_ack.max(cum_ack);
        self.conn = Some(conn);
    }

    fn connection_closed(&mut self, now: f64, initiator: CloseInitiator) {
        let Some(conn) = self.conn.take() else { return };
        let ts = self.ts(now);
        let client_fin = FrameSpec {
            ack: Self::data_seq(&conn, conn.last_ack),
            flags: flags::FIN | flags::ACK,
            ..self.client_spec(&conn, b"")
        };
        let server_fin = FrameSpec {
            seq: Self::data_seq(&conn, conn.high_end),
            flags: flags::FIN | flags::ACK,
            ..self.server_spec(&conn, b"")
        };
        match initiator {
            CloseInitiator::Prober => {
                self.push(ts, client_fin);
                self.push(ts, server_fin);
                self.push(
                    ts,
                    FrameSpec {
                        ack: Self::data_seq(&conn, conn.high_end).wrapping_add(1),
                        ..self.client_spec(&conn, b"")
                    },
                );
            }
            CloseInitiator::Server => {
                self.push(ts, server_fin);
                self.push(ts, client_fin);
                self.push(
                    ts,
                    FrameSpec {
                        seq: Self::data_seq(&conn, conn.high_end).wrapping_add(1),
                        ..self.server_spec(&conn, b"")
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{reassemble, Endpoint};
    use crate::packet::verify_checksums;
    use caai_congestion::AlgorithmId;
    use caai_core::prober::ProberConfig;
    use caai_netem::rng::seeded;

    fn render_one(algo: AlgorithmId) -> (Vec<u8>, GatherOutcome) {
        let mut renderer = CaptureRenderer::new();
        let server = ServerUnderTest::ideal(algo);
        let prober = Prober::new(ProberConfig::default());
        let mut rng = seeded(5);
        let outcome = renderer
            .render_session(
                [192, 0, 2, 1],
                [198, 51, 100, 1],
                &server,
                &prober,
                &PathConfig::clean(),
                &mut rng,
            )
            .expect("in-memory render cannot fail");
        (renderer.to_bytes(), outcome)
    }

    #[test]
    fn rendered_capture_is_byte_valid() {
        let (bytes, outcome) = render_one(AlgorithmId::Reno);
        assert!(outcome.pair.is_some());
        let mut reader = crate::pcap::PcapReader::new(&bytes).unwrap();
        let mut n = 0;
        while let Some(rec) = reader.next() {
            let rec = rec.expect("clean framing");
            verify_checksums(rec.data).expect("valid checksums");
            n += 1;
        }
        assert!(n > 100, "a full probe session renders many frames: {n}");
    }

    #[test]
    fn rendered_capture_reassembles_into_prober_flows() {
        let (bytes, _) = render_one(AlgorithmId::CubicV2);
        let r = reassemble(&bytes).unwrap();
        assert!(r.truncated.is_none());
        assert!(r.skipped.is_empty(), "{:?}", r.skipped);
        assert_eq!(r.flows.len(), 2, "environment A and B connections");
        for f in &r.flows {
            assert_eq!(f.client.0, [192, 0, 2, 1]);
            assert_eq!(f.server.0, [198, 51, 100, 1]);
            assert_eq!(f.effective_mss(), Some(100));
            assert_eq!(f.closed_by, Some(Endpoint::Client));
        }
    }

    #[test]
    fn sessions_are_time_separated() {
        let mut renderer = CaptureRenderer::new();
        let prober = Prober::new(ProberConfig::default());
        let mut rng = seeded(9);
        for (i, algo) in [AlgorithmId::Reno, AlgorithmId::Bic].iter().enumerate() {
            let server = ServerUnderTest::ideal(*algo);
            renderer
                .render_session(
                    [192, 0, 2, 1],
                    [198, 51, 100, 1 + i as u8],
                    &server,
                    &prober,
                    &PathConfig::clean(),
                    &mut rng,
                )
                .expect("in-memory render cannot fail");
        }
        let bytes = renderer.to_bytes();
        let mut reader = crate::pcap::PcapReader::new(&bytes).unwrap();
        let mut last = f64::NEG_INFINITY;
        while let Some(rec) = reader.next() {
            let ts = rec.unwrap().ts;
            assert!(ts > last, "chronological capture");
            last = ts;
        }
    }
}
