//! Robustness properties of the capture-ingestion path: whatever the
//! bytes, the parser **skips and reports** — it never panics, and it
//! never gives up on packets that are still well-framed. This mirrors
//! the census JSONL reader's torn-line policy at the pcap layer.

use caai_capture::pcap::byteswap_capture;
use caai_capture::{reassemble, CaptureRenderer, PcapReader};
use caai_congestion::AlgorithmId;
use caai_core::prober::{Prober, ProberConfig};
use caai_core::server_under_test::ServerUnderTest;
use caai_netem::rng::seeded;
use caai_netem::PathConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One real rendered capture, built once (rendering is ~30 ms).
fn fixture() -> &'static [u8] {
    static CAPTURE: OnceLock<Vec<u8>> = OnceLock::new();
    CAPTURE.get_or_init(|| {
        let mut renderer = CaptureRenderer::new();
        let prober = Prober::new(ProberConfig::fixed_wmax(128));
        let server = ServerUnderTest::ideal(AlgorithmId::Reno);
        let mut rng = seeded(77);
        renderer
            .render_session(
                [192, 0, 2, 1],
                [198, 51, 100, 1],
                &server,
                &prober,
                &PathConfig::clean(),
                &mut rng,
            )
            .expect("in-memory render cannot fail");
        renderer.to_bytes()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncating a capture anywhere must not panic, every record fully
    /// before the cut must still parse, a mid-record cut must be
    /// reported as `truncated`, and a cut exactly on a record boundary
    /// must read as a clean (if short) capture.
    #[test]
    fn truncation_preserves_the_well_framed_prefix(cut_permille in 0usize..1000) {
        let full = fixture();
        let cut = full.len() * cut_permille / 1000;
        let bytes = &full[..cut];
        if bytes.len() < 24 {
            prop_assert!(reassemble(bytes).is_err(), "short header must error");
            return Ok(());
        }
        // Count the records fully contained before the cut by walking
        // the (trusted) fixture framing.
        let mut complete = 0usize;
        let mut at = 24;
        while at + 16 <= full.len() {
            let incl = u32::from_le_bytes(full[at + 8..at + 12].try_into().unwrap()) as usize;
            if at + 16 + incl > cut {
                break;
            }
            at += 16 + incl;
            complete += 1;
        }
        let boundary_cut = at == cut;
        let r = reassemble(bytes).unwrap();
        prop_assert!(
            r.packets + r.skipped.len() == complete,
            "prefix records must survive: {} + {} vs {complete}",
            r.packets,
            r.skipped.len()
        );
        prop_assert!(
            r.truncated.is_some() != boundary_cut,
            "cut at {cut} (boundary: {boundary_cut}) reported as {:?}",
            r.truncated
        );
    }

    /// Flipping any single byte must not panic: either the record skips
    /// (decode error), framing stops with a diagnostic, or the flip is
    /// benign (payload/checksum bytes).
    #[test]
    fn single_byte_corruption_never_panics(pos_permille in 0usize..1000, flip in 1u8..255) {
        let full = fixture();
        let mut bytes = full.to_vec();
        let pos = (full.len() - 1) * pos_permille / 999;
        bytes[pos] ^= flip;
        // An Err is fine too: header corruption is a clean error.
        if let Ok(r) = reassemble(&bytes) {
            // Still parsed: at most a handful of packets may have been
            // skipped or the file truncated at the flip.
            prop_assert!(r.flows.len() <= 4, "flows {}", r.flows.len());
        }
    }

    /// Random garbage is never a panic: any byte soup either fails the
    /// header check or yields skip-and-report results.
    #[test]
    fn arbitrary_bytes_never_panic(len in 0usize..4096, seed in 0u64..u64::MAX) {
        let mut state = seed | 1;
        let bytes: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let _ = reassemble(&bytes); // must simply not panic
        if let Ok(mut reader) = PcapReader::new(&bytes) {
            while let Some(item) = reader.next() {
                if item.is_err() {
                    break;
                }
            }
        }
    }

    /// Injecting a garbage record mid-stream: the packets around it must
    /// still parse, with the garbage skipped and reported.
    #[test]
    fn midstream_garbage_is_skipped_and_reported(junk_len in 1usize..200, junk_byte in 0u8..255) {
        let full = fixture();
        // Find the end of the 10th record and splice a junk record in.
        let mut at = 24;
        for _ in 0..10 {
            let incl = u32::from_le_bytes(full[at + 8..at + 12].try_into().unwrap()) as usize;
            at += 16 + incl;
        }
        let mut bytes = full[..at].to_vec();
        let ts = &full[at..at + 8];
        bytes.extend_from_slice(ts); // reuse a plausible timestamp
        bytes.extend_from_slice(&(junk_len as u32).to_le_bytes());
        bytes.extend_from_slice(&(junk_len as u32).to_le_bytes());
        bytes.extend(std::iter::repeat_n(junk_byte, junk_len));
        bytes.extend_from_slice(&full[at..]);

        let clean = reassemble(full).unwrap();
        let dirty = reassemble(&bytes).unwrap();
        prop_assert!(dirty.truncated.is_none());
        prop_assert!(dirty.skipped.len() == 1, "exactly the junk record skips");
        prop_assert!(dirty.skipped[0].0 == 10, "skip reported at the splice index");
        prop_assert!(dirty.packets == clean.packets, "all real packets survive");
        prop_assert!(dirty.flows.len() == clean.flows.len());
    }

    /// A byte-swapped (big-endian) capture reassembles into the same
    /// flows as the little-endian original.
    #[test]
    fn endianness_is_transparent(_case in 0u32..1) {
        let le = fixture();
        let be = byteswap_capture(le);
        let a = reassemble(le).unwrap();
        let b = reassemble(&be).unwrap();
        prop_assert!(a.flows == b.flows);
        prop_assert!(a.skipped.len() == b.skipped.len());
    }
}
