//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], `sample_size` / `throughput`,
//! `bench_function` / `bench_with_input`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurements are
//! real (median of timed batches, reported in ns/iter plus derived
//! throughput) but there is no statistical analysis, plotting, or
//! HTML report — just one line per benchmark on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Input-size metadata for a measurement: what one iteration consumes.
/// Real criterion encodes only [`Throughput`]; harnesses that write
/// machine-readable results (`BENCH_*.json`) want the full input shape
/// so a number is comparable across revisions of the generator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InputMeta {
    /// Input bytes per iteration.
    pub bytes: Option<u64>,
    /// Packets (capture frames) per iteration.
    pub packets: Option<u64>,
    /// Distinct flows per iteration.
    pub flows: Option<u64>,
}

impl InputMeta {
    /// Whether no dimension is set (the default for untagged groups).
    pub fn is_empty(&self) -> bool {
        *self == InputMeta::default()
    }
}

/// One finished measurement, for harnesses that post-process results
/// (e.g. writing a machine-readable `BENCH_*.json`). Real criterion
/// exposes this through its output directory; the offline stand-in keeps
/// it in memory instead.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: u128,
    /// Declared per-iteration throughput, if any.
    pub throughput: Option<Throughput>,
    /// Declared input metadata (empty when the group never set one).
    pub input: InputMeta,
}

impl BenchResult {
    /// Derived rate in units/second (elements or bytes, per the declared
    /// throughput), when one was declared and the median is non-zero.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let n = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        (self.median_ns > 0).then(|| n as f64 * 1e9 / self.median_ns as f64)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
            input: InputMeta::default(),
        }
    }

    /// Every measurement taken so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    input: InputMeta,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for derived rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Declares the input shape consumed per iteration; applies to the
    /// benchmarks registered after the call (like [`throughput`]).
    ///
    /// [`throughput`]: BenchmarkGroup::throughput
    pub fn input_meta(&mut self, input: InputMeta) -> &mut Self {
        self.input = input;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Benchmarks a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("  {}/{}: no samples", self.name, id.0);
            return;
        }
        let mut ns: Vec<u128> = samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0 => {
                format!("  ({:.1} elem/s)", n as f64 * 1e9 / median as f64)
            }
            Some(Throughput::Bytes(n)) if median > 0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 * 1e9 / median as f64 / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!("  {}/{}: {} ns/iter{}", self.name, id.0, median, rate);
        self.criterion.results.push(BenchResult {
            group: self.name.clone(),
            id: id.0.clone(),
            median_ns: median,
            throughput: self.throughput,
            input: self.input,
        });
    }
}

/// Times the benchmarked closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: one warmup call, then `sample_size` timed
    /// samples (each the mean over an adaptive batch for fast closures).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        // Pick a batch size so one sample takes roughly >= 1ms.
        let probe = Instant::now();
        std::hint::black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        for _ in 0..self.budget {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("compat_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.input_meta(InputMeta {
            bytes: Some(512),
            packets: Some(8),
            flows: None,
        });
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..64).sum::<u64>());
        });
        group.input_meta(InputMeta::default());
        for n in [4u64, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>());
            });
        }
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn input_meta_rides_along_per_benchmark() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
        let results = criterion.results();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].input.bytes, Some(512));
        assert_eq!(results[0].input.packets, Some(8));
        assert!(!results[0].input.is_empty());
        assert!(results[1].input.is_empty(), "meta resets for later benches");
    }
}
