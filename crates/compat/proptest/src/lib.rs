//! Offline stand-in for `proptest`.
//!
//! Provides the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), range and `prop::option::of` strategies, [`prop_assert!`],
//! and [`ProptestConfig::with_cases`]. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name and case
//! index), so failures are reproducible; shrinking is not implemented —
//! the failing inputs are printed instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{prop, prop_assert, proptest, ProptestConfig, Strategy, TestCaseError};
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (raised by [`prop_assert!`]).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from the property name and case index.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Combinator strategies, mirroring proptest's `prop::` module tree.
pub mod prop {
    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy for `Option<S::Value>`: `None` in 1 of 4 cases.
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        /// Wraps a strategy to generate `Option`s of its values.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with the generated inputs printed) instead of panicking inline.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); ) => {};
    ( ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    let __inputs: ::std::vec::Vec<::std::string::String> = vec![
                        $(format!("{} = {:?}", stringify!($arg), &$arg)),+
                    ];
                    panic!(
                        "proptest property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e,
                        __inputs.join(", "),
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5, z in -2i64..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-2..9).contains(&z), "z = {z}");
        }

        /// Option strategies produce both variants across cases.
        #[test]
        fn option_of_generates(v in prop::option::of(1u32..4)) {
            if let Some(x) = v {
                prop_assert!((1..4).contains(&x));
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = super::TestRng::for_case("t", 3);
        let mut b = super::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}
