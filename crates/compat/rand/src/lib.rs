//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64), uniform `random` /
//! `random_range` sampling, slice shuffling and partial index sampling.
//!
//! Determinism is the only contract the workspace relies on: two RNGs
//! built from the same seed produce identical streams on every platform.
//! The streams do **not** match upstream `rand`'s `StdRng` (which is
//! ChaCha-based); they only need to agree with themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`FromRandom`] type uniformly at random.
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from an RNG's raw bit stream.
pub trait FromRandom {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = FromRandom::from_rng(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a `u64` through SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers (`shuffle`, partial index sampling).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Sampling distinct indices without replacement.
    pub mod index {
        use super::RngCore;

        /// The result of [`sample`]: distinct indices in `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Converts into a plain vector of indices.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        /// Samples `amount` distinct indices uniformly from `0..length`
        /// with a partial Fisher–Yates walk.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            let amount = amount.min(length);
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn index_sample_is_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        let idx = index::sample(&mut rng, 50, 7).into_vec();
        assert_eq!(idx.len(), 7);
        let mut uniq = idx.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 7);
        assert!(idx.iter().all(|&i| i < 50));
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(dyn_rng);
        let _ = index::sample(dyn_rng, 10, 3);
    }
}
