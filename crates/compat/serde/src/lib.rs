//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a miniature serde: a JSON-shaped [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits that convert through it, and derive macros
//! (re-exported from `serde_derive`) that generate the field/variant
//! plumbing for plain structs and enums. The encoding matches serde's
//! defaults for the shapes this workspace uses:
//!
//! * structs → JSON objects keyed by field name;
//! * unit enum variants → strings (`"PageTooShort"`);
//! * newtype/tuple/struct variants → externally tagged single-key objects
//!   (`{"Identified": {...}}`, `{"Special": [case, 512]}`);
//! * maps → objects (integer keys encoded as decimal strings);
//! * `Option` → the value or `null`, and a missing struct field
//!   deserializes as `None`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing intermediate data model (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Looks up a field of an object by name. Used by the derive macros.
pub fn get_field<'v>(map: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is missing entirely.
    /// Defaults to an error; `Option` overrides it to `None`, matching
    /// serde's treatment of optional fields this workspace relies on.
    fn missing_field(strukt: &str, field: &str) -> Result<Self, Error> {
        Err(Error::msg(format!("missing field `{field}` of `{strukt}`")))
    }
}

// ---- primitives ------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(type_error(stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of i64 range")))?,
                    other => return Err(type_error(stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(type_error("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---- references & containers ----------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_strukt: &str, _field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| type_error("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| type_error("tuple array", v))?;
                let expected = [$($n),+].len();
                if seq.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected} elements, got {}",
                        seq.len()
                    )));
                }
                Ok(($($t::from_value(&seq[$n])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys encodable as JSON object keys (strings).
pub trait MapKey: Ord + Sized {
    /// Encodes the key as a string.
    fn to_key(&self) -> String;
    /// Decodes the key from a string.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|e| Error::msg(format!("bad map key {s:?}: {e}")))
            }
        }
    )*};
}
impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| type_error("object", v))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

fn type_error(expected: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::U64(_) | Value::I64(_) => "integer",
        Value::F64(_) => "float",
        Value::Str(_) => "string",
        Value::Seq(_) => "array",
        Value::Map(_) => "object",
    };
    Error::msg(format!("expected {expected}, got {kind}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_and_defaults() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)).unwrap(), Some(3));
        assert_eq!(Option::<u32>::missing_field("S", "f").unwrap(), None);
        assert!(u32::missing_field("S", "f").is_err());
    }

    #[test]
    fn numeric_cross_acceptance() {
        // f64 values that serialize without a fraction must deserialize.
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert_eq!(f64::from_value(&Value::I64(-4)).unwrap(), -4.0);
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert!(u32::from_value(&Value::I64(-7)).is_err());
    }

    #[test]
    fn arrays_and_tuples() {
        let a = [1.5f64, 2.5, 3.5];
        let back = <[f64; 3]>::from_value(&a.to_value()).unwrap();
        assert_eq!(a, back);
        let t = (3u32, 0.25f64);
        let back = <(u32, f64)>::from_value(&t.to_value()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn maps_with_integer_keys() {
        let mut m = BTreeMap::new();
        m.insert(512u32, "a".to_string());
        m.insert(64u32, "b".to_string());
        let v = m.to_value();
        let back = BTreeMap::<u32, String>::from_value(&v).unwrap();
        assert_eq!(m, back);
    }
}
