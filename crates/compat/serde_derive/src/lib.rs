//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls (the
//! workspace's value-based miniature serde, not upstream serde) for the
//! shapes this codebase uses: structs with named fields, and enums with
//! unit, tuple, and struct variants. Generics, lifetimes, and `#[serde]`
//! attributes are not supported — the workspace does not use them.
//!
//! Parsing is hand-rolled over `proc_macro::TokenStream` because `syn`
//! is unavailable offline; only item shape (names and arities) is needed,
//! never field types, which keeps the parser small.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives the workspace `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => serialize_struct(&name, fields),
        Shape::Enum(variants) => serialize_enum(&name, variants),
    };
    body.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the workspace `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::Struct(fields) => deserialize_struct(&name, fields),
        Shape::Enum(variants) => deserialize_enum(&name, variants),
    };
    body.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---- parsing ---------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline stub");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected braced body for `{name}`, got {other:?}"),
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    (name, shape)
}

/// Parses `field: Type, ...` (attributes and visibility allowed).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!("serde_derive: expected `:` after field, got {other:?}"),
                }
                i = skip_type(&tokens, i);
                // Skip the separating comma, if any.
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
            }
            other => panic!("serde_derive: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Advances past a type, stopping at a comma outside angle brackets.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let kind = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantKind::Tuple(count_tuple_arity(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Struct(parse_named_fields(g.stream()))
                    }
                    _ => VariantKind::Unit,
                };
                // Skip an explicit discriminant (`= expr`) and the comma.
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == '=' {
                        i += 1;
                        i = skip_type(&tokens, i);
                    }
                }
                if let Some(TokenTree::Punct(p)) = tokens.get(i) {
                    if p.as_char() == ',' {
                        i += 1;
                    }
                }
                variants.push(Variant { name, kind });
            }
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

/// Counts the comma-separated types in a tuple variant's parentheses.
fn count_tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        let next = skip_type(&tokens, i);
        if next > i {
            arity += 1;
        }
        i = next + 1; // step over the comma
    }
    arity
}

// ---- code generation -------------------------------------------------

fn serialize_struct(name: &str, fields: &[String]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!("__m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n")
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n\
         {pushes}\
         ::serde::Value::Map(__m)\n\
         }}\n}}\n"
    )
}

fn deserialize_struct(name: &str, fields: &[String]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match ::serde::get_field(__m, {f:?}) {{\n\
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                 ::std::option::Option::None => \
                 ::serde::Deserialize::missing_field({name:?}, {f:?})?,\n\
                 }},\n"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         let __m = __v.as_map().ok_or_else(|| \
         ::serde::Error::msg(\"expected object for struct {name}\"))?;\n\
         let _ = &__m;\n\
         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
         }}\n}}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => {
                    format!("{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n")
                }
                VariantKind::Tuple(1) => format!(
                    "{name}::{vn}(__a0) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                     ::serde::Serialize::to_value(__a0))]),\n"
                ),
                VariantKind::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                         ::serde::Value::Seq(vec![{}]))]),\n",
                        binds.join(", "),
                        elems.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let binds = fields.join(", ");
                    let pushes: Vec<String> = fields
                        .iter()
                        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![\
                         ({vn:?}.to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                        pushes.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n\
         }}\n}}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n")
        })
        .collect();

    let tagged_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => unreachable!(),
                VariantKind::Tuple(1) => format!(
                    "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(__inner)?)),\n"
                ),
                VariantKind::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                        .collect();
                    format!(
                        "{vn:?} => {{\n\
                         let __seq = __inner.as_seq().ok_or_else(|| \
                         ::serde::Error::msg(\"expected array for variant {name}::{vn}\"))?;\n\
                         if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::msg(\"wrong arity for variant {name}::{vn}\")); }}\n\
                         ::std::result::Result::Ok({name}::{vn}({}))\n\
                         }}\n",
                        elems.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: match ::serde::get_field(__fm, {f:?}) {{\n\
                                 ::std::option::Option::Some(__fv) => \
                                 ::serde::Deserialize::from_value(__fv)?,\n\
                                 ::std::option::Option::None => \
                                 ::serde::Deserialize::missing_field({name:?}, {f:?})?,\n\
                                 }},\n"
                            )
                        })
                        .collect();
                    format!(
                        "{vn:?} => {{\n\
                         let __fm = __inner.as_map().ok_or_else(|| \
                         ::serde::Error::msg(\"expected object for variant {name}::{vn}\"))?;\n\
                         ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                         }}\n",
                    )
                }
            }
        })
        .collect();

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n\
         match __v {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => ::std::result::Result::Err(::serde::Error::msg(\
         format!(\"unknown variant `{{__other}}` of enum {name}\"))),\n\
         }},\n\
         ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
         let (__tag, __inner) = (&__m[0].0, &__m[0].1);\n\
         let _ = __inner;\n\
         match __tag.as_str() {{\n\
         {tagged_arms}\
         __other => ::std::result::Result::Err(::serde::Error::msg(\
         format!(\"unknown variant `{{__other}}` of enum {name}\"))),\n\
         }}\n\
         }},\n\
         _ => ::std::result::Result::Err(::serde::Error::msg(\
         \"expected string or single-key object for enum {name}\")),\n\
         }}\n\
         }}\n}}\n"
    )
}
