//! Offline stand-in for `serde_json`, built on the workspace's miniature
//! `serde` value model: [`to_string`], [`to_string_pretty`], and
//! [`from_str`] with a full JSON parser (escapes, exponents, surrogate
//! pairs). Floats print through Rust's shortest round-trip formatting, so
//! `f64` values survive a serialize → parse cycle bit-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("bad literal at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected `{}` at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::msg(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::msg("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::msg("bad \\u escape"))?
                            };
                            s.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>(" 42 ").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [
            0.1,
            1.0,
            -3.25e-9,
            1e300,
            0.6999999999999,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{json}");
        }
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let s = "a \"quoted\" line\nwith \\ tabs\t and unicode: ✓ \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
        // And explicit \u escapes parse, including surrogate pairs.
        let parsed: String = from_str(r#""✓ 😀""#).unwrap();
        assert_eq!(parsed, "✓ 😀");
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<(u32, Vec<f64>)> = vec![(1, vec![0.5, 1.5]), (2, vec![])];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(from_str::<u32>("42 x").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2,]").is_err());
    }
}
