//! BIC: Binary Increase Congestion control (Xu, Harfoush, Rhee, INFOCOM'04),
//! the Linux default from kernel 2.6.8 to 2.6.18.
//!
//! Port of `net/ipv4/tcp_bic.c` with the kernel's default module parameters.
//! Growth is a binary search between the current window and the window at
//! the last loss (`last_max_cwnd`), switching to linear "max probing" above
//! it. The multiplicative decrease parameter is `β = 819/1024 ≈ 0.8` for
//! windows of at least `low_window = 14` packets and RENO's 0.5 below —
//! exactly the behaviour the paper cites in §III-B.

use crate::transport::{Ack, CongestionControl, LossKind, Transport};

/// Kernel fixed-point scale for β (`BICTCP_BETA_SCALE`).
const BETA_SCALE: u64 = 1024;
/// `beta` module parameter: β = 819/1024 ≈ 0.8.
const BETA: u64 = 819;
/// `max_increment`: cap on the additive increase, packets per RTT.
const MAX_INCREMENT: u32 = 16;
/// `low_window`: below this window BIC behaves like RENO.
const LOW_WINDOW: u32 = 14;
/// `smooth_part`: RTTs spent in the "plateau" just below `last_max_cwnd`.
const SMOOTH_PART: u32 = 20;
/// `BICTCP_B`: the binary search changes the window by `dist/B` per step.
const BICTCP_B: u32 = 4;
/// `fast_convergence` module parameter (enabled by default).
const FAST_CONVERGENCE: bool = true;

/// Binary Increase Congestion control.
#[derive(Debug, Clone)]
pub struct Bic {
    cnt: u32,
    last_max_cwnd: u32,
    last_cwnd: u32,
    last_time: f64,
    epoch_start: Option<f64>,
}

impl Default for Bic {
    fn default() -> Self {
        Self::new()
    }
}

impl Bic {
    /// Creates a BIC controller with the kernel's default parameters.
    pub fn new() -> Self {
        Bic {
            cnt: 0,
            last_max_cwnd: 0,
            last_cwnd: 0,
            last_time: 0.0,
            epoch_start: None,
        }
    }

    /// Compute `cnt` (ACKs per one-packet window increment), mirroring
    /// `bictcp_update`.
    fn update(&mut self, cwnd: u32, now: f64) {
        // Rate-limit recomputation as the kernel does (HZ/32 ≈ 31 ms),
        // except when the window moved.
        if self.last_cwnd == cwnd && (now - self.last_time) <= 1.0 / 32.0 {
            return;
        }
        self.last_cwnd = cwnd;
        self.last_time = now;
        if self.epoch_start.is_none() {
            self.epoch_start = Some(now);
        }

        if cwnd <= LOW_WINDOW {
            self.cnt = cwnd; // RENO-equivalent growth
            return;
        }

        if cwnd < self.last_max_cwnd {
            // Binary search increase toward the last maximum.
            let dist = (self.last_max_cwnd - cwnd) / BICTCP_B;
            if dist > MAX_INCREMENT {
                self.cnt = cwnd / MAX_INCREMENT; // additive increase
            } else if dist <= 1 {
                self.cnt = (cwnd * SMOOTH_PART) / BICTCP_B; // binary search plateau
            } else {
                self.cnt = cwnd / dist; // binary search
            }
        } else {
            // Max probing above the last maximum: slow start (smoothed),
            // then linear.
            if cwnd < self.last_max_cwnd + BICTCP_B {
                self.cnt = (cwnd * SMOOTH_PART) / BICTCP_B;
            } else if cwnd < self.last_max_cwnd + MAX_INCREMENT * (BICTCP_B - 1) {
                self.cnt = (cwnd * (BICTCP_B - 1)) / (cwnd - self.last_max_cwnd);
            } else {
                self.cnt = cwnd / MAX_INCREMENT;
            }
        }

        // Initial epoch (no loss yet): keep growth at slow-start-ish rate.
        if self.last_max_cwnd == 0 && self.cnt > 20 {
            self.cnt = 20;
        }
        self.cnt = self.cnt.max(2);
    }
}

impl CongestionControl for Bic {
    fn name(&self) -> &'static str {
        "BIC"
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        self.update(tp.cwnd, ack.now);
        tp.cong_avoid_ai(self.cnt, acked);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        // `bictcp_recalc_ssthresh`.
        self.epoch_start = None;
        let cwnd = tp.cwnd;
        if cwnd < self.last_max_cwnd && FAST_CONVERGENCE {
            self.last_max_cwnd = ((cwnd as u64 * (BETA_SCALE + BETA)) / (2 * BETA_SCALE)) as u32;
        } else {
            self.last_max_cwnd = cwnd;
        }
        if cwnd <= LOW_WINDOW {
            (cwnd / 2).max(2)
        } else {
            (((cwnd as u64 * BETA) / BETA_SCALE) as u32).max(2)
        }
    }

    fn on_loss(&mut self, _tp: &mut Transport, kind: LossKind, _now: f64) {
        if kind == LossKind::Timeout {
            // Reset the epoch but keep the W_max anchor (`last_max_cwnd`,
            // already updated by `ssthresh`). The paper's measured traces
            // (Fig. 3(b)) show BIC's post-timeout growth binary-searching
            // toward the pre-timeout maximum, and Table III's ≥97% BIC vs
            // CUBIC separation requires it: with the anchor wiped, BIC and
            // CUBIC both fall into the identical 5%-per-RTT fresh-epoch
            // ramp and become indistinguishable. See DESIGN.md
            // (substitution: timeout keeps `last_max_cwnd`).
            let keep = self.last_max_cwnd;
            *self = Bic::new();
            self.last_max_cwnd = keep;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Bic, tp: &mut Transport, now: f64) {
        let w = tp.cwnd;
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack {
                now,
                acked: 1,
                rtt: 1.0,
            };
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn beta_is_point_eight_above_low_window() {
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let ss = cc.ssthresh(&tp);
        let beta = ss as f64 / 512.0;
        assert!((beta - 0.7998).abs() < 0.002, "beta was {beta}");
    }

    #[test]
    fn beta_is_half_below_low_window() {
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 10;
        assert_eq!(cc.ssthresh(&tp), 5);
    }

    #[test]
    fn binary_search_converges_to_last_max() {
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        // Simulate a loss at 512 to set history, then recover into CA.
        tp.cwnd = 512;
        tp.ssthresh = cc.ssthresh(&tp);
        tp.cwnd = tp.ssthresh;
        let mut now = 0.0;
        let mut prev = tp.cwnd;
        for _ in 0..40 {
            one_round(&mut cc, &mut tp, now);
            now += 1.0;
            assert!(tp.cwnd >= prev, "BIC growth is monotone between losses");
            prev = tp.cwnd;
        }
        // The binary search approaches — and max probing may slightly
        // exceed — the previous maximum within a few tens of RTTs.
        assert!(
            tp.cwnd >= 500,
            "cwnd {} should approach last max 512",
            tp.cwnd
        );
    }

    #[test]
    fn growth_is_capped_at_max_increment_per_rtt() {
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let _ = cc.ssthresh(&tp); // last_max = 512
        tp.cwnd = 100; // far below last max -> additive increase phase
        tp.ssthresh = 50;
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp, 0.0);
        let delta = tp.cwnd - before;
        assert!(
            delta <= MAX_INCREMENT,
            "per-RTT growth {delta} exceeds Smax"
        );
        assert!(
            delta >= MAX_INCREMENT / 2,
            "far from wmax BIC grows near Smax, got {delta}"
        );
    }

    #[test]
    fn fast_convergence_shrinks_history_on_consecutive_losses() {
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let _ = cc.ssthresh(&tp);
        assert_eq!(cc.last_max_cwnd, 512);
        tp.cwnd = 400; // second loss below previous max
        let _ = cc.ssthresh(&tp);
        // last_max = 400 * (1024+819)/2048 = 400 * 0.8999
        assert!(cc.last_max_cwnd < 400 && cc.last_max_cwnd > 350);
    }

    #[test]
    fn reno_equivalent_at_small_windows() {
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 10;
        tp.ssthresh = 5;
        one_round(&mut cc, &mut tp, 0.0);
        assert_eq!(tp.cwnd, 11, "below low_window BIC grows like RENO");
    }

    #[test]
    fn timeout_resets_epoch_but_keeps_the_anchor() {
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let ss = cc.ssthresh(&tp);
        assert!(ss > 400, "beta=0.8 decrease computed before the reset");
        cc.on_loss(&mut tp, LossKind::Timeout, 5.0);
        assert_eq!(cc.last_max_cwnd, 512, "W_max anchor survives the timeout");
        assert!(cc.epoch_start.is_none());
        assert_eq!(cc.cnt, 0);
    }

    #[test]
    fn post_timeout_growth_binary_searches_toward_w_max() {
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        tp.ssthresh = cc.ssthresh(&tp);
        cc.on_loss(&mut tp, LossKind::Timeout, 0.0);
        tp.cwnd = tp.ssthresh; // slow start done
        let mut now = 1.0;
        let mut increments = Vec::new();
        let mut prev = tp.cwnd;
        for _ in 0..8 {
            one_round(&mut cc, &mut tp, now);
            now += 1.0;
            increments.push(tp.cwnd - prev);
            prev = tp.cwnd;
        }
        // Additive phase at Smax=16, decelerating as the window nears 512.
        assert!(increments[0] >= 14, "{increments:?}");
        let last = *increments.last().unwrap();
        assert!(
            last < increments[0],
            "binary search decelerates: {increments:?}"
        );
        assert!(
            tp.cwnd <= 520,
            "plateau near the old maximum, at {}",
            tp.cwnd
        );
    }

    #[test]
    fn fresh_epoch_growth_is_about_five_percent_per_rtt() {
        // After a timeout (history wiped) BIC grows with cnt=20, i.e. by
        // cwnd/20 packets per RTT.
        let mut cc = Bic::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 400;
        tp.ssthresh = 400;
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp, 0.0);
        assert_eq!(tp.cwnd - before, before / 20);
    }
}
