//! Cross-algorithm conformance and property tests: every implementation
//! must uphold the invariants the CAAI pipeline relies on, regardless of
//! ACK/loss interleaving.

use crate::registry::{AlgorithmId, ALL_WITH_EXTENSIONS};
use crate::transport::{Ack, LossKind, Transport};
use proptest::prelude::*;

/// Drive one emulated RTT round against a controller: send `cwnd` packets,
/// deliver `keep` of the ACKs (modelling forward-path ACK loss).
fn drive_round(
    cc: &mut Box<dyn crate::CongestionControl>,
    tp: &mut Transport,
    now: f64,
    rtt: f64,
    keep_every: u32,
) {
    let w = tp.cwnd;
    tp.snd_nxt += u64::from(w);
    let mut pending = 0u32;
    for i in 0..w {
        pending += 1;
        if keep_every != 0 && i % keep_every == 0 {
            tp.snd_una += u64::from(pending);
            tp.observe_rtt(rtt);
            let ack = Ack {
                now,
                acked: pending,
                rtt,
            };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
            pending = 0;
        }
    }
    if pending > 0 {
        tp.snd_una += u64::from(pending);
        let ack = Ack {
            now,
            acked: pending,
            rtt,
        };
        cc.pkts_acked(tp, &ack);
        cc.cong_avoid(tp, &ack);
    }
}

fn timeout(cc: &mut Box<dyn crate::CongestionControl>, tp: &mut Transport, now: f64) {
    tp.ssthresh = cc.ssthresh(tp);
    cc.on_loss(tp, LossKind::Timeout, now);
    tp.cwnd = 1;
    tp.cwnd_cnt = 0;
}

#[test]
fn every_algorithm_survives_a_full_episode() {
    for id in ALL_WITH_EXTENSIONS {
        let mut cc = id.build();
        let mut tp = Transport::new(1460);
        // Keep the per-round ACK loops bounded: HYBLA's slow start grows
        // by 2^ρ − 1 per ACK (ρ = 40 at this RTT), which would explode an
        // unclamped window past any loopable size within one round.
        tp.cwnd_clamp = 1024;
        cc.init(&mut tp);
        let mut now = 0.0;
        // Slow start to several hundred packets.
        for _ in 0..12 {
            drive_round(&mut cc, &mut tp, now, 1.0, 1);
            now += 1.0;
        }
        timeout(&mut cc, &mut tp, now);
        now += 3.0;
        // Recovery plus congestion avoidance.
        for _ in 0..25 {
            drive_round(&mut cc, &mut tp, now, 1.0, 1);
            now += 1.0;
            assert!(tp.cwnd >= 1, "{id:?}: cwnd must never reach 0");
        }
        assert!(tp.ssthresh >= 2, "{id:?}: ssthresh floor");
    }
}

#[test]
fn ssthresh_is_at_most_twice_the_window_for_identified_algorithms() {
    // CAAI clamps β to [0.5, 2.0]; sane implementations never exceed 1.0
    // except through history effects, and never return 0.
    for id in ALL_WITH_EXTENSIONS {
        let mut cc = id.build();
        let mut tp = Transport::new(1460);
        tp.cwnd_clamp = 1024; // see every_algorithm_survives_a_full_episode
        cc.init(&mut tp);
        let mut now = 0.0;
        for _ in 0..10 {
            drive_round(&mut cc, &mut tp, now, 1.0, 1);
            now += 1.0;
        }
        let w = tp.cwnd;
        let ss = cc.ssthresh(&tp);
        assert!(ss >= 2, "{id:?}: ssthresh {ss} below floor");
        assert!(
            ss <= w.saturating_mul(2).max(4),
            "{id:?}: ssthresh {ss} wildly above cwnd {w}"
        );
    }
}

#[test]
fn beta_fingerprints_on_a_clean_one_second_path() {
    // The discriminating β values of §III-B, measured exactly as CAAI does:
    // grow on a clean fixed-RTT path (environment A), time out, compare
    // ssthresh to the window right before the timeout.
    let expect = [
        (AlgorithmId::Reno, 0.50),
        (AlgorithmId::Bic, 0.80),
        (AlgorithmId::CtcpV1, 0.50),
        (AlgorithmId::CtcpV2, 0.50),
        (AlgorithmId::CubicV1, 0.80),
        (AlgorithmId::CubicV2, 0.70),
        (AlgorithmId::Scalable, 0.875),
        (AlgorithmId::Illinois, 0.875),
        (AlgorithmId::Veno, 0.80),
        (AlgorithmId::Vegas, 0.50),
    ];
    for (id, want) in expect {
        let mut cc = id.build();
        let mut tp = Transport::new(1460);
        cc.init(&mut tp);
        let mut now = 0.0;
        while tp.cwnd < 512 {
            drive_round(&mut cc, &mut tp, now, 1.0, 1);
            now += 1.0;
        }
        let w_before = tp.cwnd;
        let ss = cc.ssthresh(&tp);
        let beta = f64::from(ss) / f64::from(w_before);
        assert!(
            (beta - want).abs() < 0.05,
            "{id:?}: β = {beta:.3}, paper says {want}"
        );
    }
}

#[test]
fn htcp_beta_is_point_eight_on_fixed_rtt() {
    // HTCP's β needs a prior congestion event before the RTT-ratio rule
    // activates, so it is tested separately with two loss episodes.
    let mut cc = AlgorithmId::Htcp.build();
    let mut tp = Transport::new(1460);
    cc.init(&mut tp);
    let mut now = 0.0;
    while tp.cwnd < 512 {
        drive_round(&mut cc, &mut tp, now, 1.0, 1);
        now += 1.0;
    }
    timeout(&mut cc, &mut tp, now);
    now += 3.0;
    while tp.cwnd < 300 {
        drive_round(&mut cc, &mut tp, now, 1.0, 1);
        now += 1.0;
    }
    let w = tp.cwnd;
    let beta = f64::from(cc.ssthresh(&tp)) / f64::from(w);
    assert!((beta - 0.8).abs() < 0.02, "HTCP β = {beta}");
}

#[test]
fn westwood_beta_is_far_below_half_after_slow_start() {
    let mut cc = AlgorithmId::WestwoodPlus.build();
    let mut tp = Transport::new(1460);
    cc.init(&mut tp);
    let mut now = 0.0;
    while tp.cwnd < 512 {
        drive_round(&mut cc, &mut tp, now, 1.0, 1);
        now += 1.0;
    }
    let beta = f64::from(cc.ssthresh(&tp)) / f64::from(tp.cwnd);
    assert!(beta < 0.5, "WESTWOOD+ pipe estimate must lag: β = {beta}");
}

#[test]
fn names_are_unique() {
    let mut names: Vec<&str> = ALL_WITH_EXTENSIONS
        .iter()
        .map(|a| a.build().name())
        .collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), ALL_WITH_EXTENSIONS.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary interleavings of rounds, RTT values, ACK aggregation
    /// and timeouts, no algorithm ever drives cwnd to 0 or ssthresh below 2,
    /// and cwnd respects the clamp.
    #[test]
    fn invariants_hold_under_arbitrary_schedules(
        algo_idx in 0usize..ALL_WITH_EXTENSIONS.len(),
        rounds in 1usize..40,
        rtt_millis in 50u32..2000,
        keep_every in 1u32..4,
        timeout_after in prop::option::of(0usize..40),
        clamp in prop::option::of(4u32..600),
    ) {
        let id = ALL_WITH_EXTENSIONS[algo_idx];
        let mut cc = id.build();
        let mut tp = Transport::new(1460);
        match clamp {
            Some(c) => tp.cwnd_clamp = c,
            // "Unclamped" still needs a generous ceiling: growth is
            // unbounded (HYBLA multiplies by (rtt/rtt₀)² per ACK) and the
            // per-round ACK loops are O(window), so a truly infinite
            // window stalls the test. 10k packets is far above every
            // sampled clamp and every w_max the pipeline probes.
            None => tp.cwnd_clamp = 10_000,
        }
        cc.init(&mut tp);
        let rtt = f64::from(rtt_millis) / 1000.0;
        let mut now = 0.0;
        for r in 0..rounds {
            if Some(r) == timeout_after {
                timeout(&mut cc, &mut tp, now);
                now += 3.0;
            }
            drive_round(&mut cc, &mut tp, now, rtt, keep_every);
            now += rtt;
            prop_assert!(tp.cwnd >= 1, "{id:?}: zero cwnd");
            if let Some(c) = clamp {
                prop_assert!(tp.cwnd <= c.max(2), "{id:?}: clamp violated: {} > {c}", tp.cwnd);
            }
            prop_assert!(tp.ssthresh >= 2 || tp.ssthresh == crate::transport::INFINITE_SSTHRESH);
        }
        let ss = cc.ssthresh(&tp);
        prop_assert!(ss >= 2, "{id:?}: final ssthresh {ss}");
    }

    /// Slow start must never overshoot ssthresh by way of the helper.
    #[test]
    fn slow_start_never_overshoots(cwnd in 1u32..1000, ssthresh in 2u32..1000, acked in 1u32..64) {
        let mut tp = Transport::new(1460);
        tp.cwnd = cwnd.min(ssthresh);
        tp.ssthresh = ssthresh;
        tp.slow_start(acked);
        prop_assert!(tp.cwnd <= ssthresh);
    }

    /// Limited slow start (RFC 3742) keeps the same never-overshoot
    /// guarantee and never grows faster than standard slow start.
    #[test]
    fn limited_slow_start_is_conservative(
        cwnd in 1u32..1000,
        ssthresh in 2u32..1000,
        max_ss in 1u32..500,
        acked in 1u32..64,
    ) {
        let mut limited = Transport::new(1460);
        limited.cwnd = cwnd.min(ssthresh);
        limited.ssthresh = ssthresh;
        limited.max_ssthresh = max_ss;
        let mut standard = Transport::new(1460);
        standard.cwnd = cwnd.min(ssthresh);
        standard.ssthresh = ssthresh;
        limited.slow_start(acked);
        standard.slow_start(acked);
        prop_assert!(limited.cwnd <= ssthresh);
        prop_assert!(limited.cwnd <= standard.cwnd,
            "limited ({}) must not outgrow standard ({})", limited.cwnd, standard.cwnd);
        prop_assert!(limited.cwnd >= cwnd.min(ssthresh), "slow start never shrinks");
    }

    /// The AI helper grows by exactly floor-of-rate over any ACK pattern.
    #[test]
    fn cong_avoid_ai_total_growth_is_bounded(w in 1u32..500, acks in 1u32..2000) {
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for _ in 0..acks {
            tp.cong_avoid_ai(w, 1);
        }
        let grown = tp.cwnd - 100;
        // Expected growth acks/w, with ±1 slack for the accumulator.
        let expect = acks / w.max(1);
        prop_assert!(grown >= expect.saturating_sub(1) && grown <= expect + 1,
            "w={w} acks={acks}: grew {grown}, expected ≈{expect}");
    }
}
