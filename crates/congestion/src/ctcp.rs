//! CTCP: Compound TCP (Tan, Song, Zhang, Sridharan, INFOCOM'06), the
//! Windows default since Vista/Server 2008 and available as a hotfix for
//! XP/Server 2003.
//!
//! The window is the sum of a loss-based component (RENO's `cwnd`) and a
//! delay-based component (`dwnd`): `win = cwnd + dwnd`. Once per RTT the
//! backlog estimate `diff = win·(rtt − baseRTT)/rtt` decides whether the
//! delay window keeps growing binomially (`dwnd += (α·win^k − 1)⁺`, α=1/8,
//! k=0.75, while `diff < γ`) or is drained (`dwnd −= ζ·diff`, ζ=1). On loss
//! the total window is halved (`β = 0.5`), which is why the paper cannot
//! distinguish CTCP from RENO at small `w_max` ("RC-small").
//!
//! ## The two deployed versions
//!
//! Windows is closed source; the paper itself distinguishes **CTCP v1**
//! (Server 2003 / XP) from **CTCP v2** (Server 2008 / Vista / 7) purely by
//! observed behaviour: in environment B the post-timeout RTT step
//! (0.8 s → 1.0 s after round 12) changes v2's window growth but not v1's
//! (Fig. 3(c) vs 3(d)). We reproduce that observable with a documented
//! substitution: v1 feeds the backlog estimator a *heavily smoothed* RTT
//! (legacy coarse RTT sampling), so a 200 ms step barely registers within
//! the 6-round feature window, while v2 uses the per-round RTT sample as
//! the INFOCOM'06 paper specifies, reacting immediately.

use crate::transport::{Ack, CongestionControl, LossKind, RoundTracker, Transport};

/// Binomial delay-window increase exponent `k`.
const K_EXP: f64 = 0.75;
/// Binomial delay-window increase gain `α`.
const ALPHA: f64 = 0.125;
/// Delay-window drain gain `ζ`.
const ZETA: f64 = 1.0;
/// Backlog threshold `γ` (packets).
const GAMMA: f64 = 30.0;
/// Total-window multiplicative decrease `β`.
const BETA: f64 = 0.5;
/// Below this total window the delay component stays inactive and CTCP is
/// behaviourally identical to RENO (§IV-B of the paper: "CTCP = RENO when
/// their window sizes are less than 41").
const LOW_WINDOW: f64 = 41.0;

/// Which deployed CTCP generation to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtcpVersion {
    /// Windows Server 2003 / XP (the paper's CTCP').
    V1,
    /// Windows Server 2008 / Vista / 7 (the paper's CTCP'').
    V2,
}

/// Compound TCP.
#[derive(Debug, Clone)]
pub struct Ctcp {
    version: CtcpVersion,
    /// Loss-based window component, fractional (RENO-rate growth).
    cwnd_loss: f64,
    /// Delay-based window component.
    dwnd: f64,
    /// Connection minimum RTT.
    base_rtt: f64,
    /// Minimum RTT sample within the current round.
    round_min_rtt: f64,
    /// Smoothed RTT used by v1's backlog estimator.
    smoothed_rtt: f64,
    rounds: RoundTracker,
}

impl Ctcp {
    /// CTCP as deployed on Windows Server 2003 / XP.
    pub fn v1() -> Self {
        Self::with_version(CtcpVersion::V1)
    }

    /// CTCP as deployed on Windows Server 2008 / Vista / 7.
    pub fn v2() -> Self {
        Self::with_version(CtcpVersion::V2)
    }

    /// Creates the requested CTCP generation.
    pub fn with_version(version: CtcpVersion) -> Self {
        Ctcp {
            version,
            cwnd_loss: 0.0,
            dwnd: 0.0,
            base_rtt: f64::INFINITY,
            round_min_rtt: f64::INFINITY,
            smoothed_rtt: 0.0,
            rounds: RoundTracker::new(),
        }
    }

    /// The delay window, exposed for tests and trace annotation.
    pub fn dwnd(&self) -> f64 {
        self.dwnd
    }

    fn sync_total(&self, tp: &mut Transport) {
        let total = (self.cwnd_loss + self.dwnd).floor().max(2.0) as u32;
        tp.cwnd = total.min(tp.cwnd_clamp);
    }

    /// The RTT the backlog estimator sees: v1 smooths heavily, v2 uses the
    /// round's sample.
    fn estimator_rtt(&self) -> f64 {
        match self.version {
            CtcpVersion::V1 => self.smoothed_rtt,
            CtcpVersion::V2 => self.round_min_rtt,
        }
    }

    /// Legacy v1 estimator: slow EWMA (gain 1/256) over *one sample per
    /// round*, modelling the older stack's coarse RTT timer. The gain must
    /// be small against the whole trace, not one round: environment B's
    /// long-RTT rounds accumulate (late pre-timeout rounds plus every
    /// post-step round), and v1 must still sit far below the γ backlog
    /// threshold through the post-timeout feature window, while v2 — fed
    /// by the per-round sample — reacts within one round.
    fn update_smoothed_rtt(&mut self) {
        if !self.round_min_rtt.is_finite() {
            return;
        }
        if self.smoothed_rtt == 0.0 {
            self.smoothed_rtt = self.round_min_rtt;
        } else {
            self.smoothed_rtt += (self.round_min_rtt - self.smoothed_rtt) / 256.0;
        }
    }

    fn update_dwnd_once_per_round(&mut self, tp: &Transport) {
        let win = self.cwnd_loss + self.dwnd;
        if win < LOW_WINDOW {
            self.dwnd = 0.0;
            return;
        }
        let rtt = self.estimator_rtt();
        if !rtt.is_finite() || rtt <= 0.0 || !self.base_rtt.is_finite() {
            return;
        }
        let diff = win * (rtt - self.base_rtt).max(0.0) / rtt;
        if diff < GAMMA {
            self.dwnd += (ALPHA * win.powf(K_EXP) - 1.0).max(0.0);
        } else {
            self.dwnd = (self.dwnd - ZETA * diff).max(0.0);
        }
        let _ = tp;
    }
}

impl CongestionControl for Ctcp {
    fn name(&self) -> &'static str {
        match self.version {
            CtcpVersion::V1 => "CTCP_v1",
            CtcpVersion::V2 => "CTCP_v2",
        }
    }

    fn init(&mut self, tp: &mut Transport) {
        self.cwnd_loss = f64::from(tp.cwnd);
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        if ack.rtt <= 0.0 {
            return;
        }
        if ack.rtt < self.base_rtt {
            self.base_rtt = ack.rtt;
        }
        if ack.rtt < self.round_min_rtt {
            self.round_min_rtt = ack.rtt;
        }
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        if tp.in_slow_start() {
            // Standard slow start on the total window; the delay component
            // stays at zero.
            tp.slow_start(ack.acked);
            self.cwnd_loss = f64::from(tp.cwnd) - self.dwnd;
            if tp.in_slow_start() {
                // Round bookkeeping still advances during slow start.
                if self.rounds.round_elapsed(tp) {
                    self.update_smoothed_rtt();
                    self.round_min_rtt = f64::INFINITY;
                }
                return;
            }
        }
        // Loss-based component grows at RENO's rate: +1/win per ACK, with
        // `win` the *integer* window actually in flight (fractional state
        // would lag RENO by a packet every few rounds).
        let win = (self.cwnd_loss + self.dwnd).floor().max(1.0);
        self.cwnd_loss += f64::from(ack.acked) / win;
        if self.rounds.round_elapsed(tp) {
            self.update_smoothed_rtt();
            self.update_dwnd_once_per_round(tp);
            self.round_min_rtt = f64::INFINITY;
        }
        self.sync_total(tp);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        ((f64::from(tp.cwnd) * (1.0 - BETA)) as u32).max(2)
    }

    fn on_loss(&mut self, tp: &mut Transport, kind: LossKind, _now: f64) {
        match kind {
            LossKind::Timeout => {
                // Loss window restarts from one packet; the delay window is
                // discarded with the transfer state.
                self.cwnd_loss = 1.0;
                self.dwnd = 0.0;
                self.rounds.reset();
                self.round_min_rtt = f64::INFINITY;
            }
            LossKind::FastRetransmit => {
                // dwnd = (win·(1−β) − cwnd/2)⁺ per the CTCP paper.
                let win = self.cwnd_loss + self.dwnd;
                self.cwnd_loss /= 2.0;
                self.dwnd = (win * (1.0 - BETA) - self.cwnd_loss).max(0.0);
                self.sync_total(tp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive one emulated RTT round: the server sends `cwnd` packets, all
    /// are ACKed individually with the given RTT sample.
    fn one_round(cc: &mut Ctcp, tp: &mut Transport, now: f64, rtt: f64) {
        let w = tp.cwnd;
        tp.snd_nxt += u64::from(w);
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    fn enter_avoidance(cc: &mut Ctcp, tp: &mut Transport, cwnd: u32) {
        tp.cwnd = cwnd;
        tp.ssthresh = cwnd;
        cc.cwnd_loss = f64::from(cwnd);
        cc.dwnd = 0.0;
    }

    #[test]
    fn beta_is_half() {
        let mut cc = Ctcp::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        assert_eq!(cc.ssthresh(&tp), 256);
    }

    #[test]
    fn grows_faster_than_reno_at_large_windows() {
        let mut cc = Ctcp::v2();
        let mut tp = Transport::new(1460);
        enter_avoidance(&mut cc, &mut tp, 256);
        let start = tp.cwnd;
        let mut now = 0.0;
        for _ in 0..6 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
        }
        let growth = tp.cwnd - start;
        // RENO would add 6; the binomial delay window adds ~α·win^0.75 ≈ 8
        // per round on an uncongested path.
        assert!(growth > 20, "compound growth {growth} must beat RENO's 6");
    }

    #[test]
    fn reno_equivalent_below_low_window() {
        let mut cc = Ctcp::v2();
        let mut tp = Transport::new(1460);
        enter_avoidance(&mut cc, &mut tp, 20);
        let mut now = 0.0;
        for _ in 0..5 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
        }
        assert_eq!(tp.cwnd, 25, "below win=41 CTCP is RENO");
    }

    #[test]
    fn v2_delay_window_drains_on_rtt_increase() {
        let mut cc = Ctcp::v2();
        let mut tp = Transport::new(1460);
        enter_avoidance(&mut cc, &mut tp, 256);
        let mut now = 0.0;
        for _ in 0..5 {
            one_round(&mut cc, &mut tp, now, 0.8);
            now += 0.8;
        }
        let dwnd_before = cc.dwnd();
        assert!(dwnd_before > 10.0);
        for _ in 0..4 {
            one_round(&mut cc, &mut tp, now, 1.0); // RTT step: queueing signal
            now += 1.0;
        }
        assert!(
            cc.dwnd() < dwnd_before / 2.0,
            "v2 dwnd must collapse when diff exceeds gamma: {} -> {}",
            dwnd_before,
            cc.dwnd()
        );
    }

    #[test]
    fn v1_keeps_growing_through_rtt_step() {
        let mut cc = Ctcp::v1();
        let mut tp = Transport::new(1460);
        enter_avoidance(&mut cc, &mut tp, 256);
        let mut now = 0.0;
        for _ in 0..5 {
            one_round(&mut cc, &mut tp, now, 0.8);
            now += 0.8;
        }
        let dwnd_before = cc.dwnd();
        for _ in 0..4 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
        }
        assert!(
            cc.dwnd() > dwnd_before,
            "v1's smoothed estimator must not register a 200 ms step within \
             a few rounds: {} -> {}",
            dwnd_before,
            cc.dwnd()
        );
    }

    #[test]
    fn timeout_resets_both_components() {
        let mut cc = Ctcp::v2();
        let mut tp = Transport::new(1460);
        enter_avoidance(&mut cc, &mut tp, 256);
        one_round(&mut cc, &mut tp, 0.0, 1.0);
        cc.on_loss(&mut tp, LossKind::Timeout, 1.0);
        assert_eq!(cc.dwnd(), 0.0);
        assert_eq!(cc.cwnd_loss, 1.0);
    }

    #[test]
    fn fast_retransmit_halves_total_window() {
        let mut cc = Ctcp::v2();
        let mut tp = Transport::new(1460);
        enter_avoidance(&mut cc, &mut tp, 100);
        cc.dwnd = 60.0;
        cc.cwnd_loss = 40.0;
        cc.on_loss(&mut tp, LossKind::FastRetransmit, 1.0);
        let total = cc.cwnd_loss + cc.dwnd;
        assert!(
            (total - 50.0).abs() < 1.0,
            "total window halves, got {total}"
        );
    }
}
