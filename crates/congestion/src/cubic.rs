//! CUBIC (Ha, Rhee, Xu, 2008): the Linux default since kernel 2.6.19.
//!
//! Port of `net/ipv4/tcp_cubic.c`. The window grows as a cubic function of
//! the time elapsed since the last loss: `W(t) = C·(t−K)³ + W_max` with
//! `K = ∛(W_max·β_decrease/C)`, independent of the RTT, plus a
//! "TCP-friendly region" that keeps CUBIC at least as fast as an
//! AIMD(1, β) flow.
//!
//! The paper distinguishes two deployed versions (§III-A):
//!
//! * **CUBIC v1** — kernels ≤ 2.6.25 — multiplicative decrease
//!   `β = 819/1024 ≈ 0.8`;
//! * **CUBIC v2** — kernels ≥ 2.6.26 — multiplicative decrease
//!   `β = 717/1024 ≈ 0.7` (and the TCP-friendly window recomputed for the
//!   new β).
//!
//! Kernel fixed-point time (`BICTCP_HZ`) is replaced by `f64` seconds; the
//! cubic coefficient `C = 0.4` and all observable quotients are identical.

use crate::transport::{Ack, CongestionControl, LossKind, Transport};

/// The cubic coefficient `C` (kernel `bic_scale = 41`, i.e. 41·10/1024).
const C: f64 = 0.4;
/// `fast_convergence` module parameter (enabled by default).
const FAST_CONVERGENCE: bool = true;
/// `tcp_friendliness` module parameter (enabled by default).
const TCP_FRIENDLINESS: bool = true;

/// Which deployed CUBIC generation to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubicVersion {
    /// Linux ≤ 2.6.25, β ≈ 0.8.
    V1,
    /// Linux ≥ 2.6.26, β ≈ 0.7.
    V2,
}

/// CUBIC congestion avoidance.
#[derive(Debug, Clone)]
pub struct Cubic {
    version: CubicVersion,
    /// Fixed-point β numerator over 1024, matching the kernel constants.
    beta_scaled: u64,
    cnt: u32,
    last_max_cwnd: u32,
    last_cwnd: u32,
    last_time: f64,
    origin_point: u32,
    k: f64,
    delay_min: f64,
    epoch_start: Option<f64>,
    ack_cnt: u64,
    tcp_cwnd: u32,
}

impl Cubic {
    /// CUBIC as shipped in kernels up to 2.6.25 (β ≈ 0.8).
    pub fn v1() -> Self {
        Self::with_version(CubicVersion::V1)
    }

    /// CUBIC as shipped in kernels from 2.6.26 on (β ≈ 0.7).
    pub fn v2() -> Self {
        Self::with_version(CubicVersion::V2)
    }

    /// Creates the requested CUBIC generation.
    pub fn with_version(version: CubicVersion) -> Self {
        Cubic {
            version,
            beta_scaled: match version {
                CubicVersion::V1 => 819,
                CubicVersion::V2 => 717,
            },
            cnt: 0,
            last_max_cwnd: 0,
            last_cwnd: 0,
            last_time: 0.0,
            origin_point: 0,
            k: 0.0,
            delay_min: f64::INFINITY,
            epoch_start: None,
            ack_cnt: 0,
            tcp_cwnd: 0,
        }
    }

    fn beta(&self) -> f64 {
        self.beta_scaled as f64 / 1024.0
    }

    /// `bictcp_reset`: wipe the whole epoch (runs on TCP_CA_Loss).
    fn reset(&mut self) {
        let version = self.version;
        *self = Cubic::with_version(version);
    }

    /// `bictcp_update`: compute `cnt`, the number of ACKs per one-packet
    /// window increment.
    fn update(&mut self, cwnd: u32, acked: u32, now: f64) {
        self.ack_cnt += u64::from(acked);
        if self.last_cwnd == cwnd && (now - self.last_time) <= 1.0 / 32.0 {
            return;
        }
        self.last_cwnd = cwnd;
        self.last_time = now;

        if self.epoch_start.is_none() {
            self.epoch_start = Some(now);
            self.ack_cnt = u64::from(acked);
            self.tcp_cwnd = cwnd;
            if self.last_max_cwnd <= cwnd {
                self.k = 0.0;
                self.origin_point = cwnd;
            } else {
                self.k = (f64::from(self.last_max_cwnd - cwnd) / C).cbrt();
                self.origin_point = self.last_max_cwnd;
            }
        }

        // Elapsed time on the cubic curve; the kernel adds the propagation
        // delay (`dMin`) to look one RTT ahead.
        let dmin = if self.delay_min.is_finite() {
            self.delay_min
        } else {
            0.0
        };
        let t = now + dmin - self.epoch_start.unwrap_or(now);
        let offs = t - self.k;
        let target = f64::from(self.origin_point) + C * offs * offs * offs;

        let target_pkts = target.floor();
        if target_pkts > f64::from(cwnd) {
            let gap = (target_pkts - f64::from(cwnd)).max(1.0);
            self.cnt = (f64::from(cwnd) / gap).max(1.0) as u32;
        } else {
            self.cnt = 100 * cwnd; // very small increment into the plateau
        }

        // First epoch of the connection: ramp comparable to slow start.
        if self.last_max_cwnd == 0 && self.cnt > 20 {
            self.cnt = 20;
        }

        if TCP_FRIENDLINESS {
            // Estimate of the window an AIMD(1, β) flow would have: W_est
            // grows by 3(1−β)/(1+β) packets per RTT, implemented exactly as
            // the kernel does with an ACK budget `delta`.
            let beta = self.beta();
            let delta = (f64::from(cwnd) * (1.0 + beta) / (3.0 * (1.0 - beta))).max(1.0) as u64;
            while self.ack_cnt > delta {
                self.ack_cnt -= delta;
                self.tcp_cwnd += 1;
            }
            if self.tcp_cwnd > cwnd {
                let friendly_gap = self.tcp_cwnd - cwnd;
                let max_cnt = cwnd / friendly_gap;
                if self.cnt > max_cnt {
                    self.cnt = max_cnt;
                }
            }
        }

        self.cnt = self.cnt.max(2);
    }

    /// Current distance `K` (seconds) to the curve's inflection point;
    /// exposed for tests and trace annotation.
    pub fn k_seconds(&self) -> f64 {
        self.k
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        match self.version {
            CubicVersion::V1 => "CUBIC_v1",
            CubicVersion::V2 => "CUBIC_v2",
        }
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        if ack.rtt > 0.0 && ack.rtt < self.delay_min {
            self.delay_min = ack.rtt;
        }
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        self.update(tp.cwnd, acked, ack.now);
        tp.cong_avoid_ai(self.cnt, acked);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        // `bictcp_recalc_ssthresh`.
        self.epoch_start = None;
        let cwnd = u64::from(tp.cwnd);
        if tp.cwnd < self.last_max_cwnd && FAST_CONVERGENCE {
            self.last_max_cwnd = ((cwnd * (1024 + self.beta_scaled)) / 2048) as u32;
        } else {
            self.last_max_cwnd = tp.cwnd;
        }
        (((cwnd * self.beta_scaled) / 1024) as u32).max(2)
    }

    fn on_loss(&mut self, _tp: &mut Transport, kind: LossKind, _now: f64) {
        if kind == LossKind::Timeout {
            // Reset the epoch but keep the W_max anchor: the paper's
            // measured CUBIC traces (Fig. 3(e)(f)) show the post-timeout
            // window following the concave cubic curve back toward the
            // pre-timeout maximum, which requires `last_max_cwnd` to
            // survive. See DESIGN.md (substitution: timeout keeps
            // `last_max_cwnd`) and the matching note in `bic.rs`.
            let keep = self.last_max_cwnd;
            self.reset();
            self.last_max_cwnd = keep;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Cubic, tp: &mut Transport, now: f64, rtt: f64) {
        let w = tp.cwnd;
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn v1_beta_is_point_eight() {
        let mut cc = Cubic::v1();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let beta = cc.ssthresh(&tp) as f64 / 512.0;
        assert!((beta - 0.7998).abs() < 0.002, "beta was {beta}");
    }

    #[test]
    fn v2_beta_is_point_seven() {
        let mut cc = Cubic::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let beta = cc.ssthresh(&tp) as f64 / 512.0;
        assert!((beta - 0.70).abs() < 0.002, "beta was {beta}");
    }

    #[test]
    fn growth_is_rtt_independent() {
        // CUBIC's defining property: the window is a function of wall-clock
        // time since the epoch, not of the RTT count. Two flows with RTTs
        // 0.5s and 1.0s reach (nearly) the same window after 20 seconds.
        let run = |rtt: f64| {
            let mut cc = Cubic::v2();
            let mut tp = Transport::new(1460);
            tp.cwnd = 512;
            tp.ssthresh = cc.ssthresh(&tp);
            tp.cwnd = tp.ssthresh;
            let mut now = 0.0;
            while now < 20.0 {
                one_round(&mut cc, &mut tp, now, rtt);
                now += rtt;
            }
            tp.cwnd
        };
        let fast = run(0.5);
        let slow = run(1.0);
        let ratio = f64::from(fast) / f64::from(slow);
        assert!(
            (0.85..=1.15).contains(&ratio),
            "cwnd after 20 s should not depend on RTT: {fast} vs {slow}"
        );
    }

    #[test]
    fn concave_then_convex_around_last_max() {
        let mut cc = Cubic::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        tp.ssthresh = cc.ssthresh(&tp); // last_max = 512, ssthresh = 358
        tp.cwnd = tp.ssthresh;
        let mut now = 0.0;
        let mut deltas = Vec::new();
        let mut prev = tp.cwnd;
        for _ in 0..30 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
            deltas.push(tp.cwnd as i64 - prev as i64);
            prev = tp.cwnd;
        }
        // Concave region: early growth outpaces the growth right before
        // reaching the plateau at last_max.
        let early: i64 = deltas[..3].iter().sum();
        let mid_idx = deltas.iter().position(|&d| d == 0).unwrap_or(10).min(25);
        let near_plateau: i64 = deltas[mid_idx.saturating_sub(3)..mid_idx].iter().sum();
        assert!(
            early >= near_plateau,
            "growth should decelerate approaching W_max: early {early}, plateau {near_plateau}"
        );
        // And the window eventually probes beyond the old maximum (convex).
        assert!(
            tp.cwnd > 512,
            "convex region must exceed the old W_max, got {}",
            tp.cwnd
        );
    }

    #[test]
    fn k_matches_cube_root_formula() {
        let mut cc = Cubic::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        tp.ssthresh = cc.ssthresh(&tp);
        tp.cwnd = tp.ssthresh;
        // One ACK in avoidance state arms the epoch.
        tp.snd_una += 1;
        let ack = Ack {
            now: 0.0,
            acked: 1,
            rtt: 1.0,
        };
        cc.pkts_acked(&mut tp, &ack);
        cc.cong_avoid(&mut tp, &ack);
        let expected = ((512.0 - f64::from(tp.cwnd)) / C).cbrt();
        assert!(
            (cc.k_seconds() - expected).abs() < 0.05,
            "K = {} expected {expected}",
            cc.k_seconds()
        );
    }

    #[test]
    fn timeout_resets_epoch_but_keeps_the_anchor() {
        let mut cc = Cubic::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let _ = cc.ssthresh(&tp);
        assert_eq!(cc.last_max_cwnd, 512);
        cc.on_loss(&mut tp, LossKind::Timeout, 3.0);
        assert_eq!(cc.last_max_cwnd, 512, "W_max anchor survives the timeout");
        assert!(cc.epoch_start.is_none());
        assert!(
            !cc.delay_min.is_finite(),
            "delay samples reset with the epoch"
        );
    }

    #[test]
    fn post_timeout_recovery_plateaus_at_w_max_then_probes() {
        let mut cc = Cubic::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        tp.ssthresh = cc.ssthresh(&tp);
        cc.on_loss(&mut tp, LossKind::Timeout, 0.0);
        tp.cwnd = tp.ssthresh; // 358 after slow start
        let mut now = 1.0;
        let mut hit_plateau = false;
        for _ in 0..20 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
            if (500..=524).contains(&tp.cwnd) {
                hit_plateau = true;
            }
        }
        assert!(hit_plateau, "the concave region must level off near 512");
        assert!(tp.cwnd > 512, "the convex region must then probe beyond");
    }

    #[test]
    fn fast_convergence_shrinks_history() {
        let mut cc = Cubic::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let _ = cc.ssthresh(&tp);
        tp.cwnd = 400;
        let _ = cc.ssthresh(&tp);
        let expected = (400 * (1024 + 717)) / 2048;
        assert_eq!(cc.last_max_cwnd, expected as u32);
    }

    #[test]
    fn tcp_friendly_floor_matches_aimd_rate() {
        // In the TCP-friendly region (tiny C contribution) CUBIC v2 grows at
        // least at 3(1-β)/(1+β) ≈ 0.53 packets per RTT.
        let mut cc = Cubic::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        tp.ssthresh = cc.ssthresh(&tp);
        tp.cwnd = tp.ssthresh;
        let start = tp.cwnd;
        let mut now = 0.0;
        for _ in 0..10 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
        }
        let growth = tp.cwnd - start;
        assert!(growth >= 4, "ten RTTs of friendly growth, got {growth}");
    }

    #[test]
    fn versions_share_the_growth_engine_but_not_beta() {
        let mut v1 = Cubic::v1();
        let mut v2 = Cubic::v2();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        assert!(v1.ssthresh(&tp) > v2.ssthresh(&tp));
        assert_eq!(v1.name(), "CUBIC_v1");
        assert_eq!(v2.name(), "CUBIC_v2");
    }
}
