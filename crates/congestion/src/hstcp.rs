//! HSTCP: HighSpeed TCP for large congestion windows (Floyd, RFC 3649).
//!
//! HSTCP generalizes RENO's AIMD to window-dependent parameters: per RTT
//! the window grows by `a(w)` packets and on loss it shrinks by the factor
//! `b(w)`, where `a` and `b` follow the RFC 3649 response function. For
//! `w ≤ 38` HSTCP is exactly RENO (`a = 1`, `b = 0.5`); at `w = 83000` it
//! reaches `a = 72`, `b = 0.1`. The multiplicative decrease parameter that
//! CAAI measures is `β(w) = 1 − b(w) ∈ [0.5, 0.9]`, matching §III-B of the
//! paper ("HSTCP sets β between 0.5 and 0.9 depending on w").
//!
//! Linux (`tcp_highspeed.c`) hard-codes a 73-row table generated from the
//! same response function; we evaluate the function directly — the values
//! agree with the table to within the table's own rounding.

use crate::transport::{Ack, CongestionControl, Transport};

/// Window below which HSTCP behaves exactly like RENO (RFC 3649 `Low_Window`).
const LOW_WINDOW: f64 = 38.0;
/// Design point: window at which the response function reaches its target.
const HIGH_WINDOW: f64 = 83000.0;
/// Decrease factor at the design point (RFC 3649 `High_Decrease`).
const HIGH_DECREASE: f64 = 0.1;
/// Loss rate at the design point: `High_P = 10⁻⁷`, folded into the `a(w)`
/// expression below via `p(w) = 0.078 / w^1.2`.
const P_COEFF: f64 = 0.078;
const P_EXP: f64 = 1.2;

/// Per-loss decrease factor `b(w)` from RFC 3649 §5.
pub fn b_of_w(w: f64) -> f64 {
    if w <= LOW_WINDOW {
        return 0.5;
    }
    let frac = (w.ln() - LOW_WINDOW.ln()) / (HIGH_WINDOW.ln() - LOW_WINDOW.ln());
    ((HIGH_DECREASE - 0.5) * frac + 0.5).clamp(HIGH_DECREASE, 0.5)
}

/// Per-RTT additive increase `a(w)` from RFC 3649 §5:
/// `a(w) = w² · p(w) · 2 · b(w) / (2 − b(w))` with `p(w) = 0.078/w^1.2`.
pub fn a_of_w(w: f64) -> f64 {
    if w <= LOW_WINDOW {
        return 1.0;
    }
    let b = b_of_w(w);
    let p = P_COEFF / w.powf(P_EXP);
    (w * w * p * 2.0 * b / (2.0 - b)).max(1.0)
}

/// HighSpeed TCP.
#[derive(Debug, Clone, Default)]
pub struct Hstcp {
    _private: (),
}

impl Hstcp {
    /// Creates an HSTCP controller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CongestionControl for Hstcp {
    fn name(&self) -> &'static str {
        "HSTCP"
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        // Grow by a(w) packets per RTT: one packet per w/a(w) ACKs.
        let w = f64::from(tp.cwnd);
        let ai = a_of_w(w);
        let per = (w / ai).max(1.0) as u32;
        tp.cong_avoid_ai(per, acked);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        let w = f64::from(tp.cwnd);
        let b = b_of_w(w);
        ((w * (1.0 - b)) as u32).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Hstcp, tp: &mut Transport) {
        let w = tp.cwnd;
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack {
                now: 0.0,
                acked: 1,
                rtt: 1.0,
            };
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn reno_regime_below_low_window() {
        assert_eq!(a_of_w(10.0), 1.0);
        assert_eq!(b_of_w(10.0), 0.5);
        assert_eq!(a_of_w(38.0), 1.0);
    }

    #[test]
    fn response_function_hits_the_design_point() {
        let b = b_of_w(HIGH_WINDOW);
        assert!((b - HIGH_DECREASE).abs() < 1e-9);
        let a = a_of_w(HIGH_WINDOW);
        // RFC 3649 table gives a(83000) = 72 (to rounding: a ≈ 71.6).
        assert!((70.0..74.0).contains(&a), "a(83000) = {a}");
    }

    #[test]
    fn beta_at_512_matches_the_rfc_table_row() {
        let mut cc = Hstcp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let beta = cc.ssthresh(&tp) as f64 / 512.0;
        // b(512) ≈ 0.365 → β ≈ 0.635.
        assert!((beta - 0.635).abs() < 0.02, "beta(512) = {beta}");
    }

    #[test]
    fn growth_at_512_is_about_five_packets_per_rtt() {
        let mut cc = Hstcp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        tp.ssthresh = 256;
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp);
        let delta = tp.cwnd - before;
        assert!((4..=7).contains(&delta), "a(512) ≈ 5, grew by {delta}");
    }

    #[test]
    fn increase_is_monotone_in_window() {
        let mut prev = 0.0;
        for w in [50.0, 100.0, 500.0, 1000.0, 10_000.0, 83_000.0] {
            let a = a_of_w(w);
            assert!(a > prev, "a({w}) = {a} must exceed a at smaller windows");
            prev = a;
        }
    }

    #[test]
    fn decrease_is_monotone_in_window() {
        let mut prev = 0.51;
        for w in [39.0, 100.0, 500.0, 1000.0, 10_000.0, 83_000.0] {
            let b = b_of_w(w);
            assert!(b < prev, "b({w}) = {b} must shrink as windows grow");
            prev = b;
        }
    }
}
