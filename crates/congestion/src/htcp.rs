//! H-TCP (Leith & Shorten, PFLDNet'04): increase grows quadratically with
//! the time elapsed since the last congestion event.
//!
//! Port of `net/ipv4/tcp_htcp.c`. Per RTT the window grows by
//! `2·(1−β)·α(Δ)` packets with `α(Δ) = 1 + 10(Δ−Δ_L) + ((Δ−Δ_L)/2)²`
//! (seconds, `Δ_L = 1 s`) and `β = RTT_min / RTT_max` clamped to
//! `[0.5, 0.8]` — the RTT-ratio-dependent multiplicative decrease the paper
//! highlights in §III-B.

use crate::transport::{Ack, CongestionControl, LossKind, Transport};

/// `ALPHA_BASE`: α = 1 inside the low-speed regime.
const ALPHA_BASE: f64 = 1.0;
/// Lower bound on β (`BETA_MIN = 0.5`).
const BETA_MIN: f64 = 0.5;
/// Upper bound on β (`BETA_MAX = 0.8` — kernel stores 102/128).
const BETA_MAX: f64 = 0.8;
/// Low-speed regime duration `Δ_L` in seconds.
const DELTA_L: f64 = 1.0;

/// H-TCP congestion avoidance.
#[derive(Debug, Clone)]
pub struct Htcp {
    alpha: f64,
    beta: f64,
    /// Time of the last congestion event, seconds.
    last_cong: f64,
    /// Minimum and maximum RTT observed since the last congestion event.
    min_rtt: f64,
    max_rtt: f64,
    /// Set once the first congestion event has happened (`modeswitch`):
    /// before it H-TCP stays in its low-speed RENO-like regime.
    mode_switch: bool,
}

impl Default for Htcp {
    fn default() -> Self {
        Self::new()
    }
}

impl Htcp {
    /// Creates an H-TCP controller with kernel-default parameters.
    pub fn new() -> Self {
        Htcp {
            alpha: ALPHA_BASE,
            beta: BETA_MIN,
            last_cong: 0.0,
            min_rtt: f64::INFINITY,
            max_rtt: 0.0,
            mode_switch: false,
        }
    }

    /// `htcp_alpha_update`: quadratic ramp after Δ_L seconds without loss,
    /// scaled by `2(1−β)` so that average throughput matches an AIMD flow
    /// with the same β.
    fn alpha_update(&mut self, now: f64) {
        let diff = (now - self.last_cong).max(0.0);
        let mut factor = ALPHA_BASE;
        if diff > DELTA_L {
            let d = diff - DELTA_L;
            factor = 1.0 + 10.0 * d + (d / 2.0) * (d / 2.0);
        }
        self.alpha = (2.0 * factor * (1.0 - self.beta)).max(ALPHA_BASE);
    }

    /// `htcp_beta_update`: β = RTTmin/RTTmax clamped to [0.5, 0.8], active
    /// only after the first congestion event.
    fn beta_update(&mut self) {
        if self.mode_switch && self.min_rtt.is_finite() && self.max_rtt > 0.0 {
            self.beta = (self.min_rtt / self.max_rtt).clamp(BETA_MIN, BETA_MAX);
        } else {
            self.beta = BETA_MIN;
            self.mode_switch = true;
        }
    }

    /// Current β, exposed for tests.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl CongestionControl for Htcp {
    fn name(&self) -> &'static str {
        "HTCP"
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        if ack.rtt <= 0.0 {
            return;
        }
        if ack.rtt < self.min_rtt {
            self.min_rtt = ack.rtt;
        }
        if ack.rtt > self.max_rtt {
            self.max_rtt = ack.rtt;
        }
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        self.alpha_update(ack.now);
        // Grow by α packets per RTT: one packet per cwnd/α ACKs.
        let per = (f64::from(tp.cwnd) / self.alpha).max(1.0) as u32;
        tp.cong_avoid_ai(per, acked);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        self.beta_update();
        ((f64::from(tp.cwnd) * self.beta) as u32).max(2)
    }

    fn on_loss(&mut self, _tp: &mut Transport, _kind: LossKind, now: f64) {
        self.last_cong = now;
        self.min_rtt = f64::INFINITY;
        self.max_rtt = 0.0;
        self.alpha = ALPHA_BASE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Htcp, tp: &mut Transport, now: f64, rtt: f64) {
        let w = tp.cwnd;
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn beta_is_rtt_ratio_clamped() {
        let mut cc = Htcp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        // First loss: mode switch, β = 0.5.
        assert_eq!(cc.ssthresh(&tp), 50);
        // With RTTs 0.8/1.0 observed, β = 0.8.
        cc.pkts_acked(
            &mut tp,
            &Ack {
                now: 0.0,
                acked: 1,
                rtt: 0.8,
            },
        );
        cc.pkts_acked(
            &mut tp,
            &Ack {
                now: 0.0,
                acked: 1,
                rtt: 1.0,
            },
        );
        assert_eq!(cc.ssthresh(&tp), 80);
        assert!((cc.beta() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn beta_clamps_to_point_eight_on_constant_rtt() {
        let mut cc = Htcp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        let _ = cc.ssthresh(&tp); // mode switch
        cc.pkts_acked(
            &mut tp,
            &Ack {
                now: 0.0,
                acked: 1,
                rtt: 1.0,
            },
        );
        // min = max → ratio 1.0 → clamped to 0.8 (environment A's fingerprint).
        let ss = cc.ssthresh(&tp);
        assert_eq!(ss, 409);
    }

    #[test]
    fn growth_accelerates_quadratically_after_a_second() {
        let mut cc = Htcp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 200;
        tp.ssthresh = 100;
        cc.on_loss(&mut tp, LossKind::Timeout, 0.0);
        let mut deltas = Vec::new();
        for round in 0..10 {
            let now = round as f64; // 1-second RTTs
            let before = tp.cwnd;
            one_round(&mut cc, &mut tp, now, 1.0);
            deltas.push(tp.cwnd - before);
        }
        // α(Δ=0..1) = base, then 1+10(Δ−1)+((Δ−1)/2)² kicks in.
        assert!(deltas[0] <= 2, "low-speed regime first, got {:?}", deltas);
        assert!(
            deltas[9] > deltas[4] && deltas[4] > deltas[1],
            "quadratic ramp expected, got {deltas:?}"
        );
        let expected_late = 2.0 * (1.0 + 10.0 * 8.0 + 16.0) * (1.0 - cc.beta());
        let got = f64::from(deltas[9]);
        assert!(
            (got - expected_late).abs() / expected_late < 0.35,
            "round 10 growth {got} vs analytic {expected_late}"
        );
    }

    #[test]
    fn loss_resets_the_ramp() {
        let mut cc = Htcp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        one_round(&mut cc, &mut tp, 10.0, 1.0);
        let fast = tp.cwnd - 100;
        assert!(fast > 20, "10 s after loss the ramp is steep: {fast}");
        cc.on_loss(&mut tp, LossKind::Timeout, 10.0);
        tp.cwnd = 100;
        tp.cwnd_cnt = 0;
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp, 10.5, 1.0);
        assert!(tp.cwnd - before <= 2, "ramp must restart after loss");
    }
}
