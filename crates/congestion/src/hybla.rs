//! TCP Hybla (Caini & Firrincieli, 2004): RTT-normalized RENO for
//! long-delay (satellite) paths.
//!
//! Port of `net/ipv4/tcp_hybla.c`. With `ρ = RTT/RTT₀` (reference
//! `RTT₀ = 25 ms`), slow start grows by `2^ρ − 1` packets per ACK and
//! congestion avoidance by `ρ²/cwnd`, so throughput becomes independent of
//! the propagation delay. The decrease is RENO's.
//!
//! The CAAI paper lists HYBLA in Table I but **excludes it from
//! identification** because it is not designed for web servers (§III-A); it
//! is implemented here so the population model can still field servers that
//! run it (they surface as "Unsure TCP" in the census, a real failure mode
//! the paper acknowledges).

use crate::reno::reno_ssthresh;
use crate::transport::{Ack, CongestionControl, LossKind, Transport};

/// Reference round-trip time `RTT₀` in seconds (kernel: 25 ms).
const RTT0: f64 = 0.025;

/// TCP Hybla.
#[derive(Debug, Clone)]
pub struct Hybla {
    rho: f64,
    /// Fractional window accumulator (the kernel keeps 7 fraction bits).
    frac: f64,
    /// Window snapshot the avoidance denominator is pinned to for one
    /// round's worth of ACKs (using the live `cwnd` would undershoot the
    /// ρ²-per-RTT growth as the window rises mid-round).
    round_cwnd: u32,
    /// ACKs consumed against the current snapshot.
    round_acks: u32,
}

impl Default for Hybla {
    fn default() -> Self {
        Self::new()
    }
}

impl Hybla {
    /// Creates a Hybla controller.
    pub fn new() -> Self {
        Hybla {
            rho: 1.0,
            frac: 0.0,
            round_cwnd: 0,
            round_acks: 0,
        }
    }

    /// Current RTT-normalization factor ρ, for tests.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    fn recalc_rho(&mut self, rtt: f64) {
        if rtt > 0.0 {
            self.rho = (rtt / RTT0).max(1.0);
        }
    }
}

impl CongestionControl for Hybla {
    fn name(&self) -> &'static str {
        "HYBLA"
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        self.recalc_rho(ack.rtt);
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        let increment = if tp.in_slow_start() {
            // 2^ρ − 1 packets per ACK.
            (2f64.powf(self.rho) - 1.0).max(1.0)
        } else {
            // ρ² / cwnd packets per ACK, with cwnd pinned per round.
            if self.round_cwnd == 0 || self.round_acks >= self.round_cwnd {
                self.round_cwnd = tp.cwnd.max(1);
                self.round_acks = 0;
            }
            self.round_acks += ack.acked;
            self.rho * self.rho / f64::from(self.round_cwnd)
        };
        self.frac += increment * f64::from(ack.acked);
        if self.frac >= 1.0 {
            let whole = self.frac.floor();
            self.frac -= whole;
            tp.cwnd = tp.cwnd.saturating_add(whole as u32).min(tp.cwnd_clamp).min(
                if tp.in_slow_start() {
                    tp.ssthresh
                } else {
                    u32::MAX
                },
            );
        }
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        reno_ssthresh(tp)
    }

    fn on_loss(&mut self, _tp: &mut Transport, _kind: LossKind, _now: f64) {
        self.frac = 0.0;
        self.round_cwnd = 0;
        self.round_acks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Hybla, tp: &mut Transport, rtt: f64) {
        let w = tp.cwnd;
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack {
                now: 0.0,
                acked: 1,
                rtt,
            };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn rho_normalizes_long_rtts() {
        let mut cc = Hybla::new();
        let mut tp = Transport::new(1460);
        cc.pkts_acked(
            &mut tp,
            &Ack {
                now: 0.0,
                acked: 1,
                rtt: 0.250,
            },
        );
        assert!((cc.rho() - 10.0).abs() < 1e-9);
        cc.pkts_acked(
            &mut tp,
            &Ack {
                now: 0.0,
                acked: 1,
                rtt: 0.010,
            },
        );
        assert_eq!(cc.rho(), 1.0, "ρ is floored at 1 (never slower than RENO)");
    }

    #[test]
    fn avoidance_growth_is_rho_squared_per_rtt() {
        let mut cc = Hybla::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp, 0.050); // ρ = 2 → +4 per RTT
        assert_eq!(tp.cwnd - before, 4);
    }

    #[test]
    fn reno_equivalent_at_reference_rtt() {
        let mut cc = Hybla::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        one_round(&mut cc, &mut tp, RTT0);
        assert_eq!(tp.cwnd, 101);
    }

    #[test]
    fn beta_is_renos() {
        let mut cc = Hybla::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 200;
        assert_eq!(cc.ssthresh(&tp), 100);
    }
}
