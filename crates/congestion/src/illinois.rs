//! TCP-Illinois (Liu, Başar, Srikant, VALUETOOLS'06): a loss-delay hybrid.
//!
//! Port of `net/ipv4/tcp_illinois.c`. Loss still triggers the decrease, but
//! both the additive increase `α` and the decrease factor `β` are functions
//! of the average queueing delay `d_a`: on an empty queue `α = α_max = 10`
//! and `β = β_min = 1/8`; as delay rises `α` falls toward 0.3 and `β`
//! climbs toward 1/2. CAAI's environment B (an RTT step *before* the
//! timeout) exists precisely to expose this delay-dependent β (§IV-B, Fig.
//! 3(i)).

use crate::transport::{Ack, CongestionControl, LossKind, RoundTracker, Transport};

/// Maximum additive increase per RTT (`ALPHA_MAX` = 10).
const ALPHA_MAX: f64 = 10.0;
/// Minimum additive increase per RTT (`ALPHA_MIN` = 3/10).
const ALPHA_MIN: f64 = 0.3;
/// Base (initial / small-window) additive increase.
const ALPHA_BASE: f64 = 1.0;
/// Minimum decrease factor (`BETA_MIN` = 1/8).
const BETA_MIN: f64 = 0.125;
/// Maximum / base decrease factor (`BETA_MAX` = 1/2).
const BETA_MAX: f64 = 0.5;
/// Below this window Illinois uses the base parameters (`win_thresh`).
const WIN_THRESH: u32 = 15;
/// Rounds of low delay required before snapping back to α_max (`theta`).
const THETA: u32 = 5;

/// TCP-Illinois congestion avoidance.
#[derive(Debug, Clone)]
pub struct Illinois {
    alpha: f64,
    beta: f64,
    base_rtt: f64,
    max_rtt: f64,
    sum_rtt: f64,
    cnt_rtt: u32,
    rtt_above: bool,
    rtt_low: u32,
    rounds: RoundTracker,
    acked: u32,
}

impl Default for Illinois {
    fn default() -> Self {
        Self::new()
    }
}

impl Illinois {
    /// Creates a TCP-Illinois controller with kernel-default parameters.
    pub fn new() -> Self {
        Illinois {
            alpha: ALPHA_BASE,
            beta: BETA_MAX,
            base_rtt: f64::INFINITY,
            max_rtt: 0.0,
            sum_rtt: 0.0,
            cnt_rtt: 0,
            rtt_above: false,
            rtt_low: 0,
            rounds: RoundTracker::new(),
            acked: 0,
        }
    }

    fn rtt_reset(&mut self) {
        self.sum_rtt = 0.0;
        self.cnt_rtt = 0;
    }

    /// `alpha()`: concave response to the average queueing delay.
    fn calc_alpha(&mut self, da: f64, dm: f64) -> f64 {
        let d1 = dm / 100.0;
        if da <= d1 {
            if !self.rtt_above {
                return ALPHA_MAX;
            }
            self.rtt_low += 1;
            if self.rtt_low < THETA {
                return self.alpha;
            }
            self.rtt_low = 0;
            self.rtt_above = false;
            return ALPHA_MAX;
        }
        self.rtt_above = true;
        let dm = dm - d1;
        let da = da - d1;
        (dm * ALPHA_MAX) / (dm + (da * (ALPHA_MAX - ALPHA_MIN)) / ALPHA_MIN)
    }

    /// `beta()`: piecewise-linear response to the average queueing delay.
    fn calc_beta(da: f64, dm: f64) -> f64 {
        let d2 = dm / 10.0;
        let d3 = dm * 8.0 / 10.0;
        if da <= d2 {
            return BETA_MIN;
        }
        if da >= d3 || d3 <= d2 {
            return BETA_MAX;
        }
        (BETA_MIN * d3 - BETA_MAX * d2 + (BETA_MAX - BETA_MIN) * da) / (d3 - d2)
    }

    /// `update_params`: once per RTT, refresh α and β from delay samples.
    fn update_params(&mut self, tp: &Transport) {
        if tp.cwnd < WIN_THRESH {
            self.alpha = ALPHA_BASE;
            self.beta = BETA_MAX;
        } else if self.cnt_rtt > 0 && self.base_rtt.is_finite() {
            let avg = self.sum_rtt / f64::from(self.cnt_rtt);
            let da = (avg - self.base_rtt).max(0.0);
            let dm = (self.max_rtt - self.base_rtt).max(0.0);
            if dm > 0.0 {
                self.alpha = self.calc_alpha(da, dm);
                self.beta = Self::calc_beta(da, dm);
            } else {
                // No queueing signal at all: an empty path.
                self.alpha = ALPHA_MAX;
                self.beta = BETA_MIN;
            }
        }
        self.rtt_reset();
    }

    /// Current α (packets per RTT), exposed for tests.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current β (decrease fraction), exposed for tests.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl CongestionControl for Illinois {
    fn name(&self) -> &'static str {
        "ILLINOIS"
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        if ack.rtt <= 0.0 {
            return;
        }
        if ack.rtt < self.base_rtt {
            self.base_rtt = ack.rtt;
        }
        if ack.rtt > self.max_rtt {
            self.max_rtt = ack.rtt;
        }
        self.sum_rtt += ack.rtt;
        self.cnt_rtt += 1;
        self.acked = ack.acked;
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        if self.rounds.round_elapsed(tp) {
            self.update_params(tp);
        }
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        // Grow by α packets per RTT.
        let per = (f64::from(tp.cwnd) / self.alpha).max(1.0) as u32;
        tp.cong_avoid_ai(per, acked);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        // `tcp_illinois_ssthresh`: cwnd − β·cwnd.
        ((f64::from(tp.cwnd) * (1.0 - self.beta)) as u32).max(2)
    }

    fn on_loss(&mut self, _tp: &mut Transport, kind: LossKind, _now: f64) {
        if kind == LossKind::Timeout {
            // `tcp_illinois_state` on TCP_CA_Loss: restart from base params.
            self.alpha = ALPHA_BASE;
            self.beta = BETA_MAX;
            self.rtt_low = 0;
            self.rtt_above = false;
            self.rtt_reset();
            self.rounds.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Illinois, tp: &mut Transport, now: f64, rtt: f64) {
        let w = tp.cwnd;
        tp.snd_nxt += u64::from(w);
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn empty_path_gives_alpha_max_and_beta_min() {
        let mut cc = Illinois::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..4 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!((cc.alpha() - ALPHA_MAX).abs() < 1e-9);
        assert!((cc.beta() - BETA_MIN).abs() < 1e-9);
        // β feature the paper reports: ssthresh = (1 − 1/8)·w = 0.875·w.
        tp.cwnd = 512;
        assert_eq!(cc.ssthresh(&tp), 448);
    }

    #[test]
    fn growth_is_ten_packets_per_rtt_on_empty_path() {
        let mut cc = Illinois::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        one_round(&mut cc, &mut tp, 0.0, 1.0); // params update to α_max
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp, 1.0, 1.0);
        let delta = tp.cwnd - before;
        assert!((9..=11).contains(&delta), "α_max = 10, grew {delta}");
    }

    #[test]
    fn rising_delay_raises_beta() {
        let mut cc = Illinois::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        // Establish base RTT of 0.8 s, then run at 1.0 s: da/dm = 1 → β max.
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        for round in 3..8 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!(
            cc.beta() > 0.4,
            "persistent queueing delay must push β toward 1/2, got {}",
            cc.beta()
        );
        // And α must have collapsed from 10 toward its floor.
        assert!(
            cc.alpha() < 1.0,
            "α should collapse under delay, got {}",
            cc.alpha()
        );
    }

    #[test]
    fn small_windows_use_base_parameters() {
        let mut cc = Illinois::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 10;
        tp.ssthresh = 5;
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!((cc.alpha() - ALPHA_BASE).abs() < 1e-9);
        assert!((cc.beta() - BETA_MAX).abs() < 1e-9);
    }

    #[test]
    fn timeout_resets_adaptation() {
        let mut cc = Illinois::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..4 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!((cc.alpha() - ALPHA_MAX).abs() < 1e-9);
        cc.on_loss(&mut tp, LossKind::Timeout, 5.0);
        assert!((cc.alpha() - ALPHA_BASE).abs() < 1e-9);
        assert!((cc.beta() - BETA_MAX).abs() < 1e-9);
    }

    #[test]
    fn beta_interpolates_between_d2_and_d3() {
        // dm = 1.0: d2 = 0.1, d3 = 0.8; da = 0.45 sits midway → β midway.
        let beta = Illinois::calc_beta(0.45, 1.0);
        let mid = (BETA_MIN + BETA_MAX) / 2.0;
        assert!((beta - mid).abs() < 0.01, "β({beta}) should be near {mid}");
    }
}
