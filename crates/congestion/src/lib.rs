//! # caai-congestion
//!
//! Reimplementations of the TCP **congestion avoidance** algorithms that the
//! CAAI paper (Yang et al., "TCP Congestion Avoidance Algorithm
//! Identification", ICDCS'11 / IEEE/ACM ToN 22(4) 2014) fingerprints.
//!
//! The paper identifies the congestion avoidance *component* of a remote TCP
//! stack by observing its per-RTT congestion-window trace in two emulated
//! network environments. This crate provides that component for all 14
//! algorithms the paper considers (Table I, §III-A) plus the two algorithms
//! the paper explicitly excludes (HYBLA, LP), behind one object-safe trait,
//! [`CongestionControl`].
//!
//! The implementations follow the Linux `net/ipv4/tcp_*.c` modules (for the
//! Linux family) and the published algorithm descriptions (for the Windows
//! CTCP family), at the fidelity level CAAI observes: **per-ACK window
//! growth** and **the slow-start-threshold rule applied on loss/timeout**
//! (the multiplicative decrease parameter β). Fixed-point kernel arithmetic
//! is reproduced with the same scale constants wherever the quotients are
//! observable in a window trace.
//!
//! ## Example
//!
//! ```
//! use caai_congestion::{AlgorithmId, Transport, Ack};
//!
//! let mut cc = AlgorithmId::Reno.build();
//! let mut tp = Transport::new(1460);
//! tp.cwnd = 10;
//! tp.ssthresh = 8; // in congestion avoidance
//! // One RTT worth of ACKs grows the window by one packet.
//! for _ in 0..10 {
//!     let ack = Ack { now: 1.0, acked: 1, rtt: 0.1 };
//!     tp.snd_una += 1;
//!     cc.pkts_acked(&mut tp, &ack);
//!     cc.cong_avoid(&mut tp, &ack);
//! }
//! assert_eq!(tp.cwnd, 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bic;
pub mod ctcp;
pub mod cubic;
pub mod hstcp;
pub mod htcp;
pub mod hybla;
pub mod illinois;
pub mod lp;
pub mod registry;
pub mod reno;
pub mod scalable;
pub mod transport;
pub mod vegas;
pub mod veno;
pub mod westwood;
pub mod yeah;

pub use registry::{AlgorithmId, OsFamily, ALL_IDENTIFIED, ALL_WITH_EXTENSIONS};
pub use transport::{Ack, CongestionControl, LossKind, Transport};

#[cfg(test)]
mod conformance_tests;
