//! TCP-LP (Kuzmanovic & Knightly, INFOCOM'03): low-priority transfer that
//! yields to any competing traffic.
//!
//! Simplified port of `net/ipv4/tcp_lp.c`: RENO growth, plus a one-way
//! delay (here: RTT-proxied) early-congestion detector. When the smoothed
//! delay exceeds `owd_min + 15%·(owd_max − owd_min)` the window is halved;
//! if the condition persists within the inference window the window drops
//! to one packet — LP's "give way" behaviour.
//!
//! Like HYBLA, TCP-LP appears in the paper's Table I but is **excluded from
//! identification** (it targets background bulk transfer, not web serving);
//! it exists here for population completeness.

use crate::reno::reno_ssthresh;
use crate::transport::{Ack, CongestionControl, LossKind, RoundTracker, Transport};

/// Early-congestion threshold: 15% above the minimum delay (`LP_MAX_DELTA`
/// spirit; the kernel uses one-way-delay percentiles).
const THRESHOLD_FRAC: f64 = 0.15;
/// Rounds within which a second detection collapses the window to 1.
const INFERENCE_ROUNDS: u32 = 3;

/// TCP-LP.
#[derive(Debug, Clone)]
pub struct Lp {
    owd_min: f64,
    owd_max: f64,
    sowd: f64,
    rounds: RoundTracker,
    last_detection_round: Option<u64>,
    round_idx: u64,
}

impl Default for Lp {
    fn default() -> Self {
        Self::new()
    }
}

impl Lp {
    /// Creates a TCP-LP controller.
    pub fn new() -> Self {
        Lp {
            owd_min: f64::INFINITY,
            owd_max: 0.0,
            sowd: 0.0,
            rounds: RoundTracker::new(),
            last_detection_round: None,
            round_idx: 0,
        }
    }

    fn congested(&self) -> bool {
        self.owd_min.is_finite()
            && self.owd_max > self.owd_min
            && self.sowd > self.owd_min + THRESHOLD_FRAC * (self.owd_max - self.owd_min)
    }
}

impl CongestionControl for Lp {
    fn name(&self) -> &'static str {
        "LP"
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        if ack.rtt <= 0.0 {
            return;
        }
        if ack.rtt < self.owd_min {
            self.owd_min = ack.rtt;
        }
        if ack.rtt > self.owd_max {
            self.owd_max = ack.rtt;
        }
        if self.sowd == 0.0 {
            self.sowd = ack.rtt;
        } else {
            self.sowd += (ack.rtt - self.sowd) / 8.0;
        }
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        if self.rounds.round_elapsed(tp) {
            self.round_idx += 1;
            if self.congested() {
                match self.last_detection_round {
                    Some(r) if self.round_idx - r <= u64::from(INFERENCE_ROUNDS) => {
                        tp.cwnd = 1; // persistent competition: give way fully
                    }
                    _ => {
                        tp.cwnd = (tp.cwnd / 2).max(1);
                    }
                }
                tp.ssthresh = tp.cwnd.max(2);
                self.last_detection_round = Some(self.round_idx);
                return;
            }
        }
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        tp.cong_avoid_ai(tp.cwnd, acked);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        reno_ssthresh(tp)
    }

    fn on_loss(&mut self, _tp: &mut Transport, kind: LossKind, _now: f64) {
        if kind == LossKind::Timeout {
            self.rounds.reset();
            self.last_detection_round = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Lp, tp: &mut Transport, rtt: f64) {
        let w = tp.cwnd;
        tp.snd_nxt += u64::from(w);
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack {
                now: 0.0,
                acked: 1,
                rtt,
            };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn reno_growth_without_competition() {
        let mut cc = Lp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 50;
        tp.ssthresh = 25;
        for _ in 0..10 {
            one_round(&mut cc, &mut tp, 1.0);
        }
        assert_eq!(tp.cwnd, 60);
    }

    #[test]
    fn yields_when_delay_rises() {
        let mut cc = Lp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for _ in 0..3 {
            one_round(&mut cc, &mut tp, 0.5);
        }
        // Sustained delay inflation: first halve, then collapse to 1.
        for _ in 0..6 {
            one_round(&mut cc, &mut tp, 1.0);
        }
        assert!(tp.cwnd <= 3, "LP must give way, cwnd = {}", tp.cwnd);
    }

    #[test]
    fn beta_is_renos() {
        let mut cc = Lp::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 64;
        assert_eq!(cc.ssthresh(&tp), 32);
    }
}
