//! Algorithm registry: identifiers, construction, and the operating-system
//! inventory behind Table I of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::transport::CongestionControl;

/// All congestion avoidance algorithms this crate implements.
///
/// The first fourteen variants are the algorithms CAAI identifies (§III-A);
/// [`Hybla`](AlgorithmId::Hybla) and [`Lp`](AlgorithmId::Lp) are implemented
/// for completeness but excluded from identification, exactly as the paper
/// excludes them (HYBLA targets satellite links, LP background transfers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AlgorithmId {
    Reno,
    Bic,
    CtcpV1,
    CtcpV2,
    CubicV1,
    CubicV2,
    Hstcp,
    Htcp,
    Illinois,
    Scalable,
    Vegas,
    Veno,
    WestwoodPlus,
    Yeah,
    Hybla,
    Lp,
}

/// The 14 algorithms CAAI identifies, in the order the paper lists them.
pub const ALL_IDENTIFIED: [AlgorithmId; 14] = [
    AlgorithmId::Reno,
    AlgorithmId::Bic,
    AlgorithmId::CtcpV1,
    AlgorithmId::CtcpV2,
    AlgorithmId::CubicV1,
    AlgorithmId::CubicV2,
    AlgorithmId::Hstcp,
    AlgorithmId::Htcp,
    AlgorithmId::Illinois,
    AlgorithmId::Scalable,
    AlgorithmId::Vegas,
    AlgorithmId::Veno,
    AlgorithmId::WestwoodPlus,
    AlgorithmId::Yeah,
];

/// All implemented algorithms including the two non-identified extensions.
pub const ALL_WITH_EXTENSIONS: [AlgorithmId; 16] = [
    AlgorithmId::Reno,
    AlgorithmId::Bic,
    AlgorithmId::CtcpV1,
    AlgorithmId::CtcpV2,
    AlgorithmId::CubicV1,
    AlgorithmId::CubicV2,
    AlgorithmId::Hstcp,
    AlgorithmId::Htcp,
    AlgorithmId::Illinois,
    AlgorithmId::Scalable,
    AlgorithmId::Vegas,
    AlgorithmId::Veno,
    AlgorithmId::WestwoodPlus,
    AlgorithmId::Yeah,
    AlgorithmId::Hybla,
    AlgorithmId::Lp,
];

impl AlgorithmId {
    /// Constructs a fresh congestion controller for this algorithm.
    pub fn build(self) -> Box<dyn CongestionControl> {
        match self {
            AlgorithmId::Reno => Box::new(crate::reno::Reno::new()),
            AlgorithmId::Bic => Box::new(crate::bic::Bic::new()),
            AlgorithmId::CtcpV1 => Box::new(crate::ctcp::Ctcp::v1()),
            AlgorithmId::CtcpV2 => Box::new(crate::ctcp::Ctcp::v2()),
            AlgorithmId::CubicV1 => Box::new(crate::cubic::Cubic::v1()),
            AlgorithmId::CubicV2 => Box::new(crate::cubic::Cubic::v2()),
            AlgorithmId::Hstcp => Box::new(crate::hstcp::Hstcp::new()),
            AlgorithmId::Htcp => Box::new(crate::htcp::Htcp::new()),
            AlgorithmId::Illinois => Box::new(crate::illinois::Illinois::new()),
            AlgorithmId::Scalable => Box::new(crate::scalable::Scalable::new()),
            AlgorithmId::Vegas => Box::new(crate::vegas::Vegas::new()),
            AlgorithmId::Veno => Box::new(crate::veno::Veno::new()),
            AlgorithmId::WestwoodPlus => Box::new(crate::westwood::WestwoodPlus::new()),
            AlgorithmId::Yeah => Box::new(crate::yeah::Yeah::new()),
            AlgorithmId::Hybla => Box::new(crate::hybla::Hybla::new()),
            AlgorithmId::Lp => Box::new(crate::lp::Lp::new()),
        }
    }

    /// Short stable display name matching the paper's notation
    /// (`CTCP_v1`/`CTCP_v2` stand for the paper's CTCP' and CTCP'').
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmId::Reno => "RENO",
            AlgorithmId::Bic => "BIC",
            AlgorithmId::CtcpV1 => "CTCP_v1",
            AlgorithmId::CtcpV2 => "CTCP_v2",
            AlgorithmId::CubicV1 => "CUBIC_v1",
            AlgorithmId::CubicV2 => "CUBIC_v2",
            AlgorithmId::Hstcp => "HSTCP",
            AlgorithmId::Htcp => "HTCP",
            AlgorithmId::Illinois => "ILLINOIS",
            AlgorithmId::Scalable => "STCP",
            AlgorithmId::Vegas => "VEGAS",
            AlgorithmId::Veno => "VENO",
            AlgorithmId::WestwoodPlus => "WESTWOOD+",
            AlgorithmId::Yeah => "YEAH",
            AlgorithmId::Hybla => "HYBLA",
            AlgorithmId::Lp => "LP",
        }
    }

    /// Whether CAAI's classifier includes this algorithm (§III-A excludes
    /// HYBLA and LP).
    pub fn is_identified(self) -> bool {
        !matches!(self, AlgorithmId::Hybla | AlgorithmId::Lp)
    }

    /// Operating-system families shipping this algorithm (Table I).
    pub fn os_families(self) -> &'static [OsFamily] {
        match self {
            AlgorithmId::Reno => &[OsFamily::Windows, OsFamily::Linux],
            AlgorithmId::CtcpV1 | AlgorithmId::CtcpV2 => &[OsFamily::Windows],
            _ => &[OsFamily::Linux],
        }
    }

    /// True when this algorithm ships as the *default* of some operating
    /// system release in its family (RENO, BIC, CUBIC, CTCP).
    pub fn is_os_default(self) -> bool {
        matches!(
            self,
            AlgorithmId::Reno
                | AlgorithmId::Bic
                | AlgorithmId::CubicV1
                | AlgorithmId::CubicV2
                | AlgorithmId::CtcpV1
                | AlgorithmId::CtcpV2
        )
    }

    /// Coarse algorithm family, merging versioned variants: used when
    /// reporting census results ("BIC or CUBIC", "CTCP").
    pub fn family_name(self) -> &'static str {
        match self {
            AlgorithmId::CtcpV1 | AlgorithmId::CtcpV2 => "CTCP",
            AlgorithmId::CubicV1 | AlgorithmId::CubicV2 => "CUBIC",
            other => other.name(),
        }
    }
}

impl fmt::Display for AlgorithmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown algorithm name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAlgorithmError(String);

impl fmt::Display for ParseAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown TCP algorithm name `{}`", self.0)
    }
}

impl std::error::Error for ParseAlgorithmError {}

impl FromStr for AlgorithmId {
    type Err = ParseAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let canon = s.trim().to_ascii_uppercase().replace('-', "_");
        Ok(match canon.as_str() {
            "RENO" | "NEWRENO" => AlgorithmId::Reno,
            "BIC" => AlgorithmId::Bic,
            "CTCP_V1" | "CTCP1" => AlgorithmId::CtcpV1,
            "CTCP_V2" | "CTCP2" | "CTCP" => AlgorithmId::CtcpV2,
            "CUBIC_V1" | "CUBIC1" => AlgorithmId::CubicV1,
            "CUBIC_V2" | "CUBIC2" | "CUBIC" => AlgorithmId::CubicV2,
            "HSTCP" | "HIGHSPEED" => AlgorithmId::Hstcp,
            "HTCP" | "H_TCP" => AlgorithmId::Htcp,
            "ILLINOIS" => AlgorithmId::Illinois,
            "STCP" | "SCALABLE" => AlgorithmId::Scalable,
            "VEGAS" => AlgorithmId::Vegas,
            "VENO" => AlgorithmId::Veno,
            "WESTWOOD+" | "WESTWOOD" | "WESTWOODPLUS" => AlgorithmId::WestwoodPlus,
            "YEAH" | "YEAH_TCP" => AlgorithmId::Yeah,
            "HYBLA" => AlgorithmId::Hybla,
            "LP" | "TCP_LP" => AlgorithmId::Lp,
            _ => return Err(ParseAlgorithmError(s.to_owned())),
        })
    }
}

/// Major operating system family (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OsFamily {
    /// Windows XP / Vista / 7 / Server 2003 / Server 2008.
    Windows,
    /// RedHat, Fedora, Debian, Ubuntu, SuSE, ... (kernel 2.6.x era).
    Linux,
}

impl fmt::Display for OsFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OsFamily::Windows => "Windows",
            OsFamily::Linux => "Linux",
        })
    }
}

/// One row of the Table I inventory: which algorithms a family ships and
/// which one is the default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsInventoryRow {
    /// The operating system family.
    pub family: OsFamily,
    /// Default algorithm(s) across releases of the family.
    pub defaults: Vec<AlgorithmId>,
    /// All algorithms available in the family.
    pub available: Vec<AlgorithmId>,
}

/// Reconstructs Table I: TCP algorithms available in major OS families.
pub fn os_inventory() -> Vec<OsInventoryRow> {
    let windows = OsInventoryRow {
        family: OsFamily::Windows,
        defaults: vec![AlgorithmId::Reno, AlgorithmId::CtcpV1, AlgorithmId::CtcpV2],
        available: vec![AlgorithmId::Reno, AlgorithmId::CtcpV1, AlgorithmId::CtcpV2],
    };
    let linux = OsInventoryRow {
        family: OsFamily::Linux,
        defaults: vec![
            AlgorithmId::Reno,
            AlgorithmId::Bic,
            AlgorithmId::CubicV1,
            AlgorithmId::CubicV2,
        ],
        available: ALL_WITH_EXTENSIONS
            .iter()
            .copied()
            .filter(|a| a.os_families().contains(&OsFamily::Linux))
            .collect(),
    };
    vec![windows, linux]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_identified_algorithms() {
        assert_eq!(ALL_IDENTIFIED.len(), 14);
        assert!(ALL_IDENTIFIED.iter().all(|a| a.is_identified()));
    }

    #[test]
    fn extensions_are_not_identified() {
        assert!(!AlgorithmId::Hybla.is_identified());
        assert!(!AlgorithmId::Lp.is_identified());
    }

    #[test]
    fn build_constructs_every_algorithm() {
        for id in ALL_WITH_EXTENSIONS {
            let cc = id.build();
            assert!(!cc.name().is_empty(), "{id:?} must have a name");
        }
    }

    #[test]
    fn names_round_trip_through_parsing() {
        for id in ALL_WITH_EXTENSIONS {
            let parsed: AlgorithmId = id.name().parse().expect("parse own name");
            assert_eq!(parsed, id);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        assert!("FAST".parse::<AlgorithmId>().is_err());
        assert!("".parse::<AlgorithmId>().is_err());
    }

    #[test]
    fn ctcp_belongs_to_windows_only() {
        assert_eq!(AlgorithmId::CtcpV1.os_families(), &[OsFamily::Windows]);
        assert_eq!(AlgorithmId::CubicV2.os_families(), &[OsFamily::Linux]);
        assert!(AlgorithmId::Reno.os_families().len() == 2);
    }

    #[test]
    fn os_inventory_matches_table_one_shape() {
        let rows = os_inventory();
        assert_eq!(rows.len(), 2);
        let linux = rows.iter().find(|r| r.family == OsFamily::Linux).unwrap();
        // Linux family ships everything but CTCP.
        assert!(linux.available.contains(&AlgorithmId::Hybla));
        assert!(!linux.available.contains(&AlgorithmId::CtcpV1));
        let win = rows.iter().find(|r| r.family == OsFamily::Windows).unwrap();
        assert!(win.available.contains(&AlgorithmId::CtcpV2));
    }

    #[test]
    fn family_names_merge_versions() {
        assert_eq!(AlgorithmId::CtcpV1.family_name(), "CTCP");
        assert_eq!(AlgorithmId::CtcpV2.family_name(), "CTCP");
        assert_eq!(AlgorithmId::CubicV1.family_name(), "CUBIC");
        assert_eq!(AlgorithmId::Reno.family_name(), "RENO");
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AlgorithmId::WestwoodPlus.to_string(), "WESTWOOD+");
        assert_eq!(format!("{}", AlgorithmId::CtcpV1), "CTCP_v1");
    }
}
