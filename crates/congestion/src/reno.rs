//! RENO: the traditional AIMD congestion avoidance algorithm (Jacobson '88,
//! RFC 5681). The paper uses "RENO" for the congestion avoidance component
//! shared by Reno, NewReno and SACK.
//!
//! Window growth function: `w(n) = w(0) + n` (one packet per RTT).
//! Multiplicative decrease parameter: `β = 0.5`.

use crate::transport::{Ack, CongestionControl, Transport};

/// The standard Additive-Increase-Multiplicative-Decrease algorithm.
#[derive(Debug, Clone, Default)]
pub struct Reno {
    _private: (),
}

impl Reno {
    /// Creates a RENO controller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "RENO"
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        tp.cong_avoid_ai(tp.cwnd, acked);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        (tp.cwnd / 2).max(2)
    }
}

/// RENO's ssthresh rule, exported because several delay-based algorithms
/// (VEGAS, WESTWOOD+ fallback paths) reuse it, exactly as Linux modules
/// reuse `tcp_reno_ssthresh`.
pub fn reno_ssthresh(tp: &Transport) -> u32 {
    (tp.cwnd / 2).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;

    fn drive_one_round(cc: &mut Reno, tp: &mut Transport, rtt: f64, now: f64) {
        let w = tp.cwnd;
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn linear_growth_in_congestion_avoidance() {
        let mut cc = Reno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..10 {
            drive_one_round(&mut cc, &mut tp, 1.0, round as f64);
        }
        assert_eq!(tp.cwnd, 110, "one packet per RTT over ten RTTs");
    }

    #[test]
    fn beta_is_half() {
        let mut cc = Reno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        assert_eq!(cc.ssthresh(&tp), 256);
        tp.cwnd = 3;
        assert_eq!(cc.ssthresh(&tp), 2, "floor of 2 packets");
    }

    #[test]
    fn slow_start_then_avoidance_transition() {
        let mut cc = Reno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 4;
        tp.ssthresh = 8;
        // 4 ACKs double to 8, which hits ssthresh; the leftover ACKed
        // packets spill into linear growth.
        for _ in 0..4 {
            let ack = Ack {
                now: 0.0,
                acked: 1,
                rtt: 1.0,
            };
            cc.cong_avoid(&mut tp, &ack);
        }
        assert_eq!(tp.cwnd, 8);
        assert!(!tp.in_slow_start());
    }

    #[test]
    fn aggregate_ack_spills_from_slow_start_into_avoidance() {
        let mut cc = Reno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 6;
        tp.ssthresh = 8;
        let ack = Ack {
            now: 0.0,
            acked: 10,
            rtt: 1.0,
        };
        cc.cong_avoid(&mut tp, &ack);
        // 2 packets consumed reaching ssthresh=8, remaining 8 accumulate
        // toward linear growth: 8 >= w(8) adds exactly one packet.
        assert_eq!(tp.cwnd, 9);
    }
}
