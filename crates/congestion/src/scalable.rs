//! Scalable TCP — the paper's STCP (Kelly, CCR'03).
//!
//! Port of `net/ipv4/tcp_scalable.c`: the window grows by one packet per
//! `min(cwnd, 50)` ACKs — i.e. multiplicatively, by 2% per RTT once the
//! window exceeds 50 packets (the paper's "exponential window growth
//! function") — and shrinks by 1/8 on loss (`β = 0.875`).

use crate::transport::{Ack, CongestionControl, Transport};

/// `TCP_SCALABLE_AI_CNT`: ACKs per one-packet increment.
const AI_CNT: u32 = 50;
/// `TCP_SCALABLE_MD_SCALE`: decrease is `cwnd >> 3`.
const MD_SHIFT: u32 = 3;

/// Scalable TCP.
#[derive(Debug, Clone, Default)]
pub struct Scalable {
    _private: (),
}

impl Scalable {
    /// Creates a Scalable TCP controller.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CongestionControl for Scalable {
    fn name(&self) -> &'static str {
        "STCP"
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        tp.cong_avoid_ai(tp.cwnd.min(AI_CNT), acked);
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        (tp.cwnd - (tp.cwnd >> MD_SHIFT)).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Scalable, tp: &mut Transport) {
        let w = tp.cwnd;
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack {
                now: 0.0,
                acked: 1,
                rtt: 1.0,
            };
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn beta_is_seven_eighths() {
        let mut cc = Scalable::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        assert_eq!(cc.ssthresh(&tp), 448);
    }

    #[test]
    fn growth_is_two_percent_per_rtt_at_large_windows() {
        let mut cc = Scalable::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 500;
        tp.ssthresh = 250;
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp);
        assert_eq!(tp.cwnd - before, before / AI_CNT);
    }

    #[test]
    fn growth_compounds_exponentially() {
        let mut cc = Scalable::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for _ in 0..35 {
            one_round(&mut cc, &mut tp);
        }
        // 1.02^35 ≈ 2.0: the window should have doubled.
        assert!(
            (195..=210).contains(&tp.cwnd),
            "2%-per-RTT compounding expected ≈200, got {}",
            tp.cwnd
        );
    }

    #[test]
    fn reno_like_below_ai_cnt() {
        let mut cc = Scalable::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 20;
        tp.ssthresh = 10;
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp);
        assert_eq!(tp.cwnd - before, 1, "below 50 packets growth is +1/RTT");
    }
}
