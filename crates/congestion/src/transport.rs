//! Shared sender-side transport state and the [`CongestionControl`] trait.
//!
//! The [`Transport`] struct mirrors the handful of `tcp_sock` fields that
//! Linux congestion control modules read and write (`snd_cwnd`,
//! `snd_ssthresh`, `snd_cwnd_cnt`, `snd_cwnd_clamp`, `snd_una`, `snd_nxt`),
//! plus the RTT estimates every delay-based algorithm consumes. Windows
//! sizes are counted in **packets** (maximum-segment-size units), exactly
//! the unit in which CAAI measures window traces.

use std::fmt;

/// Initial slow-start threshold: effectively infinite, as in Linux
/// (`TCP_INFINITE_SSTHRESH`). A fresh connection is in slow start until the
/// first loss establishes a real threshold.
pub const INFINITE_SSTHRESH: u32 = 0x7fff_ffff;

/// Sender-side transport state shared between the host TCP machinery (the
/// `caai-tcpsim` crate) and the pluggable congestion avoidance module.
#[derive(Debug, Clone, PartialEq)]
pub struct Transport {
    /// Congestion window in packets (`snd_cwnd`).
    pub cwnd: u32,
    /// Slow start threshold in packets (`snd_ssthresh`).
    pub ssthresh: u32,
    /// Linear-increase accumulator (`snd_cwnd_cnt`): counts ACKed packets
    /// toward the next one-packet window increment.
    pub cwnd_cnt: u32,
    /// Hard upper bound on the window (`snd_cwnd_clamp`), used to model
    /// send-buffer-limited servers ("Bounded Window" servers in §VII-B).
    pub cwnd_clamp: u32,
    /// Highest cumulatively ACKed sequence number, in packets (`snd_una`).
    pub snd_una: u64,
    /// Next sequence number to be sent, in packets (`snd_nxt`).
    pub snd_nxt: u64,
    /// Maximum segment size in bytes. The congestion avoidance algorithms
    /// themselves are MSS-agnostic (they count packets), but bandwidth-based
    /// algorithms (WESTWOOD+) need it to convert estimates.
    pub mss: u32,
    /// Limited-slow-start knob (RFC 3742; Linux `sysctl_tcp_max_ssthresh`):
    /// past this window, slow start grows by at most `max_ssthresh / 2`
    /// packets per RTT instead of doubling. `0` disables the limit
    /// (standard slow start).
    pub max_ssthresh: u32,
    /// Smoothed RTT estimate in seconds (EWMA with gain 1/8, RFC 6298).
    pub srtt: f64,
    /// Minimum RTT observed over the whole connection, in seconds.
    pub min_rtt: f64,
}

impl Transport {
    /// Creates transport state for a fresh connection with the given MSS.
    ///
    /// The initial window is 2 packets (RFC 2581; the CAAI paper notes the
    /// initial window does not affect identification, §V-A) and the
    /// slow-start threshold is infinite.
    pub fn new(mss: u32) -> Self {
        Transport {
            cwnd: 2,
            ssthresh: INFINITE_SSTHRESH,
            cwnd_cnt: 0,
            cwnd_clamp: u32::MAX,
            snd_una: 0,
            snd_nxt: 0,
            mss,
            max_ssthresh: 0,
            srtt: 0.0,
            min_rtt: f64::INFINITY,
        }
    }

    /// True while the connection is in the slow start state
    /// (`tcp_in_slow_start`: `snd_cwnd < snd_ssthresh`).
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Slow start (Linux `tcp_slow_start`): grow the window by one packet
    /// per newly ACKed packet, up to `ssthresh`. Returns the number of
    /// ACKed packets left over after reaching `ssthresh`, which the caller
    /// should feed to the congestion avoidance growth rule.
    ///
    /// When [`max_ssthresh`](Self::max_ssthresh) is set and the window has
    /// passed it, growth switches to **limited slow start** (RFC 3742):
    /// at most `max_ssthresh / 2` packets per RTT, via the same
    /// `snd_cwnd_cnt` accumulator Linux uses.
    pub fn slow_start(&mut self, acked: u32) -> u32 {
        if self.max_ssthresh > 0 && self.cwnd > self.max_ssthresh {
            let ceiling = self.ssthresh.min(self.cwnd_clamp);
            let cnt = (self.max_ssthresh / 2).max(1);
            self.cwnd_cnt = self.cwnd_cnt.saturating_add(cnt.saturating_mul(acked));
            while self.cwnd_cnt >= self.cwnd && self.cwnd < ceiling {
                self.cwnd_cnt -= self.cwnd;
                self.cwnd += 1;
            }
            if self.cwnd >= self.ssthresh {
                self.cwnd_cnt = 0;
            }
            return 0;
        }
        let target = self.cwnd.saturating_add(acked).min(self.ssthresh);
        let used = target - self.cwnd;
        self.cwnd = target.min(self.cwnd_clamp);
        acked - used
    }

    /// Linear window growth (Linux `tcp_cong_avoid_ai`): the window grows by
    /// one packet for every `w` ACKed packets, i.e. by `cwnd/w` packets per
    /// RTT. `w == cwnd` yields RENO's one-packet-per-RTT growth.
    pub fn cong_avoid_ai(&mut self, w: u32, acked: u32) {
        let w = w.max(1);
        if self.cwnd_cnt >= w {
            self.cwnd_cnt = 0;
            self.cwnd += 1;
        }
        self.cwnd_cnt += acked;
        if self.cwnd_cnt >= w {
            let delta = self.cwnd_cnt / w;
            self.cwnd_cnt -= delta * w;
            self.cwnd += delta;
        }
        self.cwnd = self.cwnd.min(self.cwnd_clamp);
    }

    /// Records an RTT sample into the smoothed estimate and the connection
    /// minimum (RFC 6298 smoothing with gain 1/8).
    pub fn observe_rtt(&mut self, rtt: f64) {
        if rtt <= 0.0 {
            return;
        }
        if self.srtt == 0.0 {
            self.srtt = rtt;
        } else {
            self.srtt += (rtt - self.srtt) / 8.0;
        }
        if rtt < self.min_rtt {
            self.min_rtt = rtt;
        }
    }
}

/// A cumulative acknowledgement delivered to the congestion controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ack {
    /// Simulation time at which the ACK arrived, in seconds.
    pub now: f64,
    /// Number of packets newly acknowledged by this ACK (>1 when a previous
    /// ACK was lost on the reverse path and this one covers its range too).
    pub acked: u32,
    /// RTT sample carried by this ACK, in seconds (send-to-ACK delay of the
    /// most recently acknowledged packet).
    pub rtt: f64,
}

/// The kind of loss event being signalled to the congestion controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossKind {
    /// Retransmission timeout (the event CAAI emulates; §IV-B explains why
    /// CAAI prefers timeouts over triple-duplicate-ACK loss events).
    Timeout,
    /// Fast retransmit after three duplicate ACKs.
    FastRetransmit,
}

/// A pluggable TCP congestion avoidance algorithm.
///
/// The host transport calls, per received cumulative ACK and in this order:
/// [`pkts_acked`](CongestionControl::pkts_acked) (RTT bookkeeping) then
/// [`cong_avoid`](CongestionControl::cong_avoid) (window growth, both slow
/// start and congestion avoidance, mirroring Linux `cong_avoid` hooks). On a
/// loss event it calls [`ssthresh`](CongestionControl::ssthresh) to obtain
/// the new slow-start threshold — this is where the multiplicative decrease
/// parameter β that CAAI extracts lives — followed by
/// [`on_loss`](CongestionControl::on_loss) so the module can reset its
/// internal epoch state.
///
/// This trait is object-safe; algorithm selection happens at runtime via
/// [`AlgorithmId::build`](crate::AlgorithmId::build).
pub trait CongestionControl: fmt::Debug + Send {
    /// Short stable name of the algorithm (e.g. `"CUBIC_v2"`).
    fn name(&self) -> &'static str;

    /// Called once when the connection is established.
    fn init(&mut self, tp: &mut Transport) {
        let _ = tp;
    }

    /// Per-ACK measurement hook (Linux `pkts_acked`): delay-based algorithms
    /// sample RTTs here. Called before [`cong_avoid`](Self::cong_avoid).
    fn pkts_acked(&mut self, tp: &mut Transport, ack: &Ack) {
        let _ = (tp, ack);
    }

    /// Per-ACK window growth (Linux `cong_avoid`): covers both slow start
    /// and congestion avoidance, since several algorithms (VEGAS, YEAH)
    /// modify slow start behaviour.
    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack);

    /// The slow start threshold to adopt on a loss event: `β · cwnd` for a
    /// multiplicative-decrease parameter β. This is CAAI's Feature 1.
    fn ssthresh(&mut self, tp: &Transport) -> u32;

    /// Loss-event notification, delivered after [`ssthresh`](Self::ssthresh)
    /// has been applied; used to reset epoch state (growth-function clocks,
    /// bandwidth filters, round trackers).
    fn on_loss(&mut self, tp: &mut Transport, kind: LossKind, now: f64) {
        let _ = (tp, kind, now);
    }
}

/// Detects RTT round boundaries from cumulative ACK progress, the way Linux
/// delay-based modules do (VEGAS: "one pass per RTT" via `beg_snd_nxt`).
///
/// A round ends when `snd_una` passes the `snd_nxt` recorded at the start of
/// the round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundTracker {
    beg_snd_nxt: u64,
}

impl RoundTracker {
    /// Creates a tracker that will report its first round boundary once the
    /// currently outstanding data is acknowledged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns true exactly once per RTT round, and arms the next round.
    pub fn round_elapsed(&mut self, tp: &Transport) -> bool {
        if tp.snd_una >= self.beg_snd_nxt {
            self.beg_snd_nxt = tp.snd_nxt;
            true
        } else {
            false
        }
    }

    /// Forget round progress (used after timeouts).
    pub fn reset(&mut self) {
        self.beg_snd_nxt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_transport_is_in_slow_start() {
        let tp = Transport::new(1460);
        assert!(tp.in_slow_start());
        assert_eq!(tp.cwnd, 2);
        assert_eq!(tp.ssthresh, INFINITE_SSTHRESH);
    }

    #[test]
    fn slow_start_doubles_per_round() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 8;
        // ACKing 8 packets one at a time doubles the window.
        for _ in 0..8 {
            let left = tp.slow_start(1);
            assert_eq!(left, 0);
        }
        assert_eq!(tp.cwnd, 16);
    }

    #[test]
    fn limited_slow_start_caps_per_rtt_growth() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.max_ssthresh = 50;
        // One RTT: 100 ACKs of one packet each. RFC 3742 allows about
        // max_ssthresh/2 = 25 new packets instead of doubling (slightly
        // less here because the divisor grows as the window grows
        // mid-round, exactly as in Linux's accumulator).
        for _ in 0..100 {
            let left = tp.slow_start(1);
            assert_eq!(left, 0, "limited slow start consumes all ACKs");
        }
        assert!((118..=126).contains(&tp.cwnd), "cwnd {} ≈ 122", tp.cwnd);
    }

    #[test]
    fn limited_slow_start_inactive_below_the_knob() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 8;
        tp.max_ssthresh = 50;
        for _ in 0..8 {
            tp.slow_start(1);
        }
        assert_eq!(tp.cwnd, 16, "doubling still applies below max_ssthresh");
    }

    #[test]
    fn limited_slow_start_respects_ssthresh_ceiling() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.max_ssthresh = 50;
        tp.ssthresh = 110;
        for _ in 0..400 {
            tp.slow_start(1);
        }
        assert_eq!(tp.cwnd, 110, "growth stops at ssthresh");
        assert_eq!(tp.cwnd_cnt, 0, "accumulator cleared at slow-start exit");
    }

    #[test]
    fn slow_start_stops_at_ssthresh_and_returns_leftover() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 10;
        tp.ssthresh = 12;
        let left = tp.slow_start(5);
        assert_eq!(tp.cwnd, 12);
        assert_eq!(left, 3);
    }

    #[test]
    fn cong_avoid_ai_grows_one_packet_per_window() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 10;
        tp.ssthresh = 5;
        for _ in 0..10 {
            tp.cong_avoid_ai(10, 1);
        }
        assert_eq!(tp.cwnd, 11);
    }

    #[test]
    fn cong_avoid_ai_handles_aggregate_acks() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 4;
        tp.ssthresh = 2;
        // One ACK covering 8 packets grows the window by 8/4 = 2.
        tp.cong_avoid_ai(4, 8);
        assert_eq!(tp.cwnd, 6);
    }

    #[test]
    fn cong_avoid_ai_respects_clamp() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 10;
        tp.cwnd_clamp = 10;
        for _ in 0..100 {
            tp.cong_avoid_ai(10, 1);
        }
        assert_eq!(tp.cwnd, 10);
    }

    #[test]
    fn slow_start_respects_clamp() {
        let mut tp = Transport::new(1460);
        tp.cwnd = 10;
        tp.cwnd_clamp = 12;
        tp.slow_start(10);
        assert_eq!(tp.cwnd, 12);
    }

    #[test]
    fn observe_rtt_tracks_minimum_and_smooths() {
        let mut tp = Transport::new(1460);
        tp.observe_rtt(1.0);
        assert_eq!(tp.srtt, 1.0);
        assert_eq!(tp.min_rtt, 1.0);
        tp.observe_rtt(0.8);
        assert!(tp.srtt < 1.0 && tp.srtt > 0.8);
        assert_eq!(tp.min_rtt, 0.8);
        tp.observe_rtt(2.0);
        assert_eq!(tp.min_rtt, 0.8);
    }

    #[test]
    fn observe_rtt_ignores_nonpositive_samples() {
        let mut tp = Transport::new(1460);
        tp.observe_rtt(-1.0);
        tp.observe_rtt(0.0);
        assert_eq!(tp.srtt, 0.0);
        assert!(tp.min_rtt.is_infinite());
    }

    #[test]
    fn round_tracker_fires_once_per_round() {
        let mut tp = Transport::new(1460);
        let mut rt = RoundTracker::new();
        tp.snd_nxt = 10;
        tp.snd_una = 0;
        assert!(rt.round_elapsed(&tp)); // first call arms the tracker
        tp.snd_una = 5;
        assert!(!rt.round_elapsed(&tp));
        tp.snd_una = 10;
        tp.snd_nxt = 30;
        assert!(rt.round_elapsed(&tp));
        assert!(!rt.round_elapsed(&tp));
    }
}
