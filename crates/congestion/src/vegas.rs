//! TCP Vegas (Brakmo, O'Malley, Peterson, SIGCOMM'94): pure delay-based
//! congestion avoidance.
//!
//! Port of `net/ipv4/tcp_vegas.c`. Once per RTT the backlog estimate
//! `diff = cwnd·(rtt − baseRTT)/rtt` steers the window: grow by one if
//! `diff < α (=2)`, shrink by one if `diff > β (=4)`, hold otherwise. Slow
//! start is left early once `diff > γ (=1)`. Loss falls back to RENO's
//! halving.
//!
//! Vegas is the algorithm for which the paper's feature-vector element
//! `I(w^B_max ≥ 64)` exists: in environment B the RTT step makes Vegas
//! plateau long before 64 packets (Fig. 3(k)), so CAAI never observes a
//! timeout there, while in environment A Vegas traces exactly like RENO.

use crate::reno::reno_ssthresh;
use crate::transport::{Ack, CongestionControl, LossKind, RoundTracker, Transport};

/// Lower backlog bound `α` (packets).
const ALPHA: f64 = 2.0;
/// Upper backlog bound `β` (packets).
const BETA: f64 = 4.0;
/// Slow-start exit backlog `γ` (packets).
const GAMMA: f64 = 1.0;

/// TCP Vegas.
#[derive(Debug, Clone)]
pub struct Vegas {
    base_rtt: f64,
    /// Minimum RTT seen during the current round.
    min_rtt: f64,
    cnt_rtt: u32,
    rounds: RoundTracker,
    enabled: bool,
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl Vegas {
    /// Creates a Vegas controller with kernel-default parameters.
    pub fn new() -> Self {
        Vegas {
            base_rtt: f64::INFINITY,
            min_rtt: f64::INFINITY,
            cnt_rtt: 0,
            rounds: RoundTracker::new(),
            enabled: true,
        }
    }

    fn round_reset(&mut self) {
        self.min_rtt = f64::INFINITY;
        self.cnt_rtt = 0;
    }
}

impl CongestionControl for Vegas {
    fn name(&self) -> &'static str {
        "VEGAS"
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        if ack.rtt <= 0.0 {
            return;
        }
        if ack.rtt < self.base_rtt {
            self.base_rtt = ack.rtt;
        }
        if ack.rtt < self.min_rtt {
            self.min_rtt = ack.rtt;
        }
        self.cnt_rtt += 1;
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        if !self.enabled {
            // After a timeout Linux Vegas runs RENO until re-enabled by the
            // next established round; we model the common path: re-enable on
            // the first ACK of recovery.
            self.enabled = true;
        }
        if !self.rounds.round_elapsed(tp) {
            // Mid-round: only slow-start growth happens per ACK.
            if tp.in_slow_start() {
                tp.slow_start(ack.acked);
            }
            return;
        }
        // A full RTT of samples is available: do the Vegas estimate.
        if self.cnt_rtt <= 2 || !self.base_rtt.is_finite() || !self.min_rtt.is_finite() {
            // Not enough samples: behave like RENO this round.
            let mut acked = ack.acked;
            if tp.in_slow_start() {
                acked = tp.slow_start(acked);
            }
            if acked > 0 {
                tp.cong_avoid_ai(tp.cwnd, acked);
            }
            self.round_reset();
            return;
        }
        let rtt = self.min_rtt;
        let diff = f64::from(tp.cwnd) * (rtt - self.base_rtt) / rtt;
        if diff > GAMMA && tp.in_slow_start() {
            // Early slow-start exit: clamp to the target and leave.
            let target = (f64::from(tp.cwnd) * self.base_rtt / rtt) as u32;
            tp.cwnd = tp.cwnd.min(target + 1);
            tp.ssthresh = tp.ssthresh.min(tp.cwnd.saturating_sub(1).max(2));
        } else if tp.in_slow_start() {
            tp.slow_start(ack.acked);
        } else if diff > BETA {
            tp.cwnd = tp.cwnd.saturating_sub(1).max(2);
            tp.ssthresh = tp.ssthresh.min(tp.cwnd.saturating_sub(1).max(2));
        } else if diff < ALPHA {
            tp.cwnd = (tp.cwnd + 1).min(tp.cwnd_clamp);
        }
        tp.cwnd = tp.cwnd.max(2);
        self.round_reset();
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        reno_ssthresh(tp)
    }

    fn on_loss(&mut self, _tp: &mut Transport, kind: LossKind, _now: f64) {
        if kind == LossKind::Timeout {
            self.rounds.reset();
            self.round_reset();
            // baseRTT persists across the timeout: the propagation delay of
            // the path did not change.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Vegas, tp: &mut Transport, now: f64, rtt: f64) {
        let w = tp.cwnd;
        tp.snd_nxt += u64::from(w);
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn reno_like_growth_on_fixed_rtt() {
        // Environment A's fingerprint: with rtt == baseRTT the backlog is
        // zero and Vegas adds one packet per RTT, indistinguishable from
        // RENO (§IV-B: "RENO and VEGAS have the same trace in network
        // environment A").
        let mut cc = Vegas::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..10 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!((108..=110).contains(&tp.cwnd), "got {}", tp.cwnd);
    }

    #[test]
    fn plateaus_when_rtt_rises() {
        // Environment B's fingerprint: the RTT steps 0.8 → 1.0 early in
        // the post-timeout recovery (round 3, §IV-B), while the window is
        // still small. The γ-exit then caps slow start low and the β-rule
        // drains toward the ~α·rtt/(rtt−baseRTT) ≈ 20-packet backlog
        // target, so Vegas never reaches 64 packets — the trace shape
        // behind the paper's I(w^B_max ≥ 64) feature (Fig. 3(k)).
        let mut cc = Vegas::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 2; // recovery restarts from the bottom
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        for round in 3..30 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
            assert!(
                tp.cwnd < 64,
                "Vegas must plateau below 64 packets under a 25% RTT \
                 inflation, got {} at round {round}",
                tp.cwnd
            );
        }
        assert!(!tp.in_slow_start(), "the γ-exit must have fired");
    }

    #[test]
    fn early_slow_start_exit_under_queueing() {
        let mut cc = Vegas::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 32; // deep in slow start
        for round in 0..2 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        let ss_before = tp.ssthresh;
        for round in 2..5 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!(
            tp.ssthresh < ss_before,
            "γ-triggered exit must cap ssthresh"
        );
        assert!(!tp.in_slow_start());
    }

    #[test]
    fn loss_uses_reno_halving() {
        let mut cc = Vegas::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 300;
        assert_eq!(cc.ssthresh(&tp), 150);
    }

    #[test]
    fn window_never_collapses_below_two() {
        let mut cc = Vegas::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 3;
        tp.ssthresh = 2;
        // Huge queueing signal: diff far above β every round.
        for round in 0..10 {
            one_round(&mut cc, &mut tp, round as f64, 0.5 + round as f64);
        }
        assert!(tp.cwnd >= 2);
    }
}
