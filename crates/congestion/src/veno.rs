//! TCP Veno (Fu & Liew, JSAC'03): RENO with a Vegas-style backlog estimate
//! used to tell random (wireless) loss from congestive loss.
//!
//! Port of `net/ipv4/tcp_veno.c`. Growth: RENO-rate while the estimated
//! backlog `N < β (=3)` packets, half-rate (one packet per two RTTs) when
//! backlogged. Decrease: `ssthresh = 4/5·cwnd` when the loss looks random
//! (`N < β`), RENO's half otherwise — the RTT-dependent multiplicative
//! decrease CAAI's environment B exposes (Fig. 3(l); in environment A the
//! path is queue-free so Veno always picks 0.8, while RENO picks 0.5).

use crate::transport::{Ack, CongestionControl, LossKind, RoundTracker, Transport};

/// Backlog threshold `β` in packets.
const BETA: f64 = 3.0;

/// TCP Veno.
#[derive(Debug, Clone)]
pub struct Veno {
    base_rtt: f64,
    min_rtt: f64,
    cnt_rtt: u32,
    diff: f64,
    inc: bool,
    rounds: RoundTracker,
}

impl Default for Veno {
    fn default() -> Self {
        Self::new()
    }
}

impl Veno {
    /// Creates a Veno controller with kernel-default parameters.
    pub fn new() -> Self {
        Veno {
            base_rtt: f64::INFINITY,
            min_rtt: f64::INFINITY,
            cnt_rtt: 0,
            diff: 0.0,
            inc: true,
            rounds: RoundTracker::new(),
        }
    }

    /// Latest backlog estimate (packets), exposed for tests.
    pub fn backlog(&self) -> f64 {
        self.diff
    }
}

impl CongestionControl for Veno {
    fn name(&self) -> &'static str {
        "VENO"
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        if ack.rtt <= 0.0 {
            return;
        }
        if ack.rtt < self.base_rtt {
            self.base_rtt = ack.rtt;
        }
        if ack.rtt < self.min_rtt {
            self.min_rtt = ack.rtt;
        }
        self.cnt_rtt += 1;
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        // Refresh the backlog estimate once per round.
        if self.rounds.round_elapsed(tp) && self.cnt_rtt > 2 && self.min_rtt.is_finite() {
            let rtt = self.min_rtt;
            self.diff = f64::from(tp.cwnd) * (rtt - self.base_rtt).max(0.0) / rtt;
            self.min_rtt = f64::INFINITY;
            self.cnt_rtt = 0;
        }
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        if self.diff < BETA {
            // Uncongested: RENO growth.
            tp.cong_avoid_ai(tp.cwnd, acked);
        } else {
            // Backlogged: one packet every *two* windows of ACKs
            // (`tcp_veno.c`: increment every other window via the `inc` flag).
            if tp.cwnd_cnt >= tp.cwnd {
                if self.inc && tp.cwnd < tp.cwnd_clamp {
                    tp.cwnd += 1;
                    self.inc = false;
                } else {
                    self.inc = true;
                }
                tp.cwnd_cnt = 0;
            } else {
                tp.cwnd_cnt += acked;
            }
        }
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        if self.diff < BETA {
            // Loss on an empty path: presumed random, mild decrease 4/5.
            (tp.cwnd * 4 / 5).max(2)
        } else {
            (tp.cwnd / 2).max(2)
        }
    }

    fn on_loss(&mut self, _tp: &mut Transport, kind: LossKind, _now: f64) {
        if kind == LossKind::Timeout {
            self.rounds.reset();
            self.min_rtt = f64::INFINITY;
            self.cnt_rtt = 0;
            self.diff = 0.0;
            self.inc = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Veno, tp: &mut Transport, now: f64, rtt: f64) {
        let w = tp.cwnd;
        tp.snd_nxt += u64::from(w);
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn reno_growth_on_empty_path() {
        let mut cc = Veno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..10 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert_eq!(tp.cwnd, 110);
    }

    #[test]
    fn beta_point_eight_on_empty_path() {
        // Environment A's fingerprint: rtt stays at baseRTT, the backlog is
        // zero, so a timeout is treated as random loss → β = 0.8.
        let mut cc = Veno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..4 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        tp.cwnd = 512;
        assert_eq!(cc.ssthresh(&tp), 409);
    }

    #[test]
    fn beta_half_when_backlogged() {
        // Environment B's fingerprint: baseRTT 0.8 then rtt 1.0 → diff =
        // 0.2·w ≥ 3 → congestive loss → β = 0.5 (RENO-like, §IV-B).
        let mut cc = Veno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        for round in 3..6 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!(cc.backlog() >= BETA, "backlog {}", cc.backlog());
        tp.cwnd = 512;
        assert_eq!(cc.ssthresh(&tp), 256);
    }

    #[test]
    fn half_rate_growth_when_backlogged() {
        let mut cc = Veno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        let start = tp.cwnd;
        for round in 3..11 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        let growth = tp.cwnd - start;
        assert!(
            (3..=5).contains(&growth),
            "8 backlogged rounds grow ~4 packets (1 per 2 RTTs), got {growth}"
        );
    }

    #[test]
    fn timeout_clears_the_backlog_estimate() {
        let mut cc = Veno::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 50;
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        one_round(&mut cc, &mut tp, 3.0, 1.0);
        cc.on_loss(&mut tp, LossKind::Timeout, 4.0);
        assert_eq!(cc.backlog(), 0.0);
    }
}
