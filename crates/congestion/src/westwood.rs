//! TCP Westwood+ (Mascolo et al., MobiCom'01): RENO growth with a
//! bandwidth-estimate-based decrease.
//!
//! Port of `net/ipv4/tcp_westwood.c`. The sender low-pass-filters the ACK
//! rate into a bandwidth estimate `bw_est` (double EWMA, gain 1/8, sampled
//! over windows of `max(srtt, 50 ms)`) and on loss sets
//! `ssthresh = bw_est · RTT_min` — the estimated pipe size.
//!
//! Because the double EWMA lags far behind a doubling slow-start window,
//! the post-timeout threshold lands well below half the pre-timeout window;
//! the recovered flow then crawls at RENO rate and never re-approaches the
//! old maximum within CAAI's 18-round observation window. That is exactly
//! why the paper's boundary-RTT search fails for WESTWOOD+ and assigns it
//! `β = 0` (Fig. 3(m), §V-B).

use crate::transport::{Ack, CongestionControl, LossKind, Transport};

/// Minimum bandwidth-sampling window (kernel: 50 ms).
const MIN_SAMPLE_WINDOW: f64 = 0.050;

/// TCP Westwood+.
#[derive(Debug, Clone)]
pub struct WestwoodPlus {
    /// Non-smoothed (first-stage) bandwidth estimate, packets per second.
    bw_ns_est: f64,
    /// Smoothed (second-stage) bandwidth estimate, packets per second.
    bw_est: f64,
    /// Start of the current sampling window.
    rtt_win_sx: f64,
    /// Packets ACKed within the current sampling window.
    bk: f64,
    /// Minimum RTT seen on the connection.
    rtt_min: f64,
    first_sample: bool,
}

impl Default for WestwoodPlus {
    fn default() -> Self {
        Self::new()
    }
}

impl WestwoodPlus {
    /// Creates a Westwood+ controller.
    pub fn new() -> Self {
        WestwoodPlus {
            bw_ns_est: 0.0,
            bw_est: 0.0,
            rtt_win_sx: 0.0,
            bk: 0.0,
            rtt_min: f64::INFINITY,
            first_sample: true,
        }
    }

    /// Current bandwidth estimate in packets per second, for tests.
    pub fn bandwidth_estimate(&self) -> f64 {
        self.bw_est
    }

    /// `westwood_update_window` + `westwood_filter`.
    fn update_window(&mut self, now: f64, srtt: f64) {
        let span = now - self.rtt_win_sx;
        let window = srtt.max(MIN_SAMPLE_WINDOW);
        if span >= window && span > 0.0 {
            let sample = self.bk / span;
            if self.first_sample {
                self.bw_ns_est = sample;
                self.bw_est = sample;
                self.first_sample = false;
            } else {
                self.bw_ns_est = (7.0 * self.bw_ns_est + sample) / 8.0;
                self.bw_est = (7.0 * self.bw_est + self.bw_ns_est) / 8.0;
            }
            self.bk = 0.0;
            self.rtt_win_sx = now;
        }
    }
}

impl CongestionControl for WestwoodPlus {
    fn name(&self) -> &'static str {
        "WESTWOOD+"
    }

    fn init(&mut self, _tp: &mut Transport) {
        *self = WestwoodPlus::new();
    }

    fn pkts_acked(&mut self, tp: &mut Transport, ack: &Ack) {
        if ack.rtt > 0.0 && ack.rtt < self.rtt_min {
            self.rtt_min = ack.rtt;
        }
        self.bk += f64::from(ack.acked);
        let srtt = if tp.srtt > 0.0 { tp.srtt } else { ack.rtt };
        self.update_window(ack.now, srtt);
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        // Pure RENO growth; Westwood+ only changes the decrease.
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
            if acked == 0 {
                return;
            }
        }
        tp.cong_avoid_ai(tp.cwnd, acked);
    }

    fn ssthresh(&mut self, _tp: &Transport) -> u32 {
        // `tcp_westwood_bw_rttmin`: the estimated pipe size in packets.
        if self.rtt_min.is_finite() {
            ((self.bw_est * self.rtt_min) as u32).max(2)
        } else {
            2
        }
    }

    fn on_loss(&mut self, _tp: &mut Transport, _kind: LossKind, now: f64) {
        // Sampling continues across the loss; re-anchor the window so the
        // retransmission gap is not counted as zero-bandwidth time.
        self.rtt_win_sx = now;
        self.bk = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut WestwoodPlus, tp: &mut Transport, now: f64, rtt: f64) {
        let w = tp.cwnd;
        for _ in 0..w {
            tp.snd_una += 1;
            tp.observe_rtt(rtt);
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn bandwidth_estimate_converges_on_steady_flow() {
        let mut cc = WestwoodPlus::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 100;
        tp.ssthresh = 100; // hold in congestion avoidance, near-steady rate
        let mut now = 0.0;
        for _ in 0..60 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
        }
        // Steady ~100 packets per 1 s round → bw ≈ 100 pk/s.
        let bw = cc.bandwidth_estimate();
        assert!(
            (70.0..=170.0).contains(&bw),
            "bw estimate {bw} should approach the real rate ~100-160"
        );
    }

    #[test]
    fn ssthresh_is_pipe_size_not_half_window() {
        let mut cc = WestwoodPlus::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 4;
        tp.ssthresh = 1 << 30;
        let mut now = 0.0;
        // Slow start doubling toward 512: the filter lags behind.
        while tp.cwnd < 512 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
        }
        let ss = cc.ssthresh(&tp);
        assert!(
            ss < tp.cwnd / 2,
            "lagging bw filter must yield ssthresh ({ss}) below half the \
             window ({}) — the source of the paper's β=0 fingerprint",
            tp.cwnd
        );
        assert!(ss >= 2);
    }

    #[test]
    fn estimate_lags_a_doubling_window() {
        let mut cc = WestwoodPlus::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 8;
        tp.ssthresh = 1 << 30;
        let mut now = 0.0;
        for _ in 0..6 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
        }
        // Window reached 512; the double-EWMA estimate must be far behind.
        assert!(tp.cwnd >= 512);
        assert!(
            cc.bandwidth_estimate() < 300.0,
            "bw {}",
            cc.bandwidth_estimate()
        );
    }

    #[test]
    fn ssthresh_floor_without_samples() {
        let mut cc = WestwoodPlus::new();
        let tp = Transport::new(1460);
        assert_eq!(cc.ssthresh(&tp), 2);
    }

    #[test]
    fn growth_is_reno() {
        let mut cc = WestwoodPlus::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 50;
        tp.ssthresh = 25;
        let mut now = 0.0;
        for _ in 0..10 {
            one_round(&mut cc, &mut tp, now, 1.0);
            now += 1.0;
        }
        assert_eq!(tp.cwnd, 60);
    }
}
