//! YeAH-TCP: Yet Another Highspeed TCP (Baiocchi, Castellani, Vacirca,
//! PFLDNet'07).
//!
//! Port of `net/ipv4/tcp_yeah.c`. YeAH alternates between a *fast* mode
//! (Scalable TCP's 2%-per-RTT growth) while the estimated queue stays
//! small, and a *slow* RENO mode plus "precautionary decongestion" when the
//! queue builds. On loss the decrease depends on the last queue estimate
//! (`β ≈ 7/8` on an empty queue, down to 1/2), so — like CTCP v2 — its
//! growth reacts to the post-timeout RTT step of the paper's environment B
//! (Fig. 3(n), §IV-B).

use crate::transport::{Ack, CongestionControl, LossKind, RoundTracker, Transport};

/// `TCP_YEAH_ALPHA`: maximum queue length before decongestion (packets).
const ALPHA: f64 = 80.0;
/// `TCP_YEAH_GAMMA`: fraction (1/γ) of the queue drained per decongestion.
const GAMMA: f64 = 1.0;
/// `TCP_YEAH_DELTA`: log2 of the minimum loss reduction (cwnd/8).
const DELTA: u32 = 3;
/// `TCP_YEAH_EPSILON`: log2 of the maximum decongestion (cwnd/2).
const EPSILON: u32 = 1;
/// `TCP_YEAH_PHY`: RTT inflation ratio (baseRTT/8) that triggers slow mode.
const PHY: f64 = 8.0;
/// `TCP_YEAH_RHO`: rounds of reno mode after which loss uses RENO halving.
const RHO: u32 = 16;
/// `TCP_YEAH_ZETA`: fast-mode rounds before the reno-window floor decays.
const ZETA: u32 = 50;
/// Scalable TCP's ACKs-per-increment constant, reused by fast mode.
const SCALABLE_AI_CNT: u32 = 50;

/// YeAH-TCP.
#[derive(Debug, Clone)]
pub struct Yeah {
    base_rtt: f64,
    min_rtt: f64,
    cnt_rtt: u32,
    rounds: RoundTracker,
    doing_reno_now: u32,
    last_q: f64,
    reno_count: u32,
    fast_count: u32,
}

impl Default for Yeah {
    fn default() -> Self {
        Self::new()
    }
}

impl Yeah {
    /// Creates a YeAH controller with kernel-default parameters.
    pub fn new() -> Self {
        Yeah {
            base_rtt: f64::INFINITY,
            min_rtt: f64::INFINITY,
            cnt_rtt: 0,
            rounds: RoundTracker::new(),
            doing_reno_now: 0,
            last_q: 0.0,
            reno_count: 2,
            fast_count: 0,
        }
    }

    /// True while the fast (Scalable) mode is active, for tests.
    pub fn in_fast_mode(&self) -> bool {
        self.doing_reno_now == 0
    }

    /// Latest queue estimate (packets), for tests.
    pub fn last_queue(&self) -> f64 {
        self.last_q
    }
}

impl CongestionControl for Yeah {
    fn name(&self) -> &'static str {
        "YEAH"
    }

    fn pkts_acked(&mut self, _tp: &mut Transport, ack: &Ack) {
        if ack.rtt <= 0.0 {
            return;
        }
        if ack.rtt < self.base_rtt {
            self.base_rtt = ack.rtt;
        }
        if ack.rtt < self.min_rtt {
            self.min_rtt = ack.rtt;
        }
        self.cnt_rtt += 1;
    }

    fn cong_avoid(&mut self, tp: &mut Transport, ack: &Ack) {
        let mut acked = ack.acked;
        if tp.in_slow_start() {
            acked = tp.slow_start(acked);
        }
        if acked > 0 && !tp.in_slow_start() {
            if self.doing_reno_now == 0 {
                // Fast mode: Scalable TCP increase.
                tp.cong_avoid_ai(tp.cwnd.min(SCALABLE_AI_CNT), acked);
            } else {
                // Slow mode: RENO increase.
                tp.cong_avoid_ai(tp.cwnd, acked);
            }
        }

        if self.rounds.round_elapsed(tp) {
            if self.cnt_rtt > 2 && self.min_rtt.is_finite() && self.base_rtt.is_finite() {
                let rtt = self.min_rtt;
                let queue = f64::from(tp.cwnd) * (rtt - self.base_rtt).max(0.0) / rtt;
                let rtt_inflated = rtt - self.base_rtt > self.base_rtt / PHY;
                if queue > ALPHA || rtt_inflated {
                    if queue > ALPHA && tp.cwnd > self.reno_count {
                        // Precautionary decongestion.
                        let reduction = ((queue / GAMMA) as u32).min(tp.cwnd >> EPSILON);
                        tp.cwnd = (tp.cwnd - reduction).max(self.reno_count);
                        tp.ssthresh = tp.cwnd;
                    }
                    if self.reno_count <= 2 {
                        self.reno_count = (tp.cwnd >> 1).max(2);
                    } else {
                        self.reno_count += 1;
                    }
                    self.doing_reno_now = self.doing_reno_now.saturating_add(1);
                } else {
                    self.fast_count += 1;
                    if self.fast_count > ZETA {
                        self.reno_count = 2;
                        self.fast_count = 0;
                    }
                    self.doing_reno_now = 0;
                }
                self.last_q = queue;
            }
            self.min_rtt = f64::INFINITY;
            self.cnt_rtt = 0;
        }
    }

    fn ssthresh(&mut self, tp: &Transport) -> u32 {
        let reduction = if self.doing_reno_now < RHO {
            let mut r = self.last_q as u32;
            r = r.min((tp.cwnd >> 1).max(2));
            r.max(tp.cwnd >> DELTA)
        } else {
            (tp.cwnd >> 1).max(2)
        };
        self.fast_count = 0;
        self.reno_count = (self.reno_count >> 1).max(2);
        tp.cwnd.saturating_sub(reduction).max(2)
    }

    fn on_loss(&mut self, _tp: &mut Transport, kind: LossKind, _now: f64) {
        if kind == LossKind::Timeout {
            self.rounds.reset();
            self.min_rtt = f64::INFINITY;
            self.cnt_rtt = 0;
            self.doing_reno_now = 0;
            self.last_q = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_round(cc: &mut Yeah, tp: &mut Transport, now: f64, rtt: f64) {
        let w = tp.cwnd;
        tp.snd_nxt += u64::from(w);
        for _ in 0..w {
            tp.snd_una += 1;
            let ack = Ack { now, acked: 1, rtt };
            cc.pkts_acked(tp, &ack);
            cc.cong_avoid(tp, &ack);
        }
    }

    #[test]
    fn scalable_growth_on_empty_path() {
        let mut cc = Yeah::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 500;
        tp.ssthresh = 250;
        one_round(&mut cc, &mut tp, 0.0, 1.0);
        let before = tp.cwnd;
        one_round(&mut cc, &mut tp, 1.0, 1.0);
        let delta = tp.cwnd - before;
        assert!((9..=11).contains(&delta), "2% of ~500 per RTT, got {delta}");
        assert!(cc.in_fast_mode());
    }

    #[test]
    fn beta_seven_eighths_on_empty_queue() {
        let mut cc = Yeah::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 512;
        tp.ssthresh = 256;
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        tp.cwnd = 512;
        let ss = cc.ssthresh(&tp);
        assert_eq!(ss, 512 - (512 >> DELTA), "empty queue → reduction cwnd/8");
    }

    #[test]
    fn rtt_step_switches_to_reno_mode() {
        let mut cc = Yeah::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 300;
        tp.ssthresh = 150;
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        assert!(cc.in_fast_mode());
        for round in 3..6 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!(!cc.in_fast_mode(), "25% RTT inflation must trip slow mode");
    }

    #[test]
    fn precautionary_decongestion_shrinks_the_window() {
        let mut cc = Yeah::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 500;
        tp.ssthresh = 250;
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        let before = tp.cwnd;
        // queue = 0.2 · 500 = 100 > ALPHA: decongestion fires.
        for round in 3..6 {
            one_round(&mut cc, &mut tp, round as f64, 1.0);
        }
        assert!(
            tp.cwnd < before,
            "queue above α must trigger decongestion: {before} -> {}",
            tp.cwnd
        );
    }

    #[test]
    fn queued_loss_reduces_by_the_queue_size() {
        let mut cc = Yeah::new();
        let mut tp = Transport::new(1460);
        tp.cwnd = 300;
        tp.ssthresh = 150;
        for round in 0..3 {
            one_round(&mut cc, &mut tp, round as f64 * 0.8, 0.8);
        }
        one_round(&mut cc, &mut tp, 3.0, 1.0);
        let q = cc.last_queue();
        assert!(q > 0.0);
        let cwnd = tp.cwnd;
        let ss = cc.ssthresh(&tp);
        let reduction = cwnd - ss;
        assert!(
            reduction >= cwnd >> DELTA,
            "reduction {reduction} at least cwnd/8"
        );
        assert!(reduction <= (cwnd >> 1).max(2), "at most half");
    }
}
