//! The Internet measurement campaign (§VII-B, Table IV).
//!
//! For every server in a population the census samples a real-path network
//! condition, runs the full CAAI protocol (ladder, environments A and B),
//! files invalid traces by reason, detects the §VII-B special cases,
//! classifies the rest with the random forest (40% confidence floor), and
//! assembles the per-`w_max`-column report of Table IV. Because the
//! population is synthetic, the report can also score identification
//! accuracy against ground truth — something the paper could not do for
//! the real Internet.

use caai_congestion::AlgorithmId;
use caai_netem::{ConditionDb, PathConfig};
use caai_obs::{span_begin, NullSubscriber, ProbeTimed, SpanKind, Subscriber};
use caai_webmodel::WebServer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

use crate::classes::ClassLabel;
use crate::classify::{CaaiClassifier, Identification};
use crate::features::extract_pair;
use crate::prober::{GatherOutcome, Prober, ProberConfig};
use crate::server_under_test::ServerUnderTest;
use crate::special::{detect, SpecialCase};
use crate::trace::InvalidReason;

/// CAAI steps 2–3 as one function: turns a gathering outcome into a
/// verdict — invalid → its reason, a §VII-B special shape → filed,
/// otherwise feature extraction and the random forest with the 40%
/// confidence floor. The raw classifier output rides along when the
/// forest ran.
///
/// This is the **single** verdict pipeline: the synthetic census
/// (`Census::probe`) and capture ingestion (`caai-capture`) both call
/// it, so a simulated probe and its recorded wire exchange can never
/// be scored by diverging rules.
pub fn verdict_for_outcome(
    outcome: &GatherOutcome,
    classifier: &CaaiClassifier,
) -> (Verdict, Option<Identification>) {
    match &outcome.pair {
        None => (
            Verdict::Invalid(
                outcome
                    .failure_reason()
                    .unwrap_or(InvalidReason::NeverExceededThreshold),
            ),
            None,
        ),
        Some(pair) => {
            let wmax = pair.wmax_threshold();
            if let Some(case) = detect(&pair.env_a) {
                return (Verdict::Special(case, wmax), None);
            }
            let id = classifier.classify(&extract_pair(pair));
            let verdict = match id {
                Identification::Identified { class, .. } => Verdict::Identified(class, wmax),
                Identification::Unsure { .. } => Verdict::Unsure(wmax),
            };
            (verdict, Some(id))
        }
    }
}

/// The census verdict for one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// No valid trace could be gathered (53% of servers in the paper).
    Invalid(InvalidReason),
    /// A §VII-B special-case trace, at the given `w_max` rung.
    Special(SpecialCase, u32),
    /// Forest confidence below 40% ("Unsure TCP").
    Unsure(u32),
    /// Confident identification at the given `w_max` rung.
    Identified(ClassLabel, u32),
}

impl Verdict {
    /// The `w_max` rung, for valid traces.
    pub fn wmax(&self) -> Option<u32> {
        match self {
            Verdict::Invalid(_) => None,
            Verdict::Special(_, w) | Verdict::Unsure(w) | Verdict::Identified(_, w) => Some(*w),
        }
    }

    /// The payload-free verdict family, as structured events report it.
    pub fn kind(&self) -> caai_obs::VerdictKind {
        match self {
            Verdict::Invalid(_) => caai_obs::VerdictKind::Invalid,
            Verdict::Special(..) => caai_obs::VerdictKind::Special,
            Verdict::Unsure(_) => caai_obs::VerdictKind::Unsure,
            Verdict::Identified(..) => caai_obs::VerdictKind::Identified,
        }
    }
}

/// One server's census record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CensusRecord {
    /// Server id within the population.
    pub server_id: u32,
    /// Ground-truth algorithm (the effective one, behind any proxy).
    /// `None` when the record was not produced against a synthetic server
    /// — e.g. a flow ingested from a packet capture, where the truth is
    /// exactly what identification is trying to find out. (`Option`
    /// serializes transparently, so synthetic-census JSONL is unchanged.)
    pub truth: Option<AlgorithmId>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Aggregated census results: the material of Table IV.
///
/// Everything except [`records`](CensusReport::records) is a constant-size
/// aggregate: streaming producers ([`CensusAggregates`], the `caai-engine`
/// coordinator) fill only the aggregate fields and leave `records` empty,
/// so a report stays O(classes × rungs) however many servers were probed.
/// Record-level drill-down is opt-in via `caai-engine`'s aggregating sink.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CensusReport {
    /// Total servers probed.
    pub total: usize,
    /// Invalid-trace counts by reason.
    pub invalid: BTreeMap<String, usize>,
    /// Per-`w_max` rung columns.
    pub columns: BTreeMap<u32, CensusColumn>,
    /// Ground-truth algorithm histogram (synthetic-population bonus).
    pub truth: BTreeMap<String, usize>,
    /// Confidently identified servers *with known ground truth* — the
    /// denominator of the accuracy score (truth-less capture-ingested
    /// records appear in the columns but not here).
    pub identified_total: usize,
    /// Confident identifications matching ground truth.
    pub identified_correct: usize,
    /// Per-server records (drill-down; empty in streaming/aggregate runs).
    pub records: Vec<CensusRecord>,
}

/// One `w_max` column of Table IV.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CensusColumn {
    /// Confident identifications per class.
    pub identified: BTreeMap<String, usize>,
    /// Special-case counts per case.
    pub special: BTreeMap<String, usize>,
    /// "Unsure TCP" count.
    pub unsure: usize,
}

impl CensusColumn {
    /// Servers contributing to this column.
    pub fn total(&self) -> usize {
        self.identified.values().sum::<usize>() + self.special.values().sum::<usize>() + self.unsure
    }
}

impl CensusReport {
    /// Servers with valid traces (the paper's ~47%).
    pub fn valid_total(&self) -> usize {
        self.columns.values().map(CensusColumn::total).sum()
    }

    /// Share of valid-trace servers identified as `class`, in percent —
    /// the Table IV body cells.
    pub fn identified_percent(&self, class: ClassLabel) -> f64 {
        let n: usize = self
            .columns
            .values()
            .map(|c| c.identified.get(class.name()).copied().unwrap_or(0))
            .sum();
        100.0 * n as f64 / self.valid_total().max(1) as f64
    }

    /// Share of valid-trace servers in a census family ("BIC/CUBIC",
    /// "CTCP", ...), in percent.
    pub fn family_percent(&self, family: &str) -> f64 {
        let n: usize = ClassLabel::ALL
            .iter()
            .filter(|c| c.census_family() == family)
            .map(|c| {
                self.columns
                    .values()
                    .map(|col| col.identified.get(c.name()).copied().unwrap_or(0))
                    .sum::<usize>()
            })
            .sum();
        100.0 * n as f64 / self.valid_total().max(1) as f64
    }

    /// Share of valid-trace servers that are "Unsure TCP", in percent.
    pub fn unsure_percent(&self) -> f64 {
        let n: usize = self.columns.values().map(|c| c.unsure).sum();
        100.0 * n as f64 / self.valid_total().max(1) as f64
    }

    /// Identification accuracy against ground truth over confidently
    /// identified servers (not available to the paper; a bonus of the
    /// synthetic population). Computed from the streaming tallies, so it
    /// works for record-free aggregate reports too.
    pub fn ground_truth_accuracy(&self) -> f64 {
        self.identified_correct as f64 / self.identified_total.max(1) as f64
    }

    /// A copy of this report with the record drill-down dropped — exactly
    /// what a streaming (record-free) producer of the same census emits.
    pub fn aggregates_only(&self) -> CensusReport {
        CensusReport {
            total: self.total,
            invalid: self.invalid.clone(),
            columns: self.columns.clone(),
            truth: self.truth.clone(),
            identified_total: self.identified_total,
            identified_correct: self.identified_correct,
            records: Vec::new(),
        }
    }
}

/// Constant-memory streaming fold of census records.
///
/// One `observe` call per record maintains every aggregate Table IV needs
/// — verdict counts per `w_max` column, the invalid-reason histogram, the
/// ground-truth histogram, and the accuracy tallies — in O(classes ×
/// rungs) memory, independent of how many records stream through. Two
/// aggregates over disjoint server sets [`merge`](CensusAggregates::merge)
/// into exactly the fold of the union, which is what makes a sharded
/// census joinable into the unsharded report.
///
/// ```
/// use caai_core::census::{CensusAggregates, CensusRecord, Verdict};
/// use caai_core::classes::ClassLabel;
/// use caai_congestion::AlgorithmId;
///
/// let record = CensusRecord {
///     server_id: 7,
///     truth: Some(AlgorithmId::Bic),
///     verdict: Verdict::Identified(ClassLabel::Bic, 512),
/// };
/// let mut left = CensusAggregates::default();
/// left.observe(&record);
/// let mut right = CensusAggregates::default();
/// right.observe(&CensusRecord { server_id: 8, ..record });
///
/// let mut merged = left.clone();
/// merged.merge(&right);
/// assert_eq!(merged.total, 2);
/// assert_eq!(merged.report().ground_truth_accuracy(), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CensusAggregates {
    /// Records folded in so far.
    pub total: usize,
    /// Invalid-trace counts by reason.
    pub invalid: BTreeMap<String, usize>,
    /// Per-`w_max` rung columns.
    pub columns: BTreeMap<u32, CensusColumn>,
    /// Ground-truth algorithm histogram.
    pub truth: BTreeMap<String, usize>,
    /// Confidently identified servers with known ground truth.
    pub identified_total: usize,
    /// Confident identifications matching ground truth.
    pub identified_correct: usize,
}

impl CensusAggregates {
    /// Folds one record into the aggregates.
    pub fn observe(&mut self, r: &CensusRecord) {
        self.total += 1;
        if let Some(truth) = r.truth {
            *self.truth.entry(truth.name().to_owned()).or_default() += 1;
        }
        match r.verdict {
            Verdict::Invalid(reason) => {
                *self.invalid.entry(format!("{reason:?}")).or_default() += 1;
            }
            Verdict::Special(case, wmax) => {
                let col = self.columns.entry(wmax).or_default();
                *col.special.entry(case.name().to_owned()).or_default() += 1;
            }
            Verdict::Unsure(wmax) => {
                self.columns.entry(wmax).or_default().unsure += 1;
            }
            Verdict::Identified(class, wmax) => {
                let col = self.columns.entry(wmax).or_default();
                *col.identified.entry(class.name().to_owned()).or_default() += 1;
                // Truth-less records (capture-ingested flows) carry
                // nothing to score against: keeping them out of the
                // denominator stops them from silently deflating the
                // accuracy when capture and synthetic records mix.
                if let Some(truth) = r.truth {
                    self.identified_total += 1;
                    if class.matches(truth, wmax) {
                        self.identified_correct += 1;
                    }
                }
            }
        }
    }

    /// Adds another aggregate (over a disjoint record set) into this one.
    pub fn merge(&mut self, other: &CensusAggregates) {
        self.total += other.total;
        for (reason, n) in &other.invalid {
            *self.invalid.entry(reason.clone()).or_default() += n;
        }
        for (truth, n) in &other.truth {
            *self.truth.entry(truth.clone()).or_default() += n;
        }
        for (wmax, col) in &other.columns {
            let mine = self.columns.entry(*wmax).or_default();
            for (class, n) in &col.identified {
                *mine.identified.entry(class.clone()).or_default() += n;
            }
            for (case, n) in &col.special {
                *mine.special.entry(case.clone()).or_default() += n;
            }
            mine.unsure += col.unsure;
        }
        self.identified_total += other.identified_total;
        self.identified_correct += other.identified_correct;
    }

    /// The record-free [`CensusReport`] of everything folded so far.
    pub fn report(&self) -> CensusReport {
        CensusReport {
            total: self.total,
            invalid: self.invalid.clone(),
            columns: self.columns.clone(),
            truth: self.truth.clone(),
            identified_total: self.identified_total,
            identified_correct: self.identified_correct,
            records: Vec::new(),
        }
    }
}

/// Census driver.
#[derive(Debug, Clone)]
pub struct Census {
    prober: Prober,
    classifier: CaaiClassifier,
    conditions: ConditionDb,
}

impl Census {
    /// Creates a census driver from a trained classifier.
    pub fn new(classifier: CaaiClassifier, conditions: ConditionDb, prober: ProberConfig) -> Self {
        Census {
            prober: Prober::new(prober),
            classifier,
            conditions,
        }
    }

    /// Probes one server.
    pub fn probe(&self, server: &WebServer, rng: &mut impl rand::Rng) -> CensusRecord {
        self.probe_obs(server, rng, &NullSubscriber)
    }

    /// [`probe`](Self::probe) with a structured-event subscriber: the
    /// ladder walk's rung events plus a [`ProbeTimed`] stage-timing
    /// split (gather vs verdict wall time — the gather-dominance claim,
    /// ROADMAP item 5, measured live). The record is identical to the
    /// unobserved call; timing preparation is skipped entirely when
    /// `S::ENABLED` is false.
    pub fn probe_obs<S: Subscriber>(
        &self,
        server: &WebServer,
        rng: &mut impl rand::Rng,
        obs: &S,
    ) -> CensusRecord {
        let cond = self.conditions.sample(rng);
        let path = PathConfig::from_condition(&cond);
        let sut = ServerUnderTest::from_web_server(server);
        let gather_started = S::ENABLED.then(Instant::now);
        let gather_span = span_begin(obs, SpanKind::Gather, i64::from(server.id), 0);
        let outcome = self.prober.gather_obs(&sut, &path, rng, obs);
        gather_span.end(obs);
        let gather_done = S::ENABLED.then(Instant::now);
        let classify_span = span_begin(obs, SpanKind::Classify, i64::from(server.id), 0);
        let (verdict, _) = verdict_for_outcome(&outcome, &self.classifier);
        classify_span.end(obs);
        if let (Some(t0), Some(t1)) = (gather_started, gather_done) {
            obs.on_probe_timed(&ProbeTimed {
                gather_us: (t1 - t0).as_micros() as u64,
                verdict_us: t1.elapsed().as_micros() as u64,
            });
        }
        CensusRecord {
            server_id: server.id,
            truth: Some(server.effective_algorithm()),
            verdict,
        }
    }

    /// Probes one server with the canonical per-server RNG, keyed on
    /// `(seed, server.id)`. Any scheduler that probes each server through
    /// this method — whatever its worker count or interleaving — measures
    /// exactly the same records (`caai-engine` relies on this).
    pub fn probe_seeded(&self, server: &WebServer, seed: u64) -> CensusRecord {
        self.probe_seeded_obs(server, seed, &NullSubscriber)
    }

    /// [`probe_seeded`](Self::probe_seeded) with a structured-event
    /// subscriber (see [`probe_obs`](Self::probe_obs)).
    pub fn probe_seeded_obs<S: Subscriber>(
        &self,
        server: &WebServer,
        seed: u64,
        obs: &S,
    ) -> CensusRecord {
        let mut rng = caai_netem::rng::child(seed, u64::from(server.id));
        self.probe_obs(server, &mut rng, obs)
    }

    /// Probes a whole population across `workers` threads.
    ///
    /// This is the thin in-memory path; `caai-engine` provides the
    /// streaming/checkpointed one. Each server gets its own RNG keyed on
    /// `(seed, server.id)` and records are assembled in `server_id`
    /// order, so the report is identical for every worker count.
    pub fn run(&self, servers: &[WebServer], seed: u64, workers: usize) -> CensusReport {
        let workers = workers.max(1).min(servers.len().max(1));
        let chunk = servers.len().div_ceil(workers);
        let mut records: Vec<CensusRecord> = Vec::with_capacity(servers.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in servers.chunks(chunk.max(1)) {
                let census = &*self;
                handles.push(scope.spawn(move || {
                    part.iter()
                        .map(|s| census.probe_seeded(s, seed))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                records.extend(h.join().expect("census worker panicked"));
            }
        });
        records.sort_by_key(|r| r.server_id);
        assemble(records)
    }
}

/// Folds raw records into the Table IV report, retaining the records for
/// drill-down. The aggregate fields match what a [`CensusAggregates`]
/// fold of the same records produces.
pub fn assemble(records: Vec<CensusRecord>) -> CensusReport {
    let mut agg = CensusAggregates::default();
    for r in &records {
        agg.observe(r);
    }
    let mut report = agg.report();
    report.records = records;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{build_training_set, TrainingConfig};
    use caai_netem::rng::seeded;
    use caai_webmodel::PopulationConfig;

    fn quick_classifier(rng: &mut impl rand::Rng) -> CaaiClassifier {
        let db = ConditionDb::paper_2011();
        let data = build_training_set(&TrainingConfig::quick(2), &db, rng);
        CaaiClassifier::train(&data, rng)
    }

    #[test]
    fn small_census_produces_a_coherent_report() {
        let mut rng = seeded(100);
        let classifier = quick_classifier(&mut rng);
        let census = Census::new(
            classifier,
            ConditionDb::paper_2011(),
            ProberConfig::default(),
        );
        let servers = PopulationConfig::small(40).generate(&mut rng);
        let report = census.run(&servers, 7, 2);
        assert_eq!(report.total, 40);
        assert_eq!(report.records.len(), 40);
        let invalid: usize = report.invalid.values().sum();
        assert_eq!(invalid + report.valid_total(), 40);
        // Roughly half the servers yield no valid trace, as in the paper.
        assert!(invalid >= 8, "invalid {invalid}");
        assert!(report.valid_total() >= 8, "valid {}", report.valid_total());
    }

    #[test]
    fn census_is_deterministic_for_a_seed() {
        let mut rng = seeded(101);
        let classifier = quick_classifier(&mut rng);
        let census = Census::new(
            classifier,
            ConditionDb::paper_2011(),
            ProberConfig::default(),
        );
        let servers = PopulationConfig::small(12).generate(&mut rng);
        let a = census.run(&servers, 5, 3);
        let b = census.run(&servers, 5, 3);
        assert_eq!(a.records, b.records, "per-server RNG must be reproducible");
    }

    #[test]
    fn report_is_identical_for_any_worker_count() {
        let mut rng = seeded(102);
        let classifier = quick_classifier(&mut rng);
        let census = Census::new(
            classifier,
            ConditionDb::paper_2011(),
            ProberConfig::default(),
        );
        let servers = PopulationConfig::small(30).generate(&mut rng);
        let one = census.run(&servers, 11, 1);
        let eight = census.run(&servers, 11, 8);
        assert_eq!(one, eight, "worker count must not leak into the report");
        // And an oversubscribed pool is fine too.
        let many = census.run(&servers, 11, 64);
        assert_eq!(one, many);
    }

    #[test]
    fn probe_seeded_matches_run_records() {
        let mut rng = seeded(103);
        let classifier = quick_classifier(&mut rng);
        let census = Census::new(
            classifier,
            ConditionDb::paper_2011(),
            ProberConfig::default(),
        );
        let servers = PopulationConfig::small(8).generate(&mut rng);
        let report = census.run(&servers, 3, 2);
        for (server, record) in servers.iter().zip(&report.records) {
            assert_eq!(census.probe_seeded(server, 3), *record);
        }
    }

    #[test]
    fn aggregates_fold_matches_assemble_and_merge_is_exact() {
        let mut rng = seeded(104);
        let classifier = quick_classifier(&mut rng);
        let census = Census::new(
            classifier,
            ConditionDb::paper_2011(),
            ProberConfig::default(),
        );
        let servers = PopulationConfig::small(30).generate(&mut rng);
        let report = census.run(&servers, 9, 2);

        // Streaming fold == batch assemble, minus the record drill-down.
        let mut whole = CensusAggregates::default();
        for r in &report.records {
            whole.observe(r);
        }
        assert_eq!(whole.report(), report.aggregates_only());

        // Folding disjoint halves and merging is exact, in either order.
        let (left, right) = report.records.split_at(report.records.len() / 2);
        let mut a = CensusAggregates::default();
        left.iter().for_each(|r| a.observe(r));
        let mut b = CensusAggregates::default();
        right.iter().for_each(|r| b.observe(r));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }

    #[test]
    fn probe_obs_matches_probe_and_times_the_stages() {
        use caai_obs::MetricsSubscriber;
        let mut rng = seeded(105);
        let classifier = quick_classifier(&mut rng);
        let census = Census::new(
            classifier,
            ConditionDb::paper_2011(),
            ProberConfig::default(),
        );
        let servers = PopulationConfig::small(4).generate(&mut rng);
        let metrics = MetricsSubscriber::new();
        for server in &servers {
            assert_eq!(
                census.probe_seeded_obs(server, 3, &metrics),
                census.probe_seeded(server, 3),
                "subscriber must not change the record"
            );
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.counters["gather.runs"], 4);
        let gather = &snap.histograms["census.probe_gather_us"];
        let verdict = &snap.histograms["census.probe_verdict_us"];
        assert_eq!(gather.count, 4, "one timing sample per probe");
        assert_eq!(verdict.count, 4);
    }

    #[test]
    fn verdict_wmax_accessor() {
        assert_eq!(Verdict::Invalid(InvalidReason::PageTooShort).wmax(), None);
        assert_eq!(Verdict::Unsure(128).wmax(), Some(128));
        assert_eq!(Verdict::Identified(ClassLabel::Bic, 512).wmax(), Some(512));
    }

    #[test]
    fn truthless_records_do_not_deflate_accuracy() {
        use caai_congestion::AlgorithmId;
        let mut agg = CensusAggregates::default();
        agg.observe(&CensusRecord {
            server_id: 0,
            truth: Some(AlgorithmId::Bic),
            verdict: Verdict::Identified(ClassLabel::Bic, 512),
        });
        // A capture-ingested identification: nothing to score against.
        agg.observe(&CensusRecord {
            server_id: 1,
            truth: None,
            verdict: Verdict::Identified(ClassLabel::Htcp, 512),
        });
        let report = agg.report();
        assert_eq!(
            report.identified_total, 1,
            "only truth-bearing records score"
        );
        assert_eq!(report.ground_truth_accuracy(), 1.0);
        let column_identified: usize = report.columns[&512].identified.values().sum();
        assert_eq!(column_identified, 2, "the column still counts both");
    }
}
