//! Classification labels (§VII-A).
//!
//! RENO, CTCP v1 and CTCP v2 are behaviourally indistinguishable at small
//! windows ("CTCP = RENO when their window sizes are less than 41",
//! Fig. 3(o)), so for `w_max ∈ {64, 128}` the three collapse into one
//! **RC-small** class, while at `w_max ∈ {256, 512}` they stay separate as
//! RENO-big / CTCP'-big / CTCP''-big — 15 classes in total, the rows of
//! Table III.

use caai_congestion::AlgorithmId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// `w_max` rungs where RENO and the CTCPs are distinguishable.
pub const BIG_WMAX: u32 = 256;

/// The 15 classes of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ClassLabel {
    Bic,
    Ctcp1Big,
    Ctcp2Big,
    Cubic1,
    Cubic2,
    Hstcp,
    Htcp,
    Illinois,
    RcSmall,
    RenoBig,
    Stcp,
    Vegas,
    Veno,
    Westwood,
    Yeah,
}

impl ClassLabel {
    /// All classes, in Table III row order.
    pub const ALL: [ClassLabel; 15] = [
        ClassLabel::Bic,
        ClassLabel::Ctcp1Big,
        ClassLabel::Ctcp2Big,
        ClassLabel::Cubic1,
        ClassLabel::Cubic2,
        ClassLabel::Hstcp,
        ClassLabel::Htcp,
        ClassLabel::Illinois,
        ClassLabel::RcSmall,
        ClassLabel::RenoBig,
        ClassLabel::Stcp,
        ClassLabel::Vegas,
        ClassLabel::Veno,
        ClassLabel::Westwood,
        ClassLabel::Yeah,
    ];

    /// Stable index into [`ClassLabel::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class in table")
    }

    /// Inverse of [`index`](Self::index).
    pub fn from_index(i: usize) -> ClassLabel {
        Self::ALL[i]
    }

    /// Display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            ClassLabel::Bic => "BIC",
            ClassLabel::Ctcp1Big => "CTCP_v1-big",
            ClassLabel::Ctcp2Big => "CTCP_v2-big",
            ClassLabel::Cubic1 => "CUBIC_v1",
            ClassLabel::Cubic2 => "CUBIC_v2",
            ClassLabel::Hstcp => "HSTCP",
            ClassLabel::Htcp => "HTCP",
            ClassLabel::Illinois => "ILLINOIS",
            ClassLabel::RcSmall => "RC-small",
            ClassLabel::RenoBig => "RENO-big",
            ClassLabel::Stcp => "STCP",
            ClassLabel::Vegas => "VEGAS",
            ClassLabel::Veno => "VENO",
            ClassLabel::Westwood => "WESTWOOD+",
            ClassLabel::Yeah => "YEAH",
        }
    }

    /// The class a measurement of `algorithm` at threshold `wmax` should be
    /// labeled with. `None` for the non-identified extensions (HYBLA, LP).
    pub fn for_measurement(algorithm: AlgorithmId, wmax: u32) -> Option<ClassLabel> {
        let small = wmax < BIG_WMAX;
        Some(match algorithm {
            AlgorithmId::Reno if small => ClassLabel::RcSmall,
            AlgorithmId::CtcpV1 if small => ClassLabel::RcSmall,
            AlgorithmId::CtcpV2 if small => ClassLabel::RcSmall,
            AlgorithmId::Reno => ClassLabel::RenoBig,
            AlgorithmId::CtcpV1 => ClassLabel::Ctcp1Big,
            AlgorithmId::CtcpV2 => ClassLabel::Ctcp2Big,
            AlgorithmId::Bic => ClassLabel::Bic,
            AlgorithmId::CubicV1 => ClassLabel::Cubic1,
            AlgorithmId::CubicV2 => ClassLabel::Cubic2,
            AlgorithmId::Hstcp => ClassLabel::Hstcp,
            AlgorithmId::Htcp => ClassLabel::Htcp,
            AlgorithmId::Illinois => ClassLabel::Illinois,
            AlgorithmId::Scalable => ClassLabel::Stcp,
            AlgorithmId::Vegas => ClassLabel::Vegas,
            AlgorithmId::Veno => ClassLabel::Veno,
            AlgorithmId::WestwoodPlus => ClassLabel::Westwood,
            AlgorithmId::Yeah => ClassLabel::Yeah,
            AlgorithmId::Hybla | AlgorithmId::Lp => return None,
        })
    }

    /// True when a prediction of this class is correct for a server whose
    /// ground truth is `algorithm` probed at `wmax`.
    pub fn matches(self, algorithm: AlgorithmId, wmax: u32) -> bool {
        Self::for_measurement(algorithm, wmax) == Some(self)
    }

    /// Census reporting family: merges the big/small and version splits the
    /// way §VII-B aggregates them ("BIC or CUBIC", "CTCP").
    pub fn census_family(self) -> &'static str {
        match self {
            ClassLabel::Bic | ClassLabel::Cubic1 | ClassLabel::Cubic2 => "BIC/CUBIC",
            ClassLabel::Ctcp1Big | ClassLabel::Ctcp2Big => "CTCP",
            ClassLabel::RenoBig => "RENO",
            ClassLabel::RcSmall => "RC-small",
            other => other.name(),
        }
    }
}

impl fmt::Display for ClassLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The class-name table in [`ClassLabel::ALL`] order, for datasets.
pub fn label_names() -> Vec<String> {
    ClassLabel::ALL
        .iter()
        .map(|c| c.name().to_owned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_classes_with_stable_indices() {
        assert_eq!(ClassLabel::ALL.len(), 15);
        for (i, c) in ClassLabel::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(ClassLabel::from_index(i), *c);
        }
    }

    #[test]
    fn reno_and_ctcp_merge_at_small_wmax() {
        for algo in [AlgorithmId::Reno, AlgorithmId::CtcpV1, AlgorithmId::CtcpV2] {
            assert_eq!(
                ClassLabel::for_measurement(algo, 64),
                Some(ClassLabel::RcSmall)
            );
            assert_eq!(
                ClassLabel::for_measurement(algo, 128),
                Some(ClassLabel::RcSmall)
            );
        }
        assert_eq!(
            ClassLabel::for_measurement(AlgorithmId::Reno, 256),
            Some(ClassLabel::RenoBig)
        );
        assert_eq!(
            ClassLabel::for_measurement(AlgorithmId::CtcpV1, 512),
            Some(ClassLabel::Ctcp1Big)
        );
    }

    #[test]
    fn other_algorithms_keep_identity_across_wmax() {
        for wmax in [64, 128, 256, 512] {
            assert_eq!(
                ClassLabel::for_measurement(AlgorithmId::Bic, wmax),
                Some(ClassLabel::Bic)
            );
        }
    }

    #[test]
    fn extensions_are_unlabelled() {
        assert_eq!(ClassLabel::for_measurement(AlgorithmId::Hybla, 512), None);
        assert_eq!(ClassLabel::for_measurement(AlgorithmId::Lp, 64), None);
    }

    #[test]
    fn matches_respects_the_merge() {
        assert!(ClassLabel::RcSmall.matches(AlgorithmId::CtcpV2, 64));
        assert!(!ClassLabel::RcSmall.matches(AlgorithmId::CtcpV2, 512));
        assert!(ClassLabel::Ctcp2Big.matches(AlgorithmId::CtcpV2, 512));
    }

    #[test]
    fn census_families_aggregate() {
        assert_eq!(ClassLabel::Bic.census_family(), "BIC/CUBIC");
        assert_eq!(ClassLabel::Cubic2.census_family(), "BIC/CUBIC");
        assert_eq!(ClassLabel::Ctcp1Big.census_family(), "CTCP");
        assert_eq!(ClassLabel::Htcp.census_family(), "HTCP");
    }

    #[test]
    fn label_names_align_with_indices() {
        let names = label_names();
        assert_eq!(names.len(), 15);
        assert_eq!(names[ClassLabel::Vegas.index()], "VEGAS");
    }
}
