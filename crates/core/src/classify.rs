//! CAAI Step 3: algorithm classification (§VI).
//!
//! A random forest (K = 80 trees, m = 4 features per split) votes on the
//! 7-element feature vector; the vote share of the winning class is the
//! confidence, and CAAI reports "Unsure TCP" below 40% (§VII-B).

use caai_ml::{Classifier, Dataset, RandomForest, RandomForestConfig};
use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::classes::ClassLabel;
use crate::features::FeatureVector;

/// Confidence floor below which CAAI declines to identify (§VII-B: "CAAI
/// does not report the classification result ... if the confidence level is
/// lower than 40%").
pub const CONFIDENCE_FLOOR: f64 = 0.40;

/// Outcome of classifying one feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Identification {
    /// Confident identification.
    Identified {
        /// The winning class.
        class: ClassLabel,
        /// Vote share of the winning class.
        confidence: f64,
    },
    /// Vote share below the floor: "Unsure TCP".
    Unsure {
        /// The plurality class anyway, for diagnostics.
        best_guess: ClassLabel,
        /// Its (insufficient) vote share.
        confidence: f64,
    },
}

impl Identification {
    /// The identified class, when confident.
    pub fn class(&self) -> Option<ClassLabel> {
        match self {
            Identification::Identified { class, .. } => Some(*class),
            Identification::Unsure { .. } => None,
        }
    }

    /// The vote share of the plurality class.
    pub fn confidence(&self) -> f64 {
        match self {
            Identification::Identified { confidence, .. }
            | Identification::Unsure { confidence, .. } => *confidence,
        }
    }
}

/// The trained CAAI classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaaiClassifier {
    forest: RandomForest,
    confidence_floor: f64,
}

impl CaaiClassifier {
    /// Trains the paper-configured forest (K = 80, m = 4) on a training
    /// set labeled with [`ClassLabel`] indices.
    pub fn train(training: &Dataset, rng: &mut dyn RngCore) -> Self {
        Self::train_with(training, RandomForestConfig::paper(), rng)
    }

    /// Trains with explicit forest hyperparameters (used by the Fig. 12
    /// sweeps).
    pub fn train_with(
        training: &Dataset,
        config: RandomForestConfig,
        rng: &mut dyn RngCore,
    ) -> Self {
        assert_eq!(
            training.n_classes(),
            ClassLabel::ALL.len(),
            "training set must use the 15 CAAI classes"
        );
        let mut forest = RandomForest::new(config);
        forest.fit(training, rng);
        CaaiClassifier {
            forest,
            confidence_floor: CONFIDENCE_FLOOR,
        }
    }

    /// Classifies one feature vector.
    pub fn classify(&self, vector: &FeatureVector) -> Identification {
        let p = self.forest.predict(vector.as_slice());
        let class = ClassLabel::from_index(p.label);
        if p.confidence >= self.confidence_floor {
            Identification::Identified {
                class,
                confidence: p.confidence,
            }
        } else {
            Identification::Unsure {
                best_guess: class,
                confidence: p.confidence,
            }
        }
    }

    /// Access to the underlying forest (for CV and ablations).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::label_names;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A tiny synthetic training set: class indices 0 (BIC) and 14 (YEAH)
    /// separated on the β^A axis.
    fn toy_training() -> Dataset {
        let mut d = Dataset::new(label_names(), crate::features::FEATURE_DIM);
        for i in 0..40 {
            let j = (i % 5) as f64 / 100.0;
            d.push(
                vec![0.8 + j, 20.0, 40.0, 0.8, 20.0, 40.0, 1.0],
                ClassLabel::Bic.index(),
            );
            d.push(
                vec![0.875 + j, 60.0, 130.0, 0.5, 5.0, 9.0, 1.0],
                ClassLabel::Yeah.index(),
            );
        }
        d
    }

    #[test]
    fn classifies_separable_vectors_confidently() {
        let d = toy_training();
        let mut rng = StdRng::seed_from_u64(2);
        let clf = CaaiClassifier::train(&d, &mut rng);
        let v = FeatureVector {
            values: [0.81, 21.0, 41.0, 0.8, 20.0, 40.0, 1.0],
        };
        match clf.classify(&v) {
            Identification::Identified { class, confidence } => {
                assert_eq!(class, ClassLabel::Bic);
                assert!(confidence > 0.8);
            }
            other => panic!("expected confident BIC, got {other:?}"),
        }
    }

    #[test]
    fn far_off_vectors_can_still_be_unsure() {
        let d = toy_training();
        let mut rng = StdRng::seed_from_u64(3);
        let clf = CaaiClassifier::train(&d, &mut rng);
        // Any vector classifies *somewhere*; the Unsure arm needs split
        // votes, which two well-separated classes rarely produce. Verify
        // the plumbing instead: confidence is always a valid share.
        let v = FeatureVector {
            values: [0.84, 40.0, 80.0, 0.65, 12.0, 25.0, 1.0],
        };
        let id = clf.classify(&v);
        assert!(id.confidence() > 0.0 && id.confidence() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "15 CAAI classes")]
    fn wrong_class_table_is_rejected() {
        let d = Dataset::new(vec!["a".into()], 7);
        let mut rng = StdRng::seed_from_u64(4);
        let _ = CaaiClassifier::train(&d, &mut rng);
    }
}
