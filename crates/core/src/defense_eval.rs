//! Measuring classifier degradation under traffic-analysis defenses
//! (ROADMAP item 4).
//!
//! A server deploying a [`caai_netem::defense`] transform distorts the
//! window traces CAAI gathers; the interesting question is *how much
//! identification accuracy each defense buys per unit of overhead*. This
//! module runs that sweep: for every defense type and overhead budget it
//! probes the full algorithm zoo through a defended prober, scores the
//! verdicts against ground truth, and compares them to the undefended
//! baseline — the defense-vs-accuracy curve the `caai defense-sweep`
//! subcommand writes to `DEFENSE_CURVE.json`.
//!
//! The sweep also measures how much of the degradation is *recoverable*:
//! it retrains one **hardened** forest on the union of the clean training
//! set and every defended feature vector the sweep produced, then
//! re-scores each cell with it. Padding-style distortions (inflated but
//! structurally intact traces) recover well; shaping that keeps the
//! window below every ladder rung produces invalid traces no classifier
//! can recover.

use caai_congestion::{AlgorithmId, ALL_IDENTIFIED};
use caai_ml::Dataset;
use caai_netem::rng::seeded;
use caai_netem::{DefenseConfig, DefenseSpec, PathConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::census::{verdict_for_outcome, Verdict};
use crate::classes::ClassLabel;
use crate::classify::{CaaiClassifier, Identification};
use crate::features::{extract_pair, FeatureVector};
use crate::prober::{Prober, ProberConfig};
use crate::server_under_test::ServerUnderTest;

/// Schema tag of the `DEFENSE_CURVE.json` artifact.
pub const DEFENSE_CURVE_SCHEMA: &str = "caai-defense-curve-v1";

/// Sweep parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Overhead budgets to sweep (fraction of real packets).
    pub budgets: Vec<f64>,
    /// Probes per algorithm per cell (distinct seeds).
    pub seeds_per_algo: usize,
    /// Burst cap used by the shaping defense.
    pub shaping_cap: u32,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            budgets: vec![0.05, 0.15, 0.30],
            seeds_per_algo: 3,
            shaping_cap: 32,
        }
    }
}

/// The defense types the sweep covers.
pub const DEFENSE_KINDS: [&str; 4] = ["padding", "jitter", "shaping", "combined"];

/// Builds the [`DefenseSpec`] for one sweep cell. The transform rates are
/// tied to the budget so that the budget *binds*: each defense spends
/// essentially its whole allowance.
pub fn spec_for(kind: &str, budget: f64, shaping_cap: u32) -> DefenseSpec {
    match kind {
        "padding" => DefenseSpec::single(DefenseConfig::Padding { rate: budget }, budget),
        "jitter" => DefenseSpec::single(
            DefenseConfig::Jitter {
                delay_prob: budget.min(1.0),
            },
            budget,
        ),
        "shaping" => DefenseSpec::single(
            DefenseConfig::Shaping {
                burst_cap: shaping_cap,
            },
            budget,
        ),
        "combined" => DefenseSpec {
            defenses: vec![
                DefenseConfig::Padding { rate: budget / 2.0 },
                DefenseConfig::Jitter {
                    delay_prob: (budget / 2.0).min(1.0),
                },
            ],
            budget,
        },
        other => panic!("unknown defense kind {other:?}"),
    }
}

/// Verdict tallies for one sweep cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictTally {
    /// Confident identifications matching ground truth.
    pub identified_correct: usize,
    /// Confident identifications of the wrong class.
    pub identified_wrong: usize,
    /// Below the confidence floor.
    pub unsure: usize,
    /// §VII-B special-case shapes.
    pub special: usize,
    /// No usable trace pair.
    pub invalid: usize,
}

impl VerdictTally {
    fn total(&self) -> usize {
        self.identified_correct + self.identified_wrong + self.unsure + self.special + self.invalid
    }
}

/// One `(defense, budget)` cell of the curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseCell {
    /// Defense kind (see [`DEFENSE_KINDS`]).
    pub defense: String,
    /// Overhead budget the defense ran under.
    pub budget: f64,
    /// Ground-truth accuracy over every probe of the cell (invalid and
    /// unsure count as misses).
    pub accuracy: f64,
    /// Accuracy of the adversarially-retrained forest on the same traces.
    pub hardened_accuracy: f64,
    /// Fraction of probes yielding no usable trace pair.
    pub invalid_share: f64,
    /// Fraction below the confidence floor.
    pub unsure_share: f64,
    /// Fraction of probes whose verdict differs from the undefended
    /// baseline verdict for the same `(algorithm, seed)`.
    pub confusion_shift: f64,
    /// Mean measured overhead fraction ((dummies + delays) / real).
    pub measured_overhead: f64,
    /// Verdict tallies.
    pub tally: VerdictTally,
}

/// The full `DEFENSE_CURVE.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseCurve {
    /// Artifact schema tag ([`DEFENSE_CURVE_SCHEMA`]).
    pub schema: String,
    /// Sweep seed.
    pub seed: u64,
    /// Probes per cell (algorithms × seeds per algorithm).
    pub probes_per_cell: usize,
    /// Undefended baseline accuracy.
    pub baseline_accuracy: f64,
    /// Undefended baseline tallies.
    pub baseline_tally: VerdictTally,
    /// One cell per (defense kind, budget).
    pub cells: Vec<DefenseCell>,
}

/// One probe's scored result, kept so the hardened forest can re-score
/// the cell without re-gathering.
struct ProbeResult {
    verdict: Verdict,
    correct: bool,
    /// The defended feature vector and its truth label, when a pair was
    /// gathered and no special case fired.
    vector: Option<(FeatureVector, ClassLabel)>,
    overhead: f64,
}

/// Probes one server through one (possibly defended) prober config.
fn probe_one(
    algo: AlgorithmId,
    config: &ProberConfig,
    classifier: &CaaiClassifier,
    rng: &mut impl Rng,
) -> ProbeResult {
    let server = ServerUnderTest::ideal(algo);
    let prober = Prober::new(config.clone());
    let outcome = prober.gather(&server, &PathConfig::clean(), rng);
    let (verdict, _) = verdict_for_outcome(&outcome, classifier);
    let correct = matches!(verdict, Verdict::Identified(class, wmax) if class.matches(algo, wmax));
    let vector = outcome.pair.as_ref().and_then(|pair| {
        let wmax = pair.wmax_threshold();
        // Special-case traces never reach the forest; skip them here too.
        if crate::special::detect(&pair.env_a).is_some() {
            return None;
        }
        ClassLabel::for_measurement(algo, wmax).map(|label| (extract_pair(pair), label))
    });
    let overhead = outcome
        .defense_overhead
        .map(|o| o.fraction())
        .unwrap_or(0.0);
    ProbeResult {
        verdict,
        correct,
        vector,
        overhead,
    }
}

fn tally_of(results: &[ProbeResult]) -> VerdictTally {
    let mut t = VerdictTally::default();
    for r in results {
        match r.verdict {
            Verdict::Identified(..) if r.correct => t.identified_correct += 1,
            Verdict::Identified(..) => t.identified_wrong += 1,
            Verdict::Unsure(_) => t.unsure += 1,
            Verdict::Special(..) => t.special += 1,
            Verdict::Invalid(_) => t.invalid += 1,
        }
    }
    t
}

/// Runs the full sweep: baseline, every `(defense, budget)` cell, then
/// the hardened-forest retrain and re-score.
///
/// `base_training` is the clean training set the `classifier` was trained
/// on; the hardened forest trains on it plus every defended vector the
/// sweep gathers. Fully deterministic in `seed`.
pub fn run_sweep(
    classifier: &CaaiClassifier,
    base_training: &Dataset,
    config: &SweepConfig,
    seed: u64,
) -> DefenseCurve {
    let probes_per_cell = ALL_IDENTIFIED.len() * config.seeds_per_algo;

    // Per-probe RNG derivation: mix algorithm and seed index. Every cell
    // replays the same per-probe streams, so a defended probe differs
    // from its baseline counterpart only through the defense — which is
    // exactly what `confusion_shift` wants to isolate.
    let probe_rng =
        |algo_i: usize, rep: usize| seeded(seed ^ ((algo_i as u64) << 24) ^ ((rep as u64) << 8));

    let run_cell = |prober_config: &ProberConfig| -> Vec<ProbeResult> {
        let mut results = Vec::with_capacity(probes_per_cell);
        for (algo_i, &algo) in ALL_IDENTIFIED.iter().enumerate() {
            for rep in 0..config.seeds_per_algo {
                let mut rng = probe_rng(algo_i, rep);
                results.push(probe_one(algo, prober_config, classifier, &mut rng));
            }
        }
        results
    };

    let baseline = run_cell(&ProberConfig::default());
    let baseline_tally = tally_of(&baseline);
    let baseline_accuracy = baseline_tally.identified_correct as f64 / probes_per_cell as f64;

    struct CellRun {
        kind: &'static str,
        budget: f64,
        results: Vec<ProbeResult>,
    }
    let mut runs: Vec<CellRun> = Vec::new();
    for kind in DEFENSE_KINDS {
        for &budget in &config.budgets {
            let spec = spec_for(kind, budget, config.shaping_cap);
            let prober_config = ProberConfig {
                defense: Some(spec),
                ..ProberConfig::default()
            };
            let results = run_cell(&prober_config);
            runs.push(CellRun {
                kind,
                budget,
                results,
            });
        }
    }

    // Hardened forest: clean training set + every defended vector.
    let mut hardened_set = base_training.clone();
    for run in &runs {
        for r in &run.results {
            if let Some((v, label)) = &r.vector {
                hardened_set.push(v.as_slice().to_vec(), label.index());
            }
        }
    }
    let mut train_rng = seeded(seed ^ 0xDEF3_17CE);
    let hardened = CaaiClassifier::train(&hardened_set, &mut train_rng);

    let cells = runs
        .into_iter()
        .map(|run| {
            let tally = tally_of(&run.results);
            let n = tally.total() as f64;
            let hardened_correct = run
                .results
                .iter()
                .filter(|r| match &r.vector {
                    Some((v, label)) => matches!(
                        hardened.classify(v),
                        Identification::Identified { class, .. } if class == *label
                    ),
                    None => false,
                })
                .count();
            let shifted = run
                .results
                .iter()
                .zip(baseline.iter())
                .filter(|(d, b)| d.verdict != b.verdict)
                .count();
            DefenseCell {
                defense: run.kind.to_string(),
                budget: run.budget,
                accuracy: tally.identified_correct as f64 / n,
                hardened_accuracy: hardened_correct as f64 / n,
                invalid_share: tally.invalid as f64 / n,
                unsure_share: tally.unsure as f64 / n,
                confusion_shift: shifted as f64 / n,
                measured_overhead: run.results.iter().map(|r| r.overhead).sum::<f64>() / n,
                tally,
            }
        })
        .collect();

    DefenseCurve {
        schema: DEFENSE_CURVE_SCHEMA.to_string(),
        seed,
        probes_per_cell,
        baseline_accuracy,
        baseline_tally,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{build_training_set, TrainingConfig};
    use caai_netem::ConditionDb;

    fn quick_setup() -> (CaaiClassifier, Dataset) {
        let db = ConditionDb::paper_2011();
        let mut rng = seeded(42);
        let data = build_training_set(&TrainingConfig::quick(2), &db, &mut rng);
        let classifier = CaaiClassifier::train(&data, &mut rng);
        (classifier, data)
    }

    #[test]
    fn sweep_produces_a_full_curve_and_is_deterministic() {
        let (classifier, data) = quick_setup();
        let config = SweepConfig {
            budgets: vec![0.1, 0.4],
            seeds_per_algo: 1,
            shaping_cap: 32,
        };
        let curve = run_sweep(&classifier, &data, &config, 7);
        assert_eq!(curve.schema, DEFENSE_CURVE_SCHEMA);
        assert_eq!(curve.cells.len(), DEFENSE_KINDS.len() * 2);
        assert_eq!(curve.probes_per_cell, ALL_IDENTIFIED.len());
        assert!(
            curve.baseline_accuracy > 0.8,
            "clean-path baseline should be accurate: {}",
            curve.baseline_accuracy
        );
        for cell in &curve.cells {
            assert!(cell.tally.total() == curve.probes_per_cell);
            assert!((0.0..=1.0).contains(&cell.accuracy));
            assert!(
                cell.measured_overhead <= cell.budget + 1e-6,
                "{} at {} overspent: {}",
                cell.defense,
                cell.budget,
                cell.measured_overhead
            );
        }
        let again = run_sweep(&classifier, &data, &config, 7);
        assert_eq!(again, curve, "sweep must be deterministic in its seed");
    }

    #[test]
    fn defenses_degrade_accuracy_as_budget_grows() {
        let (classifier, data) = quick_setup();
        let config = SweepConfig {
            budgets: vec![0.05, 0.5],
            seeds_per_algo: 1,
            shaping_cap: 32,
        };
        let curve = run_sweep(&classifier, &data, &config, 11);
        // At a generous budget, padding must hurt more than at a tight one
        // (>= because both may already floor out).
        let acc = |kind: &str, budget: f64| {
            curve
                .cells
                .iter()
                .find(|c| c.defense == kind && c.budget == budget)
                .expect("cell present")
                .accuracy
        };
        assert!(
            acc("padding", 0.5) <= acc("padding", 0.05) + 1e-9,
            "padding: more budget, more damage"
        );
        // Some defended cell must actually shift verdicts off the baseline.
        assert!(
            curve.cells.iter().any(|c| c.confusion_shift > 0.0),
            "defenses should move at least one verdict"
        );
    }

    #[test]
    fn spec_for_covers_every_kind_and_validates() {
        for kind in DEFENSE_KINDS {
            let spec = spec_for(kind, 0.2, 32);
            spec.validate().expect("sweep specs are valid");
        }
    }

    #[test]
    #[should_panic(expected = "unknown defense kind")]
    fn spec_for_rejects_unknown_kinds() {
        let _ = spec_for("teleport", 0.1, 32);
    }
}
