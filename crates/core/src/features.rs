//! CAAI Step 2: feature extraction (§V).
//!
//! From a valid trace CAAI extracts the two algorithm features of §III-B:
//!
//! * **Feature 1** — the multiplicative decrease parameter
//!   `β = w_b / w^B`, where `w_b` is the window at the *boundary RTT* (the
//!   round where the post-timeout slow start ends, i.e. the slow start
//!   threshold) and `w^B` the window right before the timeout;
//! * **Feature 2** — the window growth function, summarized by the offsets
//!   `G3 = w_{b+3} − w_b` and `G6 = w_{b+6} − w_b` (§V-C: two window sizes
//!   suffice, and offsets are `w_max`-independent).
//!
//! Boundary detection must tolerate ACK loss on the prober→server path:
//! equation (1) estimates the maximum ACK loss rate `L` as the mean plus
//! 95% confidence interval of the per-round loss estimates
//! `l_i = 2 − w_{i+1}/w_i`, clamped to [15%, 60%]; a round still counts as
//! slow start while `w_{i+1} ≥ (2 − L)·w_i`.
//!
//! The full feature vector of a server (§V-D) is
//! `[βᴬ, G3ᴬ, G6ᴬ, βᴮ, G3ᴮ, G6ᴮ, I(w^B_max ≥ 64)]`.

use caai_netem::stats::mean_plus_ci95;
use serde::{Deserialize, Serialize};

use crate::trace::{TracePair, WindowTrace};

/// Dimensionality of a CAAI feature vector (§V-D: seven elements).
pub const FEATURE_DIM: usize = 7;

/// Lower clamp of the ACK-loss estimate (§V-A: minimum 15%).
pub const ACK_LOSS_MIN: f64 = 0.15;
/// Upper clamp of the ACK-loss estimate (§V-A: maximum 60%).
pub const ACK_LOSS_MAX: f64 = 0.60;
/// Lower clamp of β (§V-B: 0.5, the smallest β of the 14 algorithms other
/// than WESTWOOD+).
pub const BETA_MIN: f64 = 0.5;
/// Upper clamp of β (§V-B).
pub const BETA_MAX: f64 = 2.0;

/// Features of a single trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceFeatures {
    /// Multiplicative decrease parameter; 0 when no boundary was found
    /// (§V-B, the WESTWOOD+ case).
    pub beta: f64,
    /// `w_{b+3} − w_b`, or 0 when unavailable.
    pub g3: f64,
    /// `w_{b+6} − w_b`, or 0 when unavailable.
    pub g6: f64,
    /// Index of the boundary round within the post-timeout trace (0-based),
    /// when found.
    pub boundary: Option<usize>,
    /// The ACK-loss estimate `L` used for boundary detection.
    pub ack_loss: f64,
}

impl TraceFeatures {
    /// All-zero features, used for unusable environment-B plateaus.
    pub fn zero() -> Self {
        TraceFeatures {
            beta: 0.0,
            g3: 0.0,
            g6: 0.0,
            boundary: None,
            ack_loss: ACK_LOSS_MIN,
        }
    }
}

/// The §V-D feature vector of one server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// `[βᴬ, G3ᴬ, G6ᴬ, βᴮ, G3ᴮ, G6ᴮ, I(w^B_max ≥ 64)]`.
    pub values: [f64; FEATURE_DIM],
}

impl FeatureVector {
    /// Builds the vector from per-environment features and the indicator.
    pub fn from_parts(a: TraceFeatures, b: TraceFeatures, b_reaches_64: bool) -> Self {
        FeatureVector {
            values: [
                a.beta,
                a.g3,
                a.g6,
                b.beta,
                b.g3,
                b.g6,
                if b_reaches_64 { 1.0 } else { 0.0 },
            ],
        }
    }

    /// The vector as a slice, for classifiers.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Human-readable element names, in order.
    pub fn element_names() -> [&'static str; FEATURE_DIM] {
        [
            "beta_A",
            "G3_A",
            "G6_A",
            "beta_B",
            "G3_B",
            "G6_B",
            "reach64_B",
        ]
    }
}

/// Estimates the maximum ACK loss rate `L` from post-timeout slow-start
/// rounds — equation (1) of §V-A, clamped to [15%, 60%].
///
/// Rounds are deemed slow start for the estimate while the window at least
/// multiplies by 1.4× (the floor implied by the 60% maximum loss rate).
pub fn estimate_ack_loss(post: &[u32]) -> f64 {
    let mut samples = Vec::new();
    for w in post.windows(2) {
        let (wi, wn) = (f64::from(w[0]), f64::from(w[1]));
        if wi >= 1.0 && wn >= 1.4 * wi {
            samples.push((2.0 - wn / wi).max(0.0));
        } else if wi >= 1.0 {
            break; // slow start has visibly ended
        }
    }
    mean_plus_ci95(&samples)
        .unwrap_or(ACK_LOSS_MIN)
        .clamp(ACK_LOSS_MIN, ACK_LOSS_MAX)
}

/// Extracts the per-trace features of §V-A/B/C.
///
/// The boundary search starts at the first post-timeout round whose window
/// reaches `w^B / 2` — β is at least 0.5 for every identified algorithm
/// except WESTWOOD+ (§V-B), whose recovery never gets that high, yielding
/// the paper's `β = 0` fingerprint — and looks for three consecutive
/// rounds that fail the slow-start test `w_i ≥ (2 − L)·w_{i−1}`; the first
/// of the three is the boundary RTT `b`.
pub fn extract(trace: &WindowTrace) -> TraceFeatures {
    if !trace.is_valid() {
        return TraceFeatures::zero();
    }
    let Some(w_before) = trace.w_before_timeout() else {
        return TraceFeatures::zero();
    };
    let post = &trace.post;
    let ack_loss = estimate_ack_loss(post);
    let threshold = 2.0 - ack_loss;
    let floor = f64::from(w_before) / 2.0;

    let mut boundary: Option<usize> = None;
    for i in 1..post.len() {
        if f64::from(post[i]) < floor {
            continue;
        }
        // Three consecutive rounds i, i+1, i+2 must all fail the
        // slow-start test against their predecessors.
        let mut all_fail = true;
        for j in i..(i + 3) {
            match (post.get(j - 1), post.get(j)) {
                (Some(&prev), Some(&cur)) if prev > 0 => {
                    if f64::from(cur) >= threshold * f64::from(prev) {
                        all_fail = false;
                        break;
                    }
                }
                // Trace too short to disprove: treat the available rounds
                // as the evidence.
                (Some(&prev), None) if prev > 0 => break,
                _ => {
                    all_fail = false;
                    break;
                }
            }
        }
        if all_fail {
            boundary = Some(i);
            break;
        }
    }

    match boundary {
        None => TraceFeatures {
            beta: 0.0,
            g3: 0.0,
            g6: 0.0,
            boundary: None,
            ack_loss,
        },
        Some(b) => {
            let w_b = f64::from(post[b]);
            let beta = (w_b / f64::from(w_before)).clamp(BETA_MIN, BETA_MAX);
            let g3 = post.get(b + 3).map_or(0.0, |&w| f64::from(w) - w_b);
            let g6 = post.get(b + 6).map_or(0.0, |&w| f64::from(w) - w_b);
            TraceFeatures {
                beta,
                g3,
                g6,
                boundary: Some(b),
                ack_loss,
            }
        }
    }
}

/// Extracts the full §V-D feature vector from a trace pair.
pub fn extract_pair(pair: &TracePair) -> FeatureVector {
    let a = extract(&pair.env_a);
    let b = if pair.env_b.is_valid() {
        extract(&pair.env_b)
    } else {
        TraceFeatures::zero()
    };
    let reaches = pair.env_b.max_window() >= 64;
    FeatureVector::from_parts(a, b, reaches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_netem::EnvironmentId;

    fn mk_trace(pre_last: u32, post: Vec<u32>) -> WindowTrace {
        WindowTrace {
            env: EnvironmentId::A,
            wmax_threshold: 512,
            mss: 100,
            pre: vec![2, 4, 8, pre_last],
            post,
            invalid: None,
        }
    }

    /// A clean RENO recovery: slow start to 257 (ssthresh 256 plus the
    /// spill-over ACKs), then +1 per round — what the prober measures for
    /// a RENO server with w^B = 512.
    fn reno_post() -> Vec<u32> {
        let mut v = vec![1, 2, 4, 8, 16, 32, 64, 128, 256];
        for i in 1..=9 {
            v.push(256 + i);
        }
        v
    }

    #[test]
    fn reno_beta_is_half_and_growth_linear() {
        let t = mk_trace(512, reno_post());
        let f = extract(&t);
        // Boundary search floor is w^B/2 = 256: the 256-round still passes
        // the doubling test, so the boundary lands on the 257-round.
        assert_eq!(f.boundary, Some(9));
        assert!((f.beta - 257.0 / 512.0).abs() < 0.01, "beta {}", f.beta);
        assert_eq!(f.g3, 3.0);
        assert_eq!(f.g6, 6.0);
    }

    #[test]
    fn stcp_beta_survives_the_partial_doubling_round() {
        // STCP: ssthresh = 448 = 0.875·512; slow start passes 256 and ends
        // mid-round at 448; CA grows 2%/round.
        let post = vec![
            1, 2, 4, 8, 16, 32, 64, 128, 256, 448, 457, 466, 475, 484, 494, 504, 514, 524,
        ];
        let t = mk_trace(512, post);
        let f = extract(&t);
        assert!((f.beta - 0.875).abs() < 0.01, "beta {}", f.beta);
        assert_eq!(f.boundary, Some(9), "boundary at the 448 round");
        assert!((f.g3 - 27.0).abs() <= 1.0, "g3 {}", f.g3);
    }

    #[test]
    fn westwood_never_reaching_half_yields_beta_zero() {
        // ssthresh ≈ 113 ≪ 512/2: boundary search floor is never reached.
        let mut post = vec![1, 2, 4, 8, 16, 32, 64, 113];
        for i in 1..=10 {
            post.push(113 + i);
        }
        let t = mk_trace(512, post);
        let f = extract(&t);
        assert_eq!(f.beta, 0.0, "WESTWOOD+'s fingerprint");
        assert_eq!(f.boundary, None);
    }

    #[test]
    fn ack_loss_estimate_from_clean_doubling_is_the_floor() {
        let l = estimate_ack_loss(&reno_post());
        assert_eq!(l, ACK_LOSS_MIN);
    }

    #[test]
    fn ack_loss_estimate_rises_with_lossy_slow_start() {
        // 30% ACK loss: windows multiply by ~1.7.
        let post = vec![10, 17, 29, 49, 83, 141, 240, 408, 450, 452, 454];
        let l = estimate_ack_loss(&post);
        assert!(l > 0.25 && l <= ACK_LOSS_MAX, "L = {l}");
    }

    #[test]
    fn beta_clamps_to_half_from_below() {
        // A noisy boundary slightly below w^B/2 still reads as β = 0.5...
        // (clamp), provided the floor is reached later.
        let post = vec![
            1, 2, 4, 8, 16, 32, 64, 128, 260, 262, 264, 266, 268, 270, 272, 274, 276, 278,
        ];
        let t = mk_trace(520, post);
        let f = extract(&t);
        assert!(f.beta >= BETA_MIN);
    }

    #[test]
    fn invalid_traces_yield_zero_features() {
        let mut t = mk_trace(520, reno_post());
        t.invalid = Some(crate::trace::InvalidReason::NeverExceededThreshold);
        assert_eq!(extract(&t), TraceFeatures::zero());
    }

    #[test]
    fn pair_vector_layout_and_indicator() {
        let a = mk_trace(520, reno_post());
        let mut b = mk_trace(520, reno_post());
        b.env = EnvironmentId::B;
        let pair = TracePair { env_a: a, env_b: b };
        let v = extract_pair(&pair);
        assert_eq!(v.values[6], 1.0, "environment B reached 64");
        assert!(v.values[0] > 0.0);
        assert_eq!(v.as_slice().len(), FEATURE_DIM);
    }

    #[test]
    fn vegas_style_pair_has_zero_b_features() {
        let a = mk_trace(520, reno_post());
        let mut b = mk_trace(520, vec![]);
        b.env = EnvironmentId::B;
        b.pre = vec![2, 4, 8, 16, 20, 21, 20];
        b.invalid = Some(crate::trace::InvalidReason::NeverExceededThreshold);
        let pair = TracePair { env_a: a, env_b: b };
        let v = extract_pair(&pair);
        assert_eq!(v.values[3], 0.0);
        assert_eq!(v.values[4], 0.0);
        assert_eq!(v.values[6], 0.0, "indicator off below 64");
    }

    #[test]
    fn growth_offsets_default_to_zero_when_trace_ends_early() {
        // Boundary found at the third-to-last round: G6 unavailable.
        let post = vec![
            1, 2, 4, 8, 16, 32, 64, 128, 256, 300, 301, 302, 303, 304, 305, 306, 260, 261,
        ];
        let mut t = mk_trace(520, post);
        t.post.truncate(18);
        let f = extract(&t);
        if let Some(b) = f.boundary {
            if b + 6 >= t.post.len() {
                assert_eq!(f.g6, 0.0);
            }
        }
    }
}
