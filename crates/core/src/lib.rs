//! # caai-core
//!
//! The CAAI pipeline — the primary contribution of Yang et al., "TCP
//! Congestion Avoidance Algorithm Identification" (ICDCS'11 / ToN'14).
//!
//! CAAI actively identifies the TCP congestion avoidance algorithm of a
//! remote web server in three steps:
//!
//! 1. **Trace gathering** ([`prober`]): emulate network environments A
//!    (fixed 1.0 s RTT) and B (0.8 s → 1.0 s steps) purely through ACK
//!    scheduling, force a retransmission timeout by withholding ACKs once
//!    the window passes a `w_max` threshold, and record the per-RTT window
//!    trace (§IV).
//! 2. **Feature extraction** ([`features`]): from each trace, recover the
//!    multiplicative decrease parameter β and the window growth offsets
//!    G3/G6, robustly to ACK loss; assemble the 7-element vector (§V).
//! 3. **Classification** ([`classify`]): a random forest over a training
//!    set of 14 algorithms × 4 thresholds × 100 network conditions
//!    ([`training`]), with a 40% confidence floor (§VI).
//!
//! [`census`] drives the §VII Internet measurement against a synthetic
//! population, and [`special`] detects the §VII-B special-case traces.
//!
//! ## Example: identify one server end to end
//!
//! ```
//! use caai_core::prober::{Prober, ProberConfig};
//! use caai_core::server_under_test::ServerUnderTest;
//! use caai_core::features::extract_pair;
//! use caai_congestion::AlgorithmId;
//! use caai_netem::PathConfig;
//!
//! let server = ServerUnderTest::ideal(AlgorithmId::CubicV2);
//! let prober = Prober::new(ProberConfig::default());
//! let mut rng = caai_netem::rng::seeded(42);
//! let outcome = prober.gather(&server, &PathConfig::clean(), &mut rng);
//! let pair = outcome.pair.expect("ideal server yields a trace pair");
//! let vector = extract_pair(&pair);
//! // CUBIC v2's multiplicative decrease parameter is ~0.7.
//! assert!((vector.values[0] - 0.7).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod census;
pub mod classes;
pub mod classify;
pub mod defense_eval;
pub mod features;
pub mod prober;
pub mod server_under_test;
pub mod special;
pub mod trace;
pub mod training;
pub mod transport;

pub use census::{Census, CensusAggregates, CensusReport, Verdict};
pub use classes::ClassLabel;
pub use classify::{CaaiClassifier, Identification};
pub use defense_eval::{
    run_sweep, spec_for, DefenseCell, DefenseCurve, SweepConfig, DEFENSE_CURVE_SCHEMA,
    DEFENSE_KINDS,
};
pub use features::{extract, extract_pair, FeatureVector, TraceFeatures, FEATURE_DIM};
pub use prober::{GatherOutcome, Prober, ProberConfig};
pub use server_under_test::ServerUnderTest;
pub use special::SpecialCase;
pub use trace::{InvalidReason, TracePair, WindowTrace, POST_TIMEOUT_ROUNDS};
pub use training::{build_training_set, TrainingConfig};
pub use transport::{ProbeTransport, SimTransport};
