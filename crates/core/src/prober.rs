//! CAAI Step 1: trace gathering (§IV).
//!
//! The prober emulates network environments A and B purely through its own
//! ACK behaviour: it acknowledges every data packet (non-delayed ACKs),
//! defers each ACK so the server experiences the scheduled RTT, withholds
//! ACKs once the measured window exceeds the `w_max` threshold to force a
//! genuine retransmission timeout, sends a duplicate ACK after the timeout
//! to defeat F-RTO (§IV-C), waits between connections to defeat ssthresh
//! caching (§IV-C), ACKs "as if no loss" on the data path (§IV-C), and
//! measures the per-round window from the highest sequence number received
//! in each emulated round (§IV-D). It walks the `w_max` ladder
//! 512 → 256 → 128 → 64 until both environments yield usable traces
//! (§IV-B).

use caai_netem::path::DataFate;
use caai_netem::{
    DefenseOverhead, DefenseSpec, DefenseState, EnvironmentId, PathConfig, Phase, RttSchedule,
};
use caai_obs::{
    span_begin_at, GatherFinished, NullSubscriber, RungAttemptEnded, RungAttemptStarted, SpanKind,
    Subscriber,
};
use caai_tcpsim::{AckPacket, TcpServer, WirePacket};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::server_under_test::ServerUnderTest;
use crate::trace::{InvalidReason, TracePair, WindowTrace, POST_TIMEOUT_ROUNDS};

/// Prober configuration (§IV-B defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProberConfig {
    /// `w_max` thresholds tried in decreasing order.
    pub wmax_ladder: Vec<u32>,
    /// MSS proposed in the SYN (the smallest rung of the MSS ladder; the
    /// server may round it up to its minimum, Table II).
    pub proposed_mss: u32,
    /// Post-timeout rounds to gather (18 per §IV-E).
    pub post_timeout_rounds: usize,
    /// Safety cap on pre-timeout rounds per attempt.
    pub max_pre_rounds: usize,
    /// Consecutive rounds without a new per-round window maximum before
    /// the attempt concludes the threshold is unreachable (the Fig. 13
    /// stalled-window case: a ceiling below `w_max`). Giving up at the
    /// first visible plateau instead of burning the full
    /// [`max_pre_rounds`](Self::max_pre_rounds) keeps the data a wasted
    /// high-rung attempt consumes proportional to the ceiling, which is
    /// what lets window-limited servers with ordinary pages still reach
    /// their usable rung. `0` disables the early exit. The default (8)
    /// clears every identified algorithm's transient plateaus (CUBIC's
    /// origin flat spot spans ~3 rounds, BIC's binary-search convergence
    /// keeps probing new maxima) while VEGAS-style and ceiling plateaus
    /// stall for good.
    pub stall_rounds: u32,
    /// Send the duplicate ACK that defeats F-RTO (§IV-C). On by default;
    /// disabling it reproduces the F-RTO failure mode.
    pub frto_countermeasure: bool,
    /// Idle time between connections, defeating ssthresh caching (§IV-C
    /// waits "some time (like 10 min)"). Must strictly exceed the metric
    /// cache lifetime (`caai_tcpsim::cache::DEFAULT_TTL`, 600 s): a wait of
    /// exactly the TTL still hits an inclusive cache.
    pub inter_connection_wait: f64,
    /// How many re-armed RTOs to wait out before declaring the server deaf
    /// to timeouts.
    pub max_rto_waits: u32,
    /// Traffic-analysis defense the *server* deploys against the probe
    /// (ROADMAP item 4). `None` — the default, and the paper's setting —
    /// leaves server traffic untouched. When set, every burst the server
    /// transmits passes through the defense transforms before the path,
    /// and cumulative ACKs are translated back from the inflated wire
    /// sequence space before the server's TCP stack sees them (see
    /// [`caai_netem::defense`]).
    pub defense: Option<DefenseSpec>,
}

impl Default for ProberConfig {
    fn default() -> Self {
        ProberConfig {
            wmax_ladder: vec![512, 256, 128, 64],
            proposed_mss: 100,
            post_timeout_rounds: POST_TIMEOUT_ROUNDS,
            max_pre_rounds: 50,
            stall_rounds: 8,
            frto_countermeasure: true,
            inter_connection_wait: 630.0,
            max_rto_waits: 2,
            defense: None,
        }
    }
}

impl ProberConfig {
    /// A configuration pinned to a single `w_max` rung (used when
    /// collecting training vectors for a specific rung, §VII-A).
    pub fn fixed_wmax(wmax: u32) -> Self {
        ProberConfig {
            wmax_ladder: vec![wmax],
            ..ProberConfig::default()
        }
    }
}

/// Result of a full gathering run against one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatherOutcome {
    /// The usable environment-A/B trace pair, when gathering succeeded.
    pub pair: Option<TracePair>,
    /// All failed attempts (for diagnostics and the census's invalid-trace
    /// accounting).
    pub failed_attempts: Vec<WindowTrace>,
    /// Measured overhead of the server's traffic-analysis defense, summed
    /// over every connection of the ladder walk. `None` when the prober
    /// config carries no [`ProberConfig::defense`].
    pub defense_overhead: Option<DefenseOverhead>,
}

impl GatherOutcome {
    /// The dominant reason gathering failed, if it did.
    pub fn failure_reason(&self) -> Option<InvalidReason> {
        if self.pair.is_some() {
            return None;
        }
        let reasons: Vec<InvalidReason> = self
            .failed_attempts
            .iter()
            .filter_map(|t| t.invalid)
            .collect();
        for preferred in [
            InvalidReason::TransportAborted,
            InvalidReason::PageTooShort,
            InvalidReason::NoTimeoutResponse,
            InvalidReason::RecoveryTooShort,
            InvalidReason::NeverExceededThreshold,
        ] {
            if reasons.contains(&preferred) {
                return Some(preferred);
            }
        }
        Some(InvalidReason::NeverExceededThreshold)
    }
}

/// Which endpoint tore a probing connection down.
///
/// The prober abandons connections itself (threshold never crossed, server
/// deaf to the timeout, trace complete); the server side closes when its
/// data budget runs dry mid-probe. A wire observer can tell the two apart
/// by who sends the FIN, which is exactly what `caai-capture`'s ingestion
/// uses to reconstruct [`InvalidReason`]s from a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloseInitiator {
    /// The prober closed (abandoned the attempt or finished the trace).
    Prober,
    /// The server finished its data and closed first.
    Server,
}

/// Observer of the packet exchange a probe attempt produces.
///
/// [`Prober::gather_with_tap`] reports every wire-visible event from the
/// prober's vantage point: data packets as they *arrive* (after path loss,
/// duplication and reordering — lost packets are never reported), and ACKs
/// as they are *sent* (before any ACK loss downstream). Sequence numbers
/// are in packets (MSS units), times in emulated seconds. The pcap writer
/// in `caai-capture` implements this to render a byte-valid capture of a
/// simulated probe session; the default methods do nothing, so taps
/// implement only what they need.
pub trait ProbeTap {
    /// A new probing connection opened at `now` for `(env, wmax)`.
    fn connection_opened(
        &mut self,
        now: f64,
        env: EnvironmentId,
        wmax: u32,
        proposed_mss: u32,
        granted_mss: u32,
    ) {
        let _ = (now, env, wmax, proposed_mss, granted_mss);
    }

    /// One data packet (packet-unit sequence `seq`) arrived at `now`.
    /// `duplicate` marks a spurious path-duplicated copy.
    fn data_received(&mut self, now: f64, seq: u64, duplicate: bool) {
        let _ = (now, seq, duplicate);
    }

    /// The prober sent a cumulative ACK for everything below `cum_ack` at
    /// `now`. `duplicate` marks the F-RTO counter-measure duplicate ACK.
    fn ack_sent(&mut self, now: f64, cum_ack: u64, duplicate: bool) {
        let _ = (now, cum_ack, duplicate);
    }

    /// The connection closed at `now`.
    fn connection_closed(&mut self, now: f64, initiator: CloseInitiator) {
        let _ = (now, initiator);
    }
}

/// A tap that ignores every event (the default for untapped gathering).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopTap;

impl ProbeTap for NoopTap {}

/// The obs-event environment tag for a netem environment id.
fn obs_environment(env: EnvironmentId) -> caai_obs::Environment {
    match env {
        EnvironmentId::A => caai_obs::Environment::A,
        EnvironmentId::B => caai_obs::Environment::B,
    }
}

/// The CAAI prober.
#[derive(Debug, Clone, Default)]
pub struct Prober {
    config: ProberConfig,
}

/// A packet sitting in the prober's reorder buffer: late or duplicated
/// arrivals surface in the following round.
#[derive(Debug, Clone, Copy)]
struct CarriedPacket {
    seq: u64,
    duplicate: bool,
}

impl Prober {
    /// Creates a prober.
    pub fn new(config: ProberConfig) -> Self {
        Prober { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ProberConfig {
        &self.config
    }

    /// Runs the full §IV protocol: walk the `w_max` ladder, gather
    /// environment A then B at each rung, stop at the first usable pair.
    ///
    /// The ladder exists to find the threshold the server's window can
    /// *exceed* (§IV-B), so only [`InvalidReason::NeverExceededThreshold`]
    /// descends to the next rung. Every other failure — a page too short
    /// to sustain the transfer, a server deaf to the emulated timeout, a
    /// truncated recovery — would fail the same way at any rung (Table IV
    /// counts such servers invalid, e.g. the 30.17% with "no long enough
    /// Web pages"), so the walk aborts immediately.
    pub fn gather(
        &self,
        server: &ServerUnderTest,
        path: &PathConfig,
        rng: &mut impl Rng,
    ) -> GatherOutcome {
        self.gather_with_tap(server, path, rng, &mut NoopTap)
    }

    /// [`gather`](Self::gather) with a structured-event subscriber: every
    /// rung attempt and the walk's outcome are reported as they happen
    /// (see [`caai_obs::Subscriber`]). The outcome is identical to the
    /// unobserved call.
    pub fn gather_obs<S: Subscriber>(
        &self,
        server: &ServerUnderTest,
        path: &PathConfig,
        rng: &mut impl Rng,
        obs: &S,
    ) -> GatherOutcome {
        self.gather_with_tap_obs(server, path, rng, &mut NoopTap, obs)
    }

    /// [`gather`](Self::gather) with a wire observer: the tap sees every
    /// packet of every connection of the ladder walk (see [`ProbeTap`]).
    /// The gathered outcome is identical to the untapped call.
    pub fn gather_with_tap(
        &self,
        server: &ServerUnderTest,
        path: &PathConfig,
        rng: &mut impl Rng,
        tap: &mut dyn ProbeTap,
    ) -> GatherOutcome {
        self.gather_with_tap_obs(server, path, rng, tap, &NullSubscriber)
    }

    /// [`gather_with_tap`](Self::gather_with_tap) plus a structured-event
    /// subscriber. Tap and subscriber are orthogonal: the tap sees the
    /// packet exchange, the subscriber sees the attempt/outcome events.
    pub fn gather_with_tap_obs<S: Subscriber>(
        &self,
        server: &ServerUnderTest,
        path: &PathConfig,
        rng: &mut impl Rng,
        tap: &mut dyn ProbeTap,
        obs: &S,
    ) -> GatherOutcome {
        let mut now = 0.0;
        let mut failed = Vec::new();
        let mut pair = None;
        let mut overhead = DefenseOverhead::default();
        for &wmax in &self.config.wmax_ladder {
            let (trace_a, end_a, ovh_a) = self.gather_trace_observed(
                server,
                EnvironmentId::A,
                wmax,
                now,
                path,
                rng,
                tap,
                obs,
            );
            overhead.absorb(ovh_a);
            now = end_a + self.config.inter_connection_wait;
            if !trace_a.is_valid() {
                let descend = trace_a.invalid == Some(InvalidReason::NeverExceededThreshold);
                failed.push(trace_a);
                if descend {
                    continue;
                }
                break;
            }
            let (trace_b, end_b, ovh_b) = self.gather_trace_observed(
                server,
                EnvironmentId::B,
                wmax,
                now,
                path,
                rng,
                tap,
                obs,
            );
            overhead.absorb(ovh_b);
            now = end_b + self.config.inter_connection_wait;
            if trace_b.usable_for_classification() {
                pair = Some(TracePair {
                    env_a: trace_a,
                    env_b: trace_b,
                });
                break;
            }
            let descend = trace_b.invalid == Some(InvalidReason::NeverExceededThreshold);
            failed.push(trace_a);
            failed.push(trace_b);
            if !descend {
                break;
            }
        }
        let outcome = GatherOutcome {
            pair,
            failed_attempts: failed,
            defense_overhead: self.config.defense.as_ref().map(|_| overhead),
        };
        obs.on_gather_finished(&GatherFinished {
            usable: outcome.pair.is_some(),
            failed_attempts: outcome.failed_attempts.len() as u32,
            wmax: outcome.pair.as_ref().map(|p| p.wmax_threshold()),
        });
        outcome
    }

    /// Gathers one window trace in one environment at one `w_max` rung.
    /// Returns the trace and the simulation time when the connection ended.
    pub fn gather_trace(
        &self,
        server: &ServerUnderTest,
        env: EnvironmentId,
        wmax: u32,
        start: f64,
        path: &PathConfig,
        rng: &mut impl Rng,
    ) -> (WindowTrace, f64) {
        self.gather_trace_with_tap(server, env, wmax, start, path, rng, &mut NoopTap)
    }

    /// [`gather_trace`](Self::gather_trace) with a wire observer (see
    /// [`ProbeTap`]). The gathered trace is identical to the untapped call.
    #[allow(clippy::too_many_arguments)]
    pub fn gather_trace_with_tap(
        &self,
        server: &ServerUnderTest,
        env: EnvironmentId,
        wmax: u32,
        start: f64,
        path: &PathConfig,
        rng: &mut impl Rng,
        tap: &mut dyn ProbeTap,
    ) -> (WindowTrace, f64) {
        self.gather_trace_with_tap_obs(server, env, wmax, start, path, rng, tap, &NullSubscriber)
    }

    /// [`gather_trace_with_tap`](Self::gather_trace_with_tap) plus a
    /// structured-event subscriber: one [`RungAttemptStarted`] /
    /// [`RungAttemptEnded`] pair brackets the attempt, with the round
    /// count, validity, and whether the Fig. 13 stall early-exit fired.
    #[allow(clippy::too_many_arguments)]
    pub fn gather_trace_with_tap_obs<S: Subscriber>(
        &self,
        server: &ServerUnderTest,
        env: EnvironmentId,
        wmax: u32,
        start: f64,
        path: &PathConfig,
        rng: &mut impl Rng,
        tap: &mut dyn ProbeTap,
        obs: &S,
    ) -> (WindowTrace, f64) {
        let (trace, end, _) =
            self.gather_trace_observed(server, env, wmax, start, path, rng, tap, obs);
        (trace, end)
    }

    /// [`gather_trace_with_tap_obs`](Self::gather_trace_with_tap_obs) plus
    /// the attempt's measured defense overhead (for the ladder walk's
    /// accounting).
    #[allow(clippy::too_many_arguments)]
    fn gather_trace_observed<S: Subscriber>(
        &self,
        server: &ServerUnderTest,
        env: EnvironmentId,
        wmax: u32,
        start: f64,
        path: &PathConfig,
        rng: &mut impl Rng,
        tap: &mut dyn ProbeTap,
        obs: &S,
    ) -> (WindowTrace, f64, DefenseOverhead) {
        obs.on_rung_attempt_started(&RungAttemptStarted {
            environment: obs_environment(env),
            wmax,
        });
        let span = span_begin_at(
            obs,
            SpanKind::RungAttempt,
            i64::from(wmax),
            matches!(env, EnvironmentId::B) as i64,
            start,
        );
        let (trace, end, stall_exited, overhead) =
            self.gather_trace_inner(server, env, wmax, start, path, rng, tap, obs);
        span.end_at(obs, end);
        obs.on_rung_attempt_ended(&RungAttemptEnded {
            environment: obs_environment(env),
            wmax,
            rounds: (trace.pre.len() + trace.post.len()) as u32,
            valid: trace.is_valid(),
            stalled: stall_exited,
            invalid_reason: trace.invalid.map(InvalidReason::name),
        });
        (trace, end, overhead)
    }

    /// The attempt body. The extra `bool` reports whether the Fig. 13
    /// stall early-exit ended phase 1; the [`DefenseOverhead`] is the
    /// connection's defense accounting (zero when undefended).
    #[allow(clippy::too_many_arguments)]
    fn gather_trace_inner<S: Subscriber>(
        &self,
        server: &ServerUnderTest,
        env: EnvironmentId,
        wmax: u32,
        start: f64,
        path: &PathConfig,
        rng: &mut impl Rng,
        tap: &mut dyn ProbeTap,
        obs: &S,
    ) -> (WindowTrace, f64, bool, DefenseOverhead) {
        let schedule = RttSchedule::new(env);
        let granted_mss = server.granted_mss(self.config.proposed_mss);
        let mut conn = server.connect(self.config.proposed_mss, start);
        let mut now = start;
        // Per-connection defense state: the wire-sequence renumbering must
        // be consistent within a connection (retransmissions reuse their
        // original mapping) but resets with every new connection.
        let mut defense = self.config.defense.as_ref().map(DefenseState::new);
        tap.connection_opened(now, env, wmax, self.config.proposed_mss, granted_mss);

        let mut trace = WindowTrace {
            env,
            wmax_threshold: wmax,
            mss: granted_mss,
            pre: Vec::new(),
            post: Vec::new(),
            invalid: None,
        };

        // ---- Phase 1: grow the window past the threshold. -------------
        let mut prev_seqmax: i64 = -1;
        let mut prober_cum: u64 = 0; // highest cumulative ACK sent (wire space)
        let mut server_cum: u64 = 0; // highest cum-ack delivered (real space)
        let mut carry: Vec<CarriedPacket> = Vec::new();
        let mut crossed = false;
        let mut best_w = 0u32; // largest per-round window so far
        let mut stalled = 0u32; // rounds since `best_w` last grew
        let mut stall_exited = false; // the Fig. 13 early exit fired

        for round in 1..=self.config.max_pre_rounds as u32 {
            let round_span = span_begin_at(obs, SpanKind::Round, i64::from(round), 0, now);
            let rtt = schedule.rtt(Phase::BeforeTimeout, round);
            let segs = conn.transmit(now);
            let defense_holds = defense.as_ref().is_some_and(DefenseState::has_held);
            if segs.is_empty() && carry.is_empty() && !defense_holds {
                if conn.finished() {
                    trace.invalid = Some(InvalidReason::PageTooShort);
                    server.disconnect(&conn, now);
                    tap.connection_closed(now, CloseInitiator::Server);
                    round_span.end_at(obs, now);
                    return (trace, now, stall_exited, overhead_of(&defense));
                }
                // All ACKs of the previous round were lost: wait for the
                // server's own (unplanned) RTO and keep going.
                if let Some(deadline) = conn.rto_deadline() {
                    if deadline <= now + rtt {
                        conn.fire_rto(deadline.max(now));
                    }
                }
                trace.pre.push(0);
                now += rtt;
                round_span.end_at(obs, now);
                continue;
            }

            let wire = to_wire(&segs, defense.as_mut(), rng);
            let (received, next_carry) = deliver(&wire, &mut carry, path, rng);
            for p in &received {
                tap.data_received(now, p.seq, p.duplicate);
            }
            let w = measure(&received, &mut prev_seqmax);
            trace.pre.push(w);
            carry = next_carry;

            if w > wmax {
                crossed = true;
                round_span.end_at(obs, now);
                break; // withhold this round's ACKs: emulate the timeout
            }

            let acks = build_acks(&received, &mut prober_cum, rtt);
            now += rtt;
            for ack in acks {
                tap.ack_sent(now, ack.cum_ack, false);
                if path.ack_fate(rng) == caai_netem::AckFate::Delivered {
                    deliver_ack(&mut conn, defense.as_ref(), &mut server_cum, now, ack);
                }
            }

            // Fig. 13 early exit: the window has visibly stopped growing
            // below the threshold — a ceiling (or a VEGAS-style plateau)
            // it will never cross. Waiting out `max_pre_rounds` would only
            // burn the page budget the next rung needs.
            if w > best_w {
                best_w = w;
                stalled = 0;
            } else {
                stalled += 1;
                if self.config.stall_rounds > 0 && stalled >= self.config.stall_rounds {
                    stall_exited = true;
                    round_span.end_at(obs, now);
                    break;
                }
            }
            round_span.end_at(obs, now);
        }

        if !crossed {
            trace.invalid = Some(InvalidReason::NeverExceededThreshold);
            server.disconnect(&conn, now);
            tap.connection_closed(now, CloseInitiator::Prober);
            return (trace, now, stall_exited, overhead_of(&defense));
        }

        // The emulated timeout destroys the round structure any held
        // packets were delayed into; a real shaper would flush on the
        // retransmission-timeout stall too.
        if let Some(d) = defense.as_mut() {
            d.drop_held();
        }

        // ---- Phase 2: the emulated timeout. ----------------------------
        let mut responded = false;
        for _ in 0..=self.config.max_rto_waits {
            let Some(deadline) = conn.rto_deadline() else {
                break;
            };
            now = now.max(deadline);
            if conn.fire_rto(now) {
                responded = true;
                break;
            }
        }
        if !responded {
            trace.invalid = Some(InvalidReason::NoTimeoutResponse);
            server.disconnect(&conn, now);
            tap.connection_closed(now, CloseInitiator::Prober);
            return (trace, now, stall_exited, overhead_of(&defense));
        }

        // ---- Phase 3: recovery, 18 rounds (§IV-E). ----------------------
        prev_seqmax = i64::MIN; // re-anchored at the first retransmission
        carry.clear();
        let mut first_post_round = true;
        let mut post_round: u32 = 1;
        while trace.post.len() < self.config.post_timeout_rounds {
            let round_span = span_begin_at(obs, SpanKind::Round, i64::from(post_round), 1, now);
            let rtt = schedule.rtt(Phase::AfterTimeout, post_round);
            let segs = conn.transmit(now);
            let defense_holds = defense.as_ref().is_some_and(DefenseState::has_held);
            if segs.is_empty() && carry.is_empty() && !defense_holds {
                if conn.finished() {
                    trace.invalid = Some(InvalidReason::RecoveryTooShort);
                    server.disconnect(&conn, now);
                    tap.connection_closed(now, CloseInitiator::Server);
                    round_span.end_at(obs, now);
                    return (trace, now, stall_exited, overhead_of(&defense));
                }
                if let Some(deadline) = conn.rto_deadline() {
                    if deadline <= now + rtt {
                        conn.fire_rto(deadline.max(now));
                    }
                }
                trace.post.push(0);
                now += rtt;
                post_round += 1;
                round_span.end_at(obs, now);
                continue;
            }

            let wire = to_wire(&segs, defense.as_mut(), rng);
            let (received, next_carry) = deliver(&wire, &mut carry, path, rng);
            for p in &received {
                tap.data_received(now, p.seq, p.duplicate);
            }
            if prev_seqmax == i64::MIN {
                if let Some(first) = received.iter().map(|p| p.seq).min() {
                    prev_seqmax = first as i64 - 1;
                }
            }
            let w = if prev_seqmax == i64::MIN {
                0
            } else {
                measure(&received, &mut prev_seqmax)
            };
            trace.post.push(w);
            carry = next_carry;

            let mut acks = Vec::new();
            if first_post_round && self.config.frto_countermeasure && !received.is_empty() {
                // §IV-C: one duplicate ACK aborts F-RTO and forces
                // conventional timeout recovery. Harmless otherwise.
                acks.push(AckPacket::duplicate(prober_cum));
            }
            first_post_round = first_post_round && received.is_empty();
            acks.extend(build_acks(&received, &mut prober_cum, rtt));
            now += rtt;
            for ack in acks {
                // Duplicate ACKs (the F-RTO counter-measure) carry no RTT
                // sample; that is how they are recognizable here too.
                tap.ack_sent(now, ack.cum_ack, ack.rtt == 0.0);
                if path.ack_fate(rng) == caai_netem::AckFate::Delivered {
                    deliver_ack(&mut conn, defense.as_ref(), &mut server_cum, now, ack);
                }
            }
            post_round += 1;
            round_span.end_at(obs, now);
        }

        server.disconnect(&conn, now);
        tap.connection_closed(now, CloseInitiator::Prober);
        (trace, now, stall_exited, overhead_of(&defense))
    }
}

/// The overhead a defended connection accumulated (zero when undefended).
fn overhead_of(defense: &Option<DefenseState>) -> DefenseOverhead {
    defense.as_ref().map(|d| d.overhead()).unwrap_or_default()
}

/// Runs one transmit burst through the defense, or passes it straight to
/// the wire when the server deploys none. The undefended mapping is the
/// identity, so every downstream consumer (path fates, window
/// measurement, ACK construction) behaves byte-identically to the
/// pre-defense code.
fn to_wire(
    segs: &[caai_tcpsim::Segment],
    defense: Option<&mut DefenseState>,
    rng: &mut impl Rng,
) -> Vec<WirePacket> {
    match defense {
        Some(d) => d.on_burst(segs, rng),
        None => segs.iter().map(|s| WirePacket::data(s.seq)).collect(),
    }
}

/// Delivers one prober ACK to the server's TCP stack, translating it out
/// of the defense's wire sequence space first.
///
/// A real padding middlebox strips acknowledgements that only cover dummy
/// packets before they reach TCP — a cumulative ACK that does not advance
/// the real-space cumulative point is dropped here for the same reason
/// (delivering it would masquerade as a duplicate ACK and trigger fast
/// retransmit). The F-RTO counter-measure duplicate (recognizable by its
/// missing RTT sample) is intentionally a non-advancing ACK and always
/// goes through.
fn deliver_ack(
    conn: &mut TcpServer,
    defense: Option<&DefenseState>,
    server_cum: &mut u64,
    now: f64,
    ack: AckPacket,
) {
    let real = match defense {
        Some(d) => d.unmap_ack(ack.cum_ack),
        None => ack.cum_ack,
    };
    if ack.rtt == 0.0 {
        conn.on_ack(now, AckPacket::duplicate(real));
    } else if real > *server_cum {
        *server_cum = real;
        conn.on_ack(
            now,
            AckPacket {
                cum_ack: real,
                rtt: ack.rtt,
            },
        );
    }
}

/// Applies path fates to the wire burst and merges carried arrivals.
/// Returns the packets received this round plus the next round's carry.
///
/// The prober cannot tell defense dummies from real data — by design —
/// so the `dummy` flag dies here: a dummy is just another sequence
/// number to measure and acknowledge.
fn deliver(
    wire: &[WirePacket],
    carry: &mut Vec<CarriedPacket>,
    path: &PathConfig,
    rng: &mut impl Rng,
) -> (Vec<CarriedPacket>, Vec<CarriedPacket>) {
    let mut received: Vec<CarriedPacket> = std::mem::take(carry);
    let mut next_carry = Vec::new();
    for pkt in wire {
        match path.data_fate(rng) {
            DataFate::Delivered => received.push(CarriedPacket {
                seq: pkt.seq,
                duplicate: false,
            }),
            DataFate::Lost => {}
            DataFate::Duplicated => {
                received.push(CarriedPacket {
                    seq: pkt.seq,
                    duplicate: false,
                });
                next_carry.push(CarriedPacket {
                    seq: pkt.seq,
                    duplicate: true,
                });
            }
            DataFate::Late => next_carry.push(CarriedPacket {
                seq: pkt.seq,
                duplicate: false,
            }),
        }
    }
    received.sort_by_key(|p| p.seq);
    (received, next_carry)
}

/// §IV-D: the window at round m is the highest sequence number received in
/// the round minus the previous round's highest.
fn measure(received: &[CarriedPacket], prev_seqmax: &mut i64) -> u32 {
    let Some(seqmax) = received.iter().map(|p| p.seq).max() else {
        return 0;
    };
    let w = (seqmax as i64 - *prev_seqmax).max(0) as u32;
    if seqmax as i64 > *prev_seqmax {
        *prev_seqmax = seqmax as i64;
    }
    w
}

/// §IV-C: one ACK per received (non-duplicate) data packet, cumulative "as
/// if there is no packet loss" — holes are covered by the next packet's
/// cumulative number, so the server never sees duplicate ACKs from data
/// loss.
fn build_acks(received: &[CarriedPacket], prober_cum: &mut u64, rtt: f64) -> Vec<AckPacket> {
    let mut acks = Vec::with_capacity(received.len());
    for p in received {
        if p.duplicate {
            continue; // CAAI recognizes duplicates by sequence number
        }
        let cum = (p.seq + 1).max(*prober_cum);
        if cum > *prober_cum {
            *prober_cum = cum;
            acks.push(AckPacket { cum_ack: cum, rtt });
        }
    }
    acks
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_congestion::AlgorithmId;
    use caai_netem::rng::seeded;
    use caai_tcpsim::{SenderQuirk, ServerConfig};

    fn gather_ideal(algo: AlgorithmId, env: EnvironmentId, wmax: u32) -> WindowTrace {
        let server = ServerUnderTest::ideal(algo);
        let prober = Prober::new(ProberConfig::default());
        let mut rng = seeded(1);
        let (trace, _) =
            prober.gather_trace(&server, env, wmax, 0.0, &PathConfig::clean(), &mut rng);
        trace
    }

    #[test]
    fn reno_env_a_trace_shape() {
        let t = gather_ideal(AlgorithmId::Reno, EnvironmentId::A, 512);
        assert!(t.is_valid(), "trace: {t:?}");
        // Slow start doubles from the initial window of 2 to past 512.
        assert_eq!(&t.pre[..5], &[2, 4, 8, 16, 32]);
        let w_b = *t.pre.last().unwrap();
        assert!(w_b > 512, "w^B = {w_b}");
        // Post-timeout recovery: 1, 2, 4, ... then +1/RTT past ssthresh.
        assert_eq!(&t.post[..4], &[1, 2, 4, 8]);
        assert_eq!(t.post.len(), POST_TIMEOUT_ROUNDS);
        // Find slow start exit ≈ w^B/2 and linear growth after it.
        let max_post = *t.post.iter().max().unwrap();
        assert!(
            (max_post as f64) < 0.56 * w_b as f64,
            "RENO recovery stays near w^B/2: {max_post} vs {w_b}"
        );
    }

    #[test]
    fn measured_windows_match_cwnd_on_clean_path() {
        // On a clean path the measured trace is exactly the server's cwnd
        // sequence — the paper's Fig. 3 setting.
        let t = gather_ideal(AlgorithmId::Scalable, EnvironmentId::A, 512);
        assert!(t.is_valid());
        // STCP post-timeout: ssthresh = 0.875·w^B.
        let w_b = *t.pre.last().unwrap();
        let max_post = *t.post.iter().max().unwrap();
        assert!(
            max_post as f64 >= 0.8 * w_b as f64,
            "STCP recovers close to w^B: {max_post} vs {w_b}"
        );
    }

    #[test]
    fn vegas_env_b_plateaus_below_64() {
        let t = gather_ideal(AlgorithmId::Vegas, EnvironmentId::B, 512);
        assert!(!t.is_valid());
        assert_eq!(t.invalid, Some(InvalidReason::NeverExceededThreshold));
        assert!(t.max_window() < 64, "max {}", t.max_window());
        assert!(t.usable_for_classification());
    }

    #[test]
    fn vegas_env_a_is_reno_like_and_valid() {
        let t = gather_ideal(AlgorithmId::Vegas, EnvironmentId::A, 512);
        assert!(t.is_valid(), "VEGAS reaches the threshold in env A: {t:?}");
    }

    #[test]
    fn full_gather_returns_a_pair_for_every_identified_algorithm() {
        for algo in caai_congestion::ALL_IDENTIFIED {
            let server = ServerUnderTest::ideal(algo);
            let prober = Prober::new(ProberConfig::default());
            let mut rng = seeded(7);
            let outcome = prober.gather(&server, &PathConfig::clean(), &mut rng);
            assert!(outcome.pair.is_some(), "{algo:?} must gather a pair");
            let pair = outcome.pair.unwrap();
            // YEAH cannot cross 512 in environment B: its precautionary
            // decongestion caps the window near 410 once the queue estimate
            // (0.2·w after the RTT step) exceeds α = 80 packets. The ladder
            // resolves it one rung down, where YEAH remains identifiable.
            let expected = if algo == AlgorithmId::Yeah { 256 } else { 512 };
            assert_eq!(pair.wmax_threshold(), expected, "{algo:?} ladder rung");
        }
    }

    #[test]
    fn gather_obs_reports_attempts_and_outcome() {
        use caai_obs::MetricsSubscriber;
        let server = ServerUnderTest::ideal(AlgorithmId::Reno);
        let prober = Prober::new(ProberConfig::default());

        let metrics = MetricsSubscriber::new();
        let observed = prober.gather_obs(&server, &PathConfig::clean(), &mut seeded(7), &metrics);
        let plain = prober.gather(&server, &PathConfig::clean(), &mut seeded(7));
        assert_eq!(observed, plain, "subscriber must not change the outcome");

        let snap = metrics.snapshot();
        // RENO succeeds at the first rung: env A + env B = 2 attempts.
        assert_eq!(snap.counters["gather.attempts"], 2);
        assert_eq!(snap.counters["gather.attempts_valid"], 2);
        assert_eq!(snap.counters["gather.attempts_stalled"], 0);
        assert_eq!(snap.counters["gather.runs"], 1);
        assert_eq!(snap.counters["gather.usable"], 1);
        assert!(snap.counters["gather.rounds"] > 20, "{snap:?}");
    }

    #[test]
    fn gather_obs_counts_stall_exits_down_the_ladder() {
        use caai_obs::MetricsSubscriber;
        let cfg = ServerConfig::ideal().with_quirk(SenderQuirk::BoundedBuffer { clamp: 200 });
        let server = ServerUnderTest::ideal_with_config(AlgorithmId::Reno, cfg);
        let prober = Prober::new(ProberConfig::default());
        let metrics = MetricsSubscriber::new();
        let outcome = prober.gather_obs(&server, &PathConfig::clean(), &mut seeded(8), &metrics);
        assert_eq!(outcome.pair.expect("rung 128 works").wmax_threshold(), 128);

        let snap = metrics.snapshot();
        // Rungs 512 and 256 fail in env A (window ceiling → stall exit),
        // rung 128 gathers both environments.
        assert_eq!(snap.counters["gather.attempts"], 4);
        assert_eq!(snap.counters["gather.attempts_valid"], 2);
        assert_eq!(snap.counters["gather.attempts_stalled"], 2);
        assert_eq!(snap.counters["gather.usable"], 1);
    }

    #[test]
    fn window_ceiling_falls_down_the_ladder() {
        let cfg = ServerConfig::ideal().with_quirk(SenderQuirk::BoundedBuffer { clamp: 200 });
        let server = ServerUnderTest::ideal_with_config(AlgorithmId::Reno, cfg);
        let prober = Prober::new(ProberConfig::default());
        let mut rng = seeded(8);
        let outcome = prober.gather(&server, &PathConfig::clean(), &mut rng);
        let pair = outcome.pair.expect("rung 128 must work");
        assert_eq!(pair.wmax_threshold(), 128);
        assert_eq!(
            outcome.failed_attempts.len(),
            2,
            "512 and 256 attempts failed"
        );
    }

    #[test]
    fn deaf_server_yields_no_timeout_response() {
        let cfg = ServerConfig::ideal().with_quirk(SenderQuirk::IgnoresTimeout);
        let server = ServerUnderTest::ideal_with_config(AlgorithmId::Reno, cfg);
        let prober = Prober::new(ProberConfig::default());
        let mut rng = seeded(9);
        let outcome = prober.gather(&server, &PathConfig::clean(), &mut rng);
        assert!(outcome.pair.is_none());
        assert_eq!(
            outcome.failure_reason(),
            Some(InvalidReason::NoTimeoutResponse)
        );
    }

    #[test]
    fn short_page_yields_page_too_short() {
        // `ServerUnderTest::ideal` has no budget setter on purpose; use a
        // synthetic web server with a tiny page instead.
        use caai_webmodel::{PageModel, PopulationConfig};
        let mut rng = seeded(10);
        let mut web = PopulationConfig::small(1).generate(&mut rng).pop().unwrap();
        web.pages = PageModel {
            default_bytes: 2_000,
            longest_bytes: 2_000,
        };
        web.requests = caai_webmodel::RequestAcceptanceModel { max_requests: 1 };
        web.quirk = caai_tcpsim::SenderQuirk::None;
        let sut = ServerUnderTest::from_web_server(&web);
        let prober = Prober::new(ProberConfig::default());
        let outcome = prober.gather(&sut, &PathConfig::clean(), &mut rng);
        assert!(outcome.pair.is_none());
        assert_eq!(outcome.failure_reason(), Some(InvalidReason::PageTooShort));
    }

    #[test]
    fn frto_countermeasure_preserves_slow_start() {
        let cfg = ServerConfig::ideal().with_frto(true);
        let server = ServerUnderTest::ideal_with_config(AlgorithmId::Reno, cfg);
        let prober = Prober::new(ProberConfig::default());
        let mut rng = seeded(11);
        let (t, _) = prober.gather_trace(
            &server,
            EnvironmentId::A,
            512,
            0.0,
            &PathConfig::clean(),
            &mut rng,
        );
        assert!(t.is_valid());
        assert_eq!(&t.post[..4], &[1, 2, 4, 8], "conventional recovery forced");
    }

    #[test]
    fn without_countermeasure_frto_skips_slow_start() {
        let cfg = ServerConfig::ideal().with_frto(true);
        let server = ServerUnderTest::ideal_with_config(AlgorithmId::Reno, cfg);
        let pc = ProberConfig {
            frto_countermeasure: false,
            ..ProberConfig::default()
        };
        let prober = Prober::new(pc);
        let mut rng = seeded(12);
        let (t, _) = prober.gather_trace(
            &server,
            EnvironmentId::A,
            512,
            0.0,
            &PathConfig::clean(),
            &mut rng,
        );
        // The spurious-timeout path restores the window: no 1,2,4,8 ramp.
        let ramp = t.post.len() >= 4 && t.post[..4] == [1, 2, 4, 8];
        assert!(!ramp, "F-RTO must defeat the naive prober: {:?}", &t.post);
    }

    #[test]
    fn lossy_path_still_yields_valid_traces_mostly() {
        let server = ServerUnderTest::ideal(AlgorithmId::Reno);
        let prober = Prober::new(ProberConfig::default());
        let mut rng = seeded(13);
        let path = PathConfig::lossy(0.02);
        let mut valid = 0;
        for _ in 0..10 {
            let outcome = prober.gather(&server, &path, &mut rng);
            if outcome.pair.is_some() {
                valid += 1;
            }
        }
        assert!(
            valid >= 8,
            "2% loss should rarely break gathering: {valid}/10"
        );
    }

    fn defended_config(defenses: Vec<caai_netem::DefenseConfig>, budget: f64) -> ProberConfig {
        ProberConfig {
            defense: Some(DefenseSpec { defenses, budget }),
            ..ProberConfig::default()
        }
    }

    #[test]
    fn undefended_gather_reports_no_overhead() {
        let server = ServerUnderTest::ideal(AlgorithmId::Reno);
        let prober = Prober::new(ProberConfig::default());
        let outcome = prober.gather(&server, &PathConfig::clean(), &mut seeded(1));
        assert_eq!(outcome.defense_overhead, None);
    }

    #[test]
    fn budget_zero_defense_is_transparent_on_a_clean_path() {
        use caai_netem::DefenseConfig;
        let server = ServerUnderTest::ideal(AlgorithmId::Reno);
        let defended = Prober::new(defended_config(
            vec![
                DefenseConfig::Padding { rate: 1.0 },
                DefenseConfig::Jitter { delay_prob: 0.9 },
                DefenseConfig::Shaping { burst_cap: 2 },
            ],
            0.0,
        ));
        let plain = Prober::new(ProberConfig::default());
        let d = defended.gather(&server, &PathConfig::clean(), &mut seeded(21));
        let p = plain.gather(&server, &PathConfig::clean(), &mut seeded(21));
        assert_eq!(d.pair, p.pair, "budget 0 must not distort the trace");
        assert_eq!(d.failed_attempts, p.failed_attempts);
        let ovh = d.defense_overhead.expect("defense configured");
        assert_eq!(ovh.dummy + ovh.delayed, 0);
        assert!(ovh.real > 0, "real traffic still accounted");
    }

    #[test]
    fn padding_inflates_the_measured_windows() {
        use caai_netem::DefenseConfig;
        let server = ServerUnderTest::ideal(AlgorithmId::Reno);
        let defended = Prober::new(defended_config(
            vec![DefenseConfig::Padding { rate: 0.5 }],
            1.0,
        ));
        let (t, _) = defended.gather_trace(
            &server,
            EnvironmentId::A,
            512,
            0.0,
            &PathConfig::clean(),
            &mut seeded(22),
        );
        assert!(t.is_valid(), "padding distorts but does not break: {t:?}");
        // Slow start delivers 2,4,8,... real packets; padding at rate 0.5
        // inflates each round's sequence progress by ~1.5x.
        let plain = gather_ideal(AlgorithmId::Reno, EnvironmentId::A, 512);
        let inflated = t
            .pre
            .iter()
            .zip(plain.pre.iter())
            .filter(|(d, p)| d > p)
            .count();
        assert!(
            inflated >= t.pre.len().min(plain.pre.len()) / 2,
            "defended windows should dominate: {:?} vs {:?}",
            t.pre,
            plain.pre
        );
        // The inflated windows cross the threshold in fewer rounds.
        assert!(t.pre.len() <= plain.pre.len());
    }

    #[test]
    fn shaping_with_budget_hides_the_window_from_the_prober() {
        use caai_netem::DefenseConfig;
        let server = ServerUnderTest::ideal(AlgorithmId::Reno);
        let defended = Prober::new(defended_config(
            vec![DefenseConfig::Shaping { burst_cap: 16 }],
            50.0,
        ));
        let outcome = defended.gather(&server, &PathConfig::clean(), &mut seeded(23));
        // Every round releases at most 16 packets, so no rung of the
        // ladder (>= 64) is ever crossed: the census counts this server
        // invalid — the defense won.
        assert!(outcome.pair.is_none(), "shaping should defeat the ladder");
        assert_eq!(
            outcome.failure_reason(),
            Some(InvalidReason::NeverExceededThreshold)
        );
        let ovh = outcome.defense_overhead.expect("defense configured");
        assert!(ovh.delayed > 0);
    }

    #[test]
    fn defended_gather_is_deterministic_per_seed() {
        use caai_netem::DefenseConfig;
        let server = ServerUnderTest::ideal(AlgorithmId::CubicV2);
        let prober = Prober::new(defended_config(
            vec![
                DefenseConfig::Padding { rate: 0.3 },
                DefenseConfig::Jitter { delay_prob: 0.2 },
            ],
            0.5,
        ));
        let path = PathConfig::lossy(0.02);
        let a = prober.gather(&server, &path, &mut seeded(24));
        let b = prober.gather(&server, &path, &mut seeded(24));
        assert_eq!(a, b);
    }

    #[test]
    fn prober_config_with_defense_roundtrips_and_old_configs_still_load() {
        use caai_netem::DefenseConfig;
        let cfg = defended_config(vec![DefenseConfig::Padding { rate: 0.25 }], 0.3);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ProberConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // A config serialized before the defense field existed must still
        // deserialize (missing Option -> None).
        use serde::{Deserialize as _, Serialize as _, Value};
        let mut legacy = ProberConfig::default().to_value();
        if let Value::Map(map) = &mut legacy {
            map.retain(|(k, _)| k != "defense");
        }
        let parsed = ProberConfig::from_value(&legacy).unwrap();
        assert_eq!(parsed, ProberConfig::default());
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let server = ServerUnderTest::ideal(AlgorithmId::CubicV2);
        let prober = Prober::new(ProberConfig::default());
        let path = PathConfig::lossy(0.05);
        let (a, _) =
            prober.gather_trace(&server, EnvironmentId::A, 512, 0.0, &path, &mut seeded(99));
        let (b, _) =
            prober.gather_trace(&server, EnvironmentId::A, 512, 0.0, &path, &mut seeded(99));
        assert_eq!(a, b);
    }
}
