//! The remote endpoint a probe run talks to.
//!
//! Bundles everything connection establishment needs — the (unknown) TCP
//! algorithm, sender configuration, data budget per connection, and the
//! server-side ssthresh metrics cache that persists *between* connections
//! (the state CAAI defeats by waiting between environments, §IV-C).

use caai_congestion::AlgorithmId;
use caai_tcpsim::{SenderQuirk, ServerConfig, SsthreshCache, TcpServer};
use caai_webmodel::WebServer;
use std::cell::RefCell;

/// A server endpoint the prober can open successive connections to.
#[derive(Debug, Clone)]
pub struct ServerUnderTest {
    algorithm: AlgorithmId,
    base_config: ServerConfig,
    /// Data budget in *bytes* per connection (page size × honoured
    /// pipelined requests); converted to packets at the granted MSS.
    budget_bytes: u64,
    min_mss: u32,
    cache: RefCell<SsthreshCache>,
}

impl ServerUnderTest {
    /// An ideal lab server: unlimited data, no quirks, no F-RTO, no
    /// caching — the configuration of the paper's testbed training servers
    /// (§VII-A), where long pages are installed on purpose.
    pub fn ideal(algorithm: AlgorithmId) -> Self {
        ServerUnderTest {
            algorithm,
            base_config: ServerConfig::ideal(),
            budget_bytes: u64::MAX / 4,
            min_mss: 1,
            cache: RefCell::new(SsthreshCache::new()),
        }
    }

    /// An ideal lab server with a specific sender configuration (used by
    /// robustness tests: F-RTO on, caching on, quirky, ...).
    pub fn ideal_with_config(algorithm: AlgorithmId, config: ServerConfig) -> Self {
        ServerUnderTest {
            algorithm,
            base_config: config,
            budget_bytes: u64::MAX / 4,
            min_mss: 1,
            cache: RefCell::new(SsthreshCache::new()),
        }
    }

    /// Wraps a synthetic census server.
    pub fn from_web_server(server: &WebServer) -> Self {
        let honoured = server
            .requests
            .honoured(caai_webmodel::http::CAAI_PIPELINE_DEPTH);
        ServerUnderTest {
            algorithm: server.effective_algorithm(),
            base_config: server.server_config(100),
            budget_bytes: server.pages.connection_budget_bytes(honoured),
            min_mss: server.mss_policy.min_mss,
            cache: RefCell::new(SsthreshCache::new()),
        }
    }

    /// The ground-truth algorithm (what identification should recover).
    pub fn algorithm(&self) -> AlgorithmId {
        self.algorithm
    }

    /// The sender quirk in force.
    pub fn quirk(&self) -> SenderQuirk {
        self.base_config.quirk
    }

    /// The MSS the server grants when the prober proposes `proposed`.
    pub fn granted_mss(&self, proposed: u32) -> u32 {
        proposed.max(self.min_mss)
    }

    /// Opens a new connection at time `now`, proposing `mss` bytes.
    pub fn connect(&self, mss: u32, now: f64) -> TcpServer {
        let granted = self.granted_mss(mss);
        let config = ServerConfig {
            mss: granted,
            ..self.base_config
        };
        let budget = (self.budget_bytes / u64::from(granted.max(1))).max(1);
        TcpServer::connect(self.algorithm, config, budget, &self.cache.borrow(), now)
    }

    /// Closes a connection at time `now`, depositing metrics if the server
    /// caches them.
    pub fn disconnect(&self, connection: &TcpServer, now: f64) {
        if self.base_config.ssthresh_caching {
            self.cache
                .borrow_mut()
                .store(connection.closing_ssthresh(), now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_server_has_effectively_unlimited_budget() {
        let s = ServerUnderTest::ideal(AlgorithmId::Reno);
        let conn = s.connect(100, 0.0);
        assert!(conn.data_budget() > 1 << 50);
        assert_eq!(s.granted_mss(100), 100);
    }

    #[test]
    fn caching_server_seeds_the_next_connection() {
        let cfg = ServerConfig::ideal().with_ssthresh_caching(true);
        let s = ServerUnderTest::ideal_with_config(AlgorithmId::Reno, cfg);
        let mut conn = s.connect(100, 0.0);
        // Simulate the connection having established a threshold.
        let _ = conn.transmit(0.0);
        let deadline = conn.rto_deadline().unwrap();
        conn.fire_rto(deadline);
        let ss = conn.closing_ssthresh();
        s.disconnect(&conn, deadline);
        let conn2 = s.connect(100, deadline + 1.0);
        assert_eq!(conn2.ssthresh(), ss, "cache seeds the new connection");
        // Waiting out the TTL yields a fresh threshold (CAAI's counter).
        let conn3 = s.connect(100, deadline + 700.0);
        assert!(conn3.ssthresh() > 1 << 20);
    }

    #[test]
    fn non_caching_server_never_stores() {
        let s = ServerUnderTest::ideal(AlgorithmId::Reno);
        let mut conn = s.connect(100, 0.0);
        let _ = conn.transmit(0.0);
        let deadline = conn.rto_deadline().unwrap();
        conn.fire_rto(deadline);
        s.disconnect(&conn, deadline);
        let conn2 = s.connect(100, deadline + 1.0);
        assert!(conn2.ssthresh() > 1 << 20);
    }

    #[test]
    fn granted_mss_respects_server_minimum() {
        let mut s = ServerUnderTest::ideal(AlgorithmId::Reno);
        s.min_mss = 536;
        assert_eq!(s.granted_mss(100), 536);
        assert_eq!(s.granted_mss(1460), 1460);
    }
}
