//! Special-case valid traces (§VII-B, Figs. 14–17).
//!
//! The Internet census surfaced four recurring trace shapes the testbed
//! never produced; CAAI files them separately instead of classifying them:
//!
//! 1. **Remaining at 1 packet** — the window never leaves 1 after the
//!    timeout (Fig. 14);
//! 2. **Nonincreasing window** — the window never grows once congestion
//!    avoidance starts (Fig. 15);
//! 3. **Approaching w^B** — growth decelerates asymptotically toward the
//!    pre-timeout window (Fig. 16);
//! 4. **Bounded window** — the window grows past the slow-start exit and
//!    then pins at a hard ceiling, e.g. the send buffer (Fig. 17).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::trace::WindowTrace;

/// The four §VII-B special cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialCase {
    /// Fig. 14.
    RemainingAtOnePacket,
    /// Fig. 15.
    NonincreasingWindow,
    /// Fig. 16.
    ApproachingWmax,
    /// Fig. 17.
    BoundedWindow,
}

impl SpecialCase {
    /// Table IV row label.
    pub fn name(self) -> &'static str {
        match self {
            SpecialCase::RemainingAtOnePacket => "Remaining at 1 Packet",
            SpecialCase::NonincreasingWindow => "Nonincreasing Window",
            SpecialCase::ApproachingWmax => "Approaching Wmax",
            SpecialCase::BoundedWindow => "Bounded Window",
        }
    }

    /// All cases, in Table IV order.
    pub const ALL: [SpecialCase; 4] = [
        SpecialCase::RemainingAtOnePacket,
        SpecialCase::NonincreasingWindow,
        SpecialCase::ApproachingWmax,
        SpecialCase::BoundedWindow,
    ];
}

impl fmt::Display for SpecialCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The slow-start knee: first round whose window fails to grow 1.5× over
/// its predecessor (growth below the worst-case lossy doubling).
fn knee(post: &[u32]) -> Option<usize> {
    (1..post.len()).find(|&i| post[i - 1] >= 2 && f64::from(post[i]) < 1.5 * f64::from(post[i - 1]))
}

/// A knee below this fraction of `w^B` is lower than the multiplicative
/// decrease of every identified algorithm except RENO/CTCP (β = 0.5) and
/// WESTWOOD+ (β ≈ 0) — the "Approaching" shape must start from such a low
/// knee *and* still reach `w^B`, which no identified algorithm does.
const LOW_KNEE_FRACTION: f64 = 0.65;

/// Checks a valid trace against the four special shapes, in the §VII-B
/// order. Returns `None` for ordinary traces (which proceed to the random
/// forest).
///
/// The paper's special cases were "not observed in our testbed
/// experiments" (§VII-B): accordingly, these rules are calibrated to
/// never fire on a clean trace of any of the 14 identified algorithms
/// (see the `no_identified_algorithm_is_special` test), at the price of
/// missing quirky servers whose shapes overlap the normal fingerprints —
/// those fall through to the forest and usually surface as "Unsure TCP".
pub fn detect(trace: &WindowTrace) -> Option<SpecialCase> {
    if !trace.is_valid() {
        return None;
    }
    let post = &trace.post;
    let w_before = trace.w_before_timeout()? as f64;

    // 1. Remaining at 1 packet.
    if post.iter().all(|&w| w <= 1) {
        return Some(SpecialCase::RemainingAtOnePacket);
    }

    let k = knee(post)?;
    let knee_level = post[k.saturating_sub(1)].max(post[k]);
    let tail = &post[k..];
    if tail.len() < 5 {
        return None;
    }
    let last = tail[tail.len() - 1];
    let flat_len = tail.iter().rev().take_while(|&&w| w == last).count();

    // 2. Nonincreasing window: dead flat at the knee level from the knee
    // on, well below w^B (a normal algorithm's avoidance state always
    // grows; CUBIC's plateau is at most ~3 rounds and sits near w^B).
    if tail.iter().all(|&w| w <= knee_level) && flat_len >= 5 && f64::from(last) < 0.95 * w_before {
        return Some(SpecialCase::NonincreasingWindow);
    }

    // 3. Bounded window: the window climbed strictly beyond w^B and then
    // pinned flat (Fig. 17: "increases beyond w^B, and then is bounded by
    // some upper bound"). No identified algorithm exceeds w^B by more
    // than a few packets within the 18-round trace, let alone sits flat
    // there.
    if flat_len >= 4 && f64::from(last) > 1.05 * w_before {
        return Some(SpecialCase::BoundedWindow);
    }

    // 4. Approaching w^B: saturating growth from a *low* knee toward the
    // pre-timeout window (Fig. 16: "initially increases quickly, and then
    // increases slowly as it approaches w^B"). The low-knee guard keeps
    // BIC/CUBIC/CTCP — whose normal recoveries also decelerate toward
    // w^B, but from knees at β ≥ 0.7 — out; the band check keeps
    // RENO-family (final ≈ 0.5·w^B) and WESTWOOD+ (final ≪ w^B) out.
    let final_w = f64::from(last);
    let increments: Vec<i64> = tail
        .windows(2)
        .map(|w| i64::from(w[1]) - i64::from(w[0]))
        .collect();
    if f64::from(knee_level) < LOW_KNEE_FRACTION * w_before
        && final_w >= 0.85 * w_before
        && final_w <= 1.05 * w_before
    {
        let decelerating = increments
            .windows(2)
            .filter(|p| p[0] < p[1])
            .count() <= increments.len() / 4 // mostly non-increasing steps
            && increments.iter().all(|&d| d >= 0)
            && increments.iter().take(2).any(|&d| d > 1)
            && increments.iter().rev().take(2).all(|&d| d <= 2);
        if decelerating {
            return Some(SpecialCase::ApproachingWmax);
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_netem::EnvironmentId;

    fn trace(post: Vec<u32>) -> WindowTrace {
        WindowTrace {
            env: EnvironmentId::A,
            wmax_threshold: 128,
            mss: 100,
            pre: vec![2, 4, 8, 16, 32, 64, 130],
            post,
            invalid: None,
        }
    }

    #[test]
    fn remaining_at_one_detected() {
        let t = trace(vec![1; 18]);
        assert_eq!(detect(&t), Some(SpecialCase::RemainingAtOnePacket));
    }

    #[test]
    fn nonincreasing_detected() {
        // Slow start to 20, then dead flat.
        let mut post = vec![1, 2, 4, 8, 16, 20];
        post.extend(std::iter::repeat_n(20, 12));
        assert_eq!(detect(&trace(post)), Some(SpecialCase::NonincreasingWindow));
    }

    #[test]
    fn approaching_wmax_detected() {
        // Saturating growth toward w^B = 130 from a low knee (≈ 0.3·w^B).
        let post = vec![
            1, 2, 4, 8, 16, 32, 40, 67, 86, 99, 108, 115, 120, 124, 126, 128, 129, 129,
        ];
        assert_eq!(detect(&trace(post)), Some(SpecialCase::ApproachingWmax));
    }

    #[test]
    fn bounded_window_detected() {
        // Recovery slow start climbs beyond w^B = 130 and pins at 160.
        let post = vec![
            1, 2, 4, 8, 16, 32, 64, 128, 160, 160, 160, 160, 160, 160, 160, 160, 160, 160,
        ];
        assert_eq!(detect(&trace(post)), Some(SpecialCase::BoundedWindow));
    }

    #[test]
    fn flat_at_wmax_is_not_special() {
        // A benign ceiling exactly at w^B (the common census case: the
        // service-load clamp equals the previous crossing) must fall
        // through to the forest, not be filed as bounded/nonincreasing.
        let post = vec![
            1, 2, 4, 8, 16, 32, 64, 104, 117, 124, 128, 130, 130, 130, 130, 130, 130, 130,
        ];
        assert_eq!(detect(&trace(post)), None);
    }

    #[test]
    fn bic_like_high_knee_convergence_is_not_special() {
        // BIC's normal recovery: knee at 0.8·w^B, binary-search
        // convergence toward w^B — decelerating, but from a high knee.
        let post = vec![
            1, 2, 4, 8, 16, 32, 64, 104, 117, 124, 127, 128, 129, 129, 130, 130, 131, 131,
        ];
        assert_eq!(detect(&trace(post)), None);
    }

    #[test]
    fn ordinary_reno_recovery_is_not_special() {
        let mut post = vec![1, 2, 4, 8, 16, 32, 64];
        for i in 0..11 {
            post.push(65 + i);
        }
        assert_eq!(detect(&trace(post)), None);
    }

    #[test]
    fn ordinary_stcp_recovery_is_not_special() {
        // Compounding growth: increments increase — not "approaching".
        let post = vec![
            1, 2, 4, 8, 16, 32, 64, 113, 115, 117, 119, 121, 124, 127, 130, 133, 136, 139,
        ];
        assert_eq!(detect(&trace(post)), None);
    }

    #[test]
    fn invalid_traces_are_never_special() {
        let mut t = trace(vec![1; 18]);
        t.invalid = Some(crate::trace::InvalidReason::RecoveryTooShort);
        assert_eq!(detect(&t), None);
    }

    /// §VII-B: the special cases were "not observed in our testbed
    /// experiments" — so the detector must return `None` for a clean
    /// trace of every identified algorithm, at every ladder rung, in both
    /// environments. This is the property that keeps the census's
    /// BIC/CUBIC share honest: their recoveries also decelerate toward
    /// w^B, but from high knees.
    #[test]
    fn no_identified_algorithm_is_special_on_clean_traces() {
        use crate::prober::{Prober, ProberConfig};
        use crate::server_under_test::ServerUnderTest;
        use caai_netem::rng::seeded;
        use caai_netem::PathConfig;

        for algo in caai_congestion::ALL_IDENTIFIED {
            for wmax in [512u32, 128] {
                let server = ServerUnderTest::ideal(algo);
                let prober = Prober::new(ProberConfig::fixed_wmax(wmax));
                let mut rng = seeded(5);
                let outcome = prober.gather(&server, &PathConfig::clean(), &mut rng);
                let Some(pair) = outcome.pair else { continue };
                assert_eq!(
                    detect(&pair.env_a),
                    None,
                    "{algo:?} env A at {wmax} misfiled: {:?}",
                    pair.env_a.post
                );
                if pair.env_b.is_valid() {
                    assert_eq!(
                        detect(&pair.env_b),
                        None,
                        "{algo:?} env B at {wmax} misfiled: {:?}",
                        pair.env_b.post
                    );
                }
            }
        }
    }
}
