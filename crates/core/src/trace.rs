//! Window traces: the raw material of CAAI (Fig. 8).
//!
//! A trace records the web server's congestion window, measured in packets
//! per emulated RTT, split at the emulated timeout: `pre` holds
//! `w_1 … w^B` (the last entry is the window right before the timeout) and
//! `post` holds the windows of the recovery. A **valid** trace has at least
//! [`POST_TIMEOUT_ROUNDS`] post-timeout rounds (§IV-E).

use caai_netem::EnvironmentId;
use serde::{Deserialize, Serialize};

/// Post-timeout rounds required for a valid trace (§IV-E: "we define a
/// valid trace to be a trace that has 18 RTTs of window sizes after the
/// timeout").
pub const POST_TIMEOUT_ROUNDS: usize = 18;

/// Why a gathering attempt produced no valid trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InvalidReason {
    /// The window never exceeded the `w_max` threshold within the round
    /// budget (Fig. 13) — e.g. a window ceiling, or VEGAS in environment B.
    NeverExceededThreshold,
    /// The server stopped sending before the timeout could be emulated:
    /// the page (times accepted pipelined requests) was too short (§VII-B
    /// reason 1/2).
    PageTooShort,
    /// The server reached the threshold but did not respond to the
    /// emulated timeout (§VII-B: "somehow the Web server does not respond
    /// to the emulated timeout").
    NoTimeoutResponse,
    /// The server stalled during recovery, leaving fewer than 18
    /// post-timeout rounds.
    RecoveryTooShort,
    /// The probe never got far enough to judge the trace: the transport
    /// failed underneath it (connect refused, connection reset, or a
    /// stalled peer exhausting the retry budget). Only real-network
    /// transports produce this; the simulator's wire never fails.
    TransportAborted,
}

impl InvalidReason {
    /// Stable display name (matches the `Debug` rendering the census
    /// report keys by).
    pub fn name(self) -> &'static str {
        match self {
            InvalidReason::NeverExceededThreshold => "NeverExceededThreshold",
            InvalidReason::PageTooShort => "PageTooShort",
            InvalidReason::NoTimeoutResponse => "NoTimeoutResponse",
            InvalidReason::RecoveryTooShort => "RecoveryTooShort",
            InvalidReason::TransportAborted => "TransportAborted",
        }
    }
}

/// One gathered window trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowTrace {
    /// Which emulated environment produced it.
    pub env: EnvironmentId,
    /// The `w_max` threshold this attempt used (512/256/128/64).
    pub wmax_threshold: u32,
    /// The MSS granted by the server, bytes.
    pub mss: u32,
    /// Per-round windows before the timeout; the last entry is `w^B`.
    pub pre: Vec<u32>,
    /// Per-round windows after the timeout.
    pub post: Vec<u32>,
    /// `None` when the trace is valid; otherwise why it is not.
    pub invalid: Option<InvalidReason>,
}

impl WindowTrace {
    /// True when the trace satisfies §IV-E's validity rule.
    pub fn is_valid(&self) -> bool {
        self.invalid.is_none() && self.post.len() >= POST_TIMEOUT_ROUNDS
    }

    /// The window right before the timeout (`w^B`), if the trace got there.
    pub fn w_before_timeout(&self) -> Option<u32> {
        if self.invalid == Some(InvalidReason::NeverExceededThreshold)
            || self.invalid == Some(InvalidReason::PageTooShort)
        {
            return None;
        }
        self.pre.last().copied()
    }

    /// The largest window observed anywhere in the trace — the quantity the
    /// `I(w^B_max ≥ 64)` feature element thresholds (§V-D).
    pub fn max_window(&self) -> u32 {
        self.pre
            .iter()
            .chain(self.post.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// True when this (possibly invalid) environment-B trace is still
    /// usable for classification: VEGAS-style plateaus below 64 packets
    /// carry signal through the indicator element.
    pub fn usable_for_classification(&self) -> bool {
        self.is_valid()
            || (self.invalid == Some(InvalidReason::NeverExceededThreshold)
                && self.max_window() < 64)
    }
}

/// The pair of traces (environments A and B) CAAI feeds to feature
/// extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePair {
    /// Environment A trace (valid by construction).
    pub env_a: WindowTrace,
    /// Environment B trace (valid, or a usable below-64 plateau).
    pub env_b: WindowTrace,
}

impl TracePair {
    /// The `w_max` threshold rung both traces were gathered at.
    pub fn wmax_threshold(&self) -> u32 {
        self.env_a.wmax_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(post_len: usize, invalid: Option<InvalidReason>) -> WindowTrace {
        WindowTrace {
            env: EnvironmentId::A,
            wmax_threshold: 512,
            mss: 100,
            pre: vec![2, 4, 8, 16, 520],
            post: (1..=post_len as u32).collect(),
            invalid,
        }
    }

    #[test]
    fn validity_needs_18_post_rounds() {
        assert!(trace(18, None).is_valid());
        assert!(!trace(17, None).is_valid());
        assert!(!trace(18, Some(InvalidReason::NoTimeoutResponse)).is_valid());
    }

    #[test]
    fn w_before_timeout_is_last_pre_window() {
        assert_eq!(trace(18, None).w_before_timeout(), Some(520));
        assert_eq!(
            trace(18, Some(InvalidReason::NeverExceededThreshold)).w_before_timeout(),
            None
        );
    }

    #[test]
    fn vegas_style_plateau_is_usable() {
        let mut t = trace(0, Some(InvalidReason::NeverExceededThreshold));
        t.pre = vec![2, 4, 8, 16, 20, 21, 20, 21];
        assert!(!t.is_valid());
        assert!(t.usable_for_classification());
        // But a plateau above 64 is not (it should retry a lower rung).
        let mut big = trace(0, Some(InvalidReason::NeverExceededThreshold));
        big.pre = vec![2, 4, 8, 16, 32, 64, 100, 100];
        assert!(!big.usable_for_classification());
    }

    #[test]
    fn max_window_spans_both_phases() {
        let mut t = trace(18, None);
        t.post = vec![1, 2, 4, 600];
        assert_eq!(t.max_window(), 600);
    }
}
