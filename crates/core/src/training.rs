//! Training-set collection (§VII-A).
//!
//! The paper gathers feature vectors on a lab testbed: for each of the 14
//! algorithms and each `w_max` rung it replays 100 network conditions
//! drawn from the measured condition database, probes the testbed server,
//! and keeps the resulting vector — 14 × 4 × 100 = 5,600 vectors.
//! This module reproduces that pipeline against `caai-tcpsim` servers.

use caai_congestion::{AlgorithmId, ALL_IDENTIFIED};
use caai_ml::Dataset;
use caai_netem::{ConditionDb, PathConfig};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::classes::{label_names, ClassLabel};
use crate::features::{extract_pair, FEATURE_DIM};
use crate::prober::{Prober, ProberConfig};
use crate::server_under_test::ServerUnderTest;

/// Training-collection parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Network conditions replayed per (algorithm, `w_max`) pair
    /// (paper: 100).
    pub conditions_per_pair: usize,
    /// `w_max` rungs (paper: 512, 256, 128, 64).
    pub wmax_rungs: Vec<u32>,
    /// Algorithms to include (paper: the 14 identified ones).
    pub algorithms: Vec<AlgorithmId>,
    /// Gathering retries per condition before giving up on it.
    pub retries: usize,
}

impl TrainingConfig {
    /// The paper's full 5,600-vector configuration.
    pub fn paper() -> Self {
        TrainingConfig {
            conditions_per_pair: 100,
            wmax_rungs: vec![512, 256, 128, 64],
            algorithms: ALL_IDENTIFIED.to_vec(),
            retries: 3,
        }
    }

    /// A reduced configuration for tests and quick demos.
    pub fn quick(conditions_per_pair: usize) -> Self {
        TrainingConfig {
            conditions_per_pair,
            ..Self::paper()
        }
    }

    /// Expected vector count when every gathering succeeds.
    pub fn expected_size(&self) -> usize {
        self.conditions_per_pair * self.wmax_rungs.len() * self.algorithms.len()
    }
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Sender configurations rotated through while collecting training
/// vectors: the paper's testbed hosts differ in initial window and
/// slow-start flavour (§V-A argues identification is insensitive to
/// both), so the training set must *span* those perturbations — a `w_max`
/// overshoot reached from IW 10 or from a HyStart early exit lands at a
/// different `w^B`, and growth-offset features scale with it.
fn training_server_configs() -> Vec<caai_tcpsim::ServerConfig> {
    use caai_tcpsim::{ServerConfig, SlowStartVariant};
    vec![
        ServerConfig::ideal(),
        ServerConfig::ideal().with_initial_window(4),
        ServerConfig::ideal().with_initial_window(10),
        ServerConfig::ideal().with_slow_start(SlowStartVariant::Hybrid),
        ServerConfig::ideal().with_slow_start(SlowStartVariant::Limited { max_ssthresh: 600 }),
        ServerConfig::ideal()
            .with_initial_window(10)
            .with_slow_start(SlowStartVariant::Hybrid),
    ]
}

/// Collects a labeled training set by probing lab servers under replayed
/// network conditions, rotating through the `training_server_configs`
/// sender perturbations.
///
/// Conditions that defeat gathering even after the configured retries are
/// skipped (heavy tail of the loss distribution), so the returned set can
/// be slightly smaller than [`TrainingConfig::expected_size`].
pub fn build_training_set(
    config: &TrainingConfig,
    conditions: &ConditionDb,
    rng: &mut impl Rng,
) -> Dataset {
    let mut dataset = Dataset::new(label_names(), FEATURE_DIM);
    let server_configs = training_server_configs();
    for &algo in &config.algorithms {
        for &wmax in &config.wmax_rungs {
            let label = ClassLabel::for_measurement(algo, wmax)
                .expect("training covers identified algorithms only");
            let prober = Prober::new(ProberConfig::fixed_wmax(wmax));
            for c in 0..config.conditions_per_pair {
                let server = ServerUnderTest::ideal_with_config(
                    algo,
                    server_configs[c % server_configs.len()],
                );
                for attempt in 0..=config.retries {
                    let cond = conditions.sample(rng);
                    let path = PathConfig::from_condition(&cond);
                    let outcome = prober.gather(&server, &path, rng);
                    if let Some(pair) = outcome.pair {
                        let v = extract_pair(&pair);
                        dataset.push(v.as_slice().to_vec(), label.index());
                        break;
                    }
                    let _ = attempt;
                }
            }
        }
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_netem::rng::seeded;

    #[test]
    fn quick_training_set_covers_all_classes() {
        let config = TrainingConfig::quick(2);
        let db = ConditionDb::paper_2011();
        let mut rng = seeded(17);
        let data = build_training_set(&config, &db, &mut rng);
        // 14 algorithms × 4 rungs × 2 conditions = 112 (minus rare skips).
        assert!(data.len() >= 100, "got {}", data.len());
        let counts = data.class_counts();
        for class in ClassLabel::ALL {
            assert!(
                counts[class.index()] > 0,
                "class {class} missing from the training set"
            );
        }
    }

    #[test]
    fn rc_small_absorbs_three_algorithms() {
        let mut config = TrainingConfig::quick(1);
        config.wmax_rungs = vec![64];
        config.algorithms = vec![AlgorithmId::Reno, AlgorithmId::CtcpV1, AlgorithmId::CtcpV2];
        let db = ConditionDb::paper_2011();
        let mut rng = seeded(18);
        let data = build_training_set(&config, &db, &mut rng);
        let counts = data.class_counts();
        assert_eq!(counts[ClassLabel::RcSmall.index()], data.len());
    }

    #[test]
    fn expected_size_formula() {
        assert_eq!(TrainingConfig::paper().expected_size(), 5600);
        assert_eq!(TrainingConfig::quick(2).expected_size(), 112);
    }
}
