//! Probe transports: where a census's records actually come from.
//!
//! The paper ran CAAI against 30,000+ real web servers; this repo grew
//! up against a synthetic population. [`ProbeTransport`] is the seam
//! between the two: the scheduling machinery (`caai-engine`'s workers,
//! checkpoints, shards, sinks) addresses servers purely by dense id and
//! asks the transport for one [`CensusRecord`] per id, without knowing
//! whether the probe ran in-process against a simulated
//! [`WebServer`] ([`SimTransport`]) or over real sockets
//! (`caai-net`'s `NetTransport`).
//!
//! The contract a transport must honour for the engine's determinism
//! and resume guarantees to survive the swap:
//!
//! * `probe(id, ...)` is valid for every `id` in `0..population()` and
//!   always returns a record with `server_id == id` — the engine keys
//!   its completion bitmap and checkpoint accounting on that.
//! * `probe` never panics and never blocks forever: transport-level
//!   failures (a dead peer, an exhausted retry budget) reduce to an
//!   `Invalid(TransportAborted)` verdict, not an error.
//! * `probe` is callable from many threads at once (`Sync`).
//!
//! Determinism is a property of the transport, not the engine: the
//! simulator is a pure function of `(population, seed, shard)`, while a
//! real network answers however it pleases. The engine stays
//! deterministic *given the records*; whether two runs see the same
//! records is the transport's business.

use caai_obs::Subscriber;
use caai_webmodel::WebServer;

use crate::census::{Census, CensusRecord};

/// A source of census records, addressed by dense server id.
///
/// See the [module docs](self) for the contract.
pub trait ProbeTransport: Sync {
    /// How many servers this transport can probe; valid ids are
    /// `0..population()`.
    fn population(&self) -> u64;

    /// Probes server `id` and returns its record (with
    /// `server_id == id`), forwarding structured events to `obs`.
    /// `seed` keys any per-server randomness so reruns reproduce.
    fn probe<S: Subscriber>(&self, id: u32, seed: u64, obs: &S) -> CensusRecord;
}

/// The simulator transport: probes synthetic [`WebServer`]s through
/// [`Census::probe_seeded_obs`], exactly as every census before the
/// transport seam existed. Construction validates that server ids are
/// dense and unique (`0..len`, each exactly once) — the property the
/// engine's completion bitmap and shard ownership are keyed on.
#[derive(Debug)]
pub struct SimTransport<'a> {
    census: &'a Census,
    servers: &'a [WebServer],
    /// `index[id]` = position of the server with that id in `servers`
    /// (the slice need not be sorted by id).
    index: Vec<u32>,
}

impl<'a> SimTransport<'a> {
    /// Wraps a census driver and its population, validating that ids
    /// are dense and unique. The error string names the offending id.
    pub fn new(census: &'a Census, servers: &'a [WebServer]) -> Result<Self, String> {
        let population = servers.len();
        let mut index = vec![u32::MAX; population];
        for (i, s) in servers.iter().enumerate() {
            let Some(slot) = index.get_mut(s.id as usize) else {
                return Err(format!(
                    "server id {} outside 0..{population}; the engine keys its \
                     completion bitmap on dense ids",
                    s.id
                ));
            };
            if *slot != u32::MAX {
                return Err(format!(
                    "duplicate server id {}; the engine keys its completion \
                     bitmap on unique ids",
                    s.id
                ));
            }
            *slot = i as u32;
        }
        Ok(SimTransport {
            census,
            servers,
            index,
        })
    }
}

impl ProbeTransport for SimTransport<'_> {
    fn population(&self) -> u64 {
        self.servers.len() as u64
    }

    fn probe<S: Subscriber>(&self, id: u32, seed: u64, obs: &S) -> CensusRecord {
        let server = &self.servers[self.index[id as usize] as usize];
        self.census.probe_seeded_obs(server, seed, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::Census;
    use crate::classify::CaaiClassifier;
    use crate::prober::ProberConfig;
    use crate::training::{build_training_set, TrainingConfig};
    use caai_netem::rng::seeded;
    use caai_netem::ConditionDb;
    use caai_webmodel::PopulationConfig;

    fn quick_census(rng: &mut impl rand::Rng) -> Census {
        let db = ConditionDb::paper_2011();
        let data = build_training_set(&TrainingConfig::quick(2), &db, rng);
        let classifier = CaaiClassifier::train(&data, rng);
        Census::new(
            classifier,
            ConditionDb::paper_2011(),
            ProberConfig::default(),
        )
    }

    #[test]
    fn sim_transport_matches_probe_seeded() {
        let mut rng = seeded(300);
        let census = quick_census(&mut rng);
        let servers = PopulationConfig::small(6).generate(&mut rng);
        let transport = SimTransport::new(&census, &servers).unwrap();
        assert_eq!(transport.population(), 6);
        for server in &servers {
            assert_eq!(
                transport.probe(server.id, 9, &caai_obs::NullSubscriber),
                census.probe_seeded(server, 9),
                "the transport seam must not change any record"
            );
        }
    }

    #[test]
    fn sim_transport_handles_unsorted_populations() {
        let mut rng = seeded(301);
        let census = quick_census(&mut rng);
        let mut servers = PopulationConfig::small(5).generate(&mut rng);
        servers.reverse();
        let transport = SimTransport::new(&census, &servers).unwrap();
        for server in &servers {
            assert_eq!(
                transport
                    .probe(server.id, 2, &caai_obs::NullSubscriber)
                    .server_id,
                server.id
            );
        }
    }

    #[test]
    fn sim_transport_rejects_sparse_or_duplicate_ids() {
        let mut rng = seeded(302);
        let census = quick_census(&mut rng);
        let mut servers = PopulationConfig::small(3).generate(&mut rng);
        servers[2].id = 7;
        let err = SimTransport::new(&census, &servers).unwrap_err();
        assert!(err.contains("outside 0..3"), "{err}");
        servers[2].id = 1;
        let err = SimTransport::new(&census, &servers).unwrap_err();
        assert!(err.contains("duplicate server id 1"), "{err}");
    }
}
