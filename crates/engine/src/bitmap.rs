//! Completed-server-id bitmaps.
//!
//! A census over 10⁷ servers needs to remember *which* servers are done
//! without retaining their records: one bit per id — 1.25 MB at 10⁷ —
//! instead of a record vector that grows with completion. The bitmap is
//! the resume key of a v2 checkpoint: re-probing every unset id from the
//! same seed reproduces exactly what an uninterrupted run measures.

use serde::{Deserialize, Serialize};

/// A fixed-capacity bitmap over server ids `0..len`.
///
/// ```
/// use caai_engine::IdBitmap;
///
/// let mut done = IdBitmap::new(100);
/// assert!(done.insert(7));
/// assert!(!done.insert(7), "second insert reports already-present");
/// assert!(done.contains(7) && !done.contains(8));
/// assert_eq!(done.count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdBitmap {
    /// Number of ids the bitmap covers.
    len: u64,
    /// Bit `id` lives in `words[id / 64]` at position `id % 64`.
    words: Vec<u64>,
}

impl IdBitmap {
    /// Creates an empty bitmap over ids `0..len`.
    pub fn new(len: u64) -> Self {
        IdBitmap {
            len,
            words: vec![0; usize::try_from(len.div_ceil(64)).expect("bitmap too large")],
        }
    }

    /// Number of ids the bitmap covers.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the bitmap covers no ids at all (`len() == 0`). For
    /// "no id is set", compare [`count`](IdBitmap::count) with 0.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets `id`; returns `true` if it was newly set.
    ///
    /// # Panics
    /// Panics if `id` is outside `0..len`.
    pub fn insert(&mut self, id: u32) -> bool {
        assert!(u64::from(id) < self.len, "id {id} out of bitmap range");
        let word = &mut self.words[id as usize / 64];
        let mask = 1u64 << (id % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Whether `id` is set (ids outside the range are never set).
    pub fn contains(&self, id: u32) -> bool {
        self.words
            .get(id as usize / 64)
            .is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    /// Number of ids set.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Sets every id that is set in `other`.
    ///
    /// # Panics
    /// Panics if the bitmaps cover different ranges.
    pub fn union_with(&mut self, other: &IdBitmap) {
        assert_eq!(self.len, other.len, "bitmap ranges differ");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Ids set in the bitmap, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            (0..64)
                .filter(move |bit| word & (1u64 << bit) != 0)
                .map(move |bit| (i * 64 + bit) as u32)
        })
    }

    /// Checks the invariant that no id at or above `len` is set (e.g.
    /// after deserializing a hand-edited checkpoint).
    pub fn validate(&self) -> Result<(), String> {
        if self.words.len() as u64 != self.len.div_ceil(64) {
            return Err(format!(
                "bitmap has {} words for {} ids",
                self.words.len(),
                self.len
            ));
        }
        if !self.len.is_multiple_of(64) {
            if let Some(last) = self.words.last() {
                if last >> (self.len % 64) != 0 {
                    return Err("bitmap has ids set beyond its range".to_owned());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_contains_count_and_iter() {
        let mut b = IdBitmap::new(130);
        for id in [0u32, 63, 64, 129] {
            assert!(!b.contains(id));
            assert!(b.insert(id));
        }
        assert_eq!(b.count(), 4);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert!(!b.contains(65));
        assert!(b.validate().is_ok());
    }

    #[test]
    fn union_combines_disjoint_shards() {
        let mut a = IdBitmap::new(100);
        let mut b = IdBitmap::new(100);
        (0..100).step_by(2).for_each(|id| {
            a.insert(id);
        });
        (1..100).step_by(2).for_each(|id| {
            b.insert(id);
        });
        a.union_with(&b);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn serde_round_trips() {
        let mut b = IdBitmap::new(70);
        b.insert(1);
        b.insert(69);
        let json = serde_json::to_string(&b).unwrap();
        let back: IdBitmap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn validate_catches_out_of_range_bits() {
        let mut b = IdBitmap::new(10);
        b.insert(9);
        let json = serde_json::to_string(&b).unwrap();
        let forged = json.replace("[512]", &format!("[{}]", 512u64 | (1 << 20)));
        let bad: IdBitmap = serde_json::from_str(&forged).unwrap();
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "out of bitmap range")]
    fn insert_out_of_range_panics() {
        IdBitmap::new(10).insert(10);
    }
}
