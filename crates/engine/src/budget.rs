//! Probe and wall-clock budgets.
//!
//! A real Internet census runs for days and costs traffic on remote
//! servers; the engine therefore stops cleanly — checkpointing first —
//! when either a probe budget or a deadline is exhausted, instead of
//! running to completion or being killed uncleanly.

use std::time::{Duration, Instant};

/// Limits on how much work one engine run may perform.
///
/// `Budget::default()` is unlimited. A budget counts only probes
/// performed by the current run — records resumed from a checkpoint are
/// free.
///
/// ```
/// use caai_engine::Budget;
/// use std::time::Instant;
///
/// let budget = Budget::probes(1000);
/// let started = Instant::now();
/// assert!(!budget.exhausted(999, started));
/// assert!(budget.exhausted(1000, started));
/// assert!(!Budget::unlimited().exhausted(u64::MAX, started));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of probes this run may perform.
    pub max_probes: Option<u64>,
    /// Maximum wall-clock time this run may spend.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget capped at `n` probes.
    pub fn probes(n: u64) -> Self {
        Budget {
            max_probes: Some(n),
            deadline: None,
        }
    }

    /// A budget capped at `d` of wall-clock time.
    pub fn deadline(d: Duration) -> Self {
        Budget {
            max_probes: None,
            deadline: Some(d),
        }
    }

    /// Whether the budget is exhausted after `probes_done` probes with
    /// the run having started at `started`.
    pub fn exhausted(&self, probes_done: u64, started: Instant) -> bool {
        if let Some(max) = self.max_probes {
            if probes_done >= max {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if started.elapsed() >= deadline {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(u64::MAX, Instant::now()));
    }

    #[test]
    fn probe_budget_trips_at_the_cap() {
        let b = Budget::probes(10);
        let now = Instant::now();
        assert!(!b.exhausted(9, now));
        assert!(b.exhausted(10, now));
        assert!(b.exhausted(11, now));
    }

    #[test]
    fn deadline_trips_after_elapsed() {
        let b = Budget::deadline(Duration::from_millis(1));
        let started = Instant::now() - Duration::from_millis(5);
        assert!(b.exhausted(0, started));
        assert!(!b.exhausted(0, Instant::now() + Duration::from_secs(1)));
    }
}
