//! Census checkpoints.
//!
//! A checkpoint is a serde snapshot of every completed [`CensusRecord`]
//! plus the run parameters that must match on resume (seed, population
//! size). Because each server's probe RNG is keyed on `(seed,
//! server_id)`, a resumed census only needs to know *which* servers are
//! done — re-probing the rest from the same seed reproduces exactly what
//! an uninterrupted run would have measured, and the final report is
//! byte-identical.
//!
//! Snapshots are written atomically (temp file + rename) so a kill
//! mid-write can never corrupt the previous checkpoint.

use caai_core::census::CensusRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::io;
use std::path::Path;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A resumable snapshot of a partially completed census.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The census seed; resuming under a different seed is refused.
    pub seed: u64,
    /// Population size; resuming against a different population is refused.
    pub population: u64,
    /// Every completed record (the partial aggregate).
    pub records: Vec<CensusRecord>,
}

impl Checkpoint {
    /// Creates a checkpoint of `records` for a `(seed, population)` run.
    pub fn new(seed: u64, population: u64, records: Vec<CensusRecord>) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            seed,
            population,
            records,
        }
    }

    /// The set of completed server ids.
    pub fn completed_ids(&self) -> BTreeSet<u32> {
        self.records.iter().map(|r| r.server_id).collect()
    }

    /// Checks that this checkpoint belongs to a `(seed, population)` run.
    pub fn ensure_matches(&self, seed: u64, population: u64) -> Result<(), String> {
        if self.seed != seed {
            return Err(format!("checkpoint seed {} != run seed {seed}", self.seed));
        }
        if self.population != population {
            return Err(format!(
                "checkpoint population {} != {population} servers",
                self.population
            ));
        }
        Ok(())
    }

    /// Serializes and atomically writes the checkpoint to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Append rather than replace the extension: `a.json` and `a.data`
        // in one directory must not share a temp file.
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads and validates a checkpoint from `path`.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let ck: Checkpoint = serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if ck.version != CHECKPOINT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported checkpoint version {}", ck.version),
            ));
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_congestion::AlgorithmId;
    use caai_core::census::Verdict;
    use caai_core::trace::InvalidReason;

    #[test]
    fn save_load_round_trips() {
        let records = vec![CensusRecord {
            server_id: 5,
            truth: AlgorithmId::Bic,
            verdict: Verdict::Invalid(InvalidReason::NeverExceededThreshold),
        }];
        let ck = Checkpoint::new(42, 100, records);
        let path = std::env::temp_dir().join(format!("caai-ck-test-{}.json", std::process::id()));
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ck, back);
        assert!(back.completed_ids().contains(&5));
    }

    #[test]
    fn wrong_version_is_refused() {
        let mut ck = Checkpoint::new(1, 1, Vec::new());
        ck.version = 999;
        let path =
            std::env::temp_dir().join(format!("caai-ck-ver-test-{}.json", std::process::id()));
        // Bypass save()'s fixed version by writing the JSON directly.
        std::fs::write(&path, serde_json::to_string(&ck).unwrap()).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("version"), "{err}");
    }
}
