//! Census checkpoints (format v2: constant-size aggregates + bitmap).
//!
//! A v2 checkpoint snapshots a partially completed census as the
//! [`CensusAggregates`] fold of every completed record plus an
//! [`IdBitmap`] of the completed server ids — O(aggregates + bitmap)
//! bytes, independent of how many records have completed. The seed-v1
//! format stored every record instead, which made each periodic rewrite
//! O(completed) and total checkpoint I/O quadratic in population;
//! [`Checkpoint::load`] still reads v1 files and upgrades them in memory
//! by folding their records (see `ARCHITECTURE.md` for the format spec).
//!
//! Because each server's probe RNG is keyed on `(seed, server_id)`, a
//! resumed census only needs to know *which* servers are done — re-probing
//! the unset ids from the same seed reproduces exactly what an
//! uninterrupted run would have measured, and the final report is
//! byte-identical. Note that unlike v1, a v2 checkpoint cannot replay
//! individual records into sinks on resume; per-record retention is the
//! job of a JSONL sink (append mode) or the aggregating sink.
//!
//! Snapshots are written atomically (temp file + rename) so a kill
//! mid-write can never corrupt the previous checkpoint.
//!
//! ```
//! use caai_engine::{Checkpoint, ShardSpec};
//!
//! let ck = Checkpoint::new(42, 1000, ShardSpec::full());
//! assert_eq!(ck.completed_count(), 0);
//! assert!(ck.ensure_matches(42, 1000, ShardSpec::full()).is_ok());
//! assert!(ck.ensure_matches(43, 1000, ShardSpec::full()).is_err());
//! ```

use crate::bitmap::IdBitmap;
use crate::shard::ShardSpec;
use caai_core::census::{CensusAggregates, CensusRecord};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 2;

/// A resumable constant-size snapshot of a partially completed census.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// The census seed; resuming under a different seed is refused.
    pub seed: u64,
    /// Population size; resuming against a different population is refused.
    pub population: u64,
    /// Which shard of the population this run owns (`0/1` when unsharded).
    pub shard: ShardSpec,
    /// Streaming fold of every completed record.
    pub aggregates: CensusAggregates,
    /// Which server ids have completed.
    pub completed: IdBitmap,
}

/// The seed-era v1 checkpoint layout: every completed record, verbatim.
#[derive(Debug, Deserialize)]
struct CheckpointV1 {
    seed: u64,
    population: u64,
    records: Vec<CensusRecord>,
}

/// Just enough of any checkpoint to dispatch on its format version.
#[derive(Debug, Deserialize)]
struct CheckpointHeader {
    version: u32,
}

impl Checkpoint {
    /// Creates an empty checkpoint for a `(seed, population, shard)` run.
    pub fn new(seed: u64, population: u64, shard: ShardSpec) -> Self {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            seed,
            population,
            shard,
            aggregates: CensusAggregates::default(),
            completed: IdBitmap::new(population),
        }
    }

    /// Builds a checkpoint by folding completed `records` (also the v1 →
    /// v2 upgrade path).
    pub fn from_records<'a>(
        seed: u64,
        population: u64,
        shard: ShardSpec,
        records: impl IntoIterator<Item = &'a CensusRecord>,
    ) -> Self {
        let mut ck = Checkpoint::new(seed, population, shard);
        for r in records {
            ck.observe(r);
        }
        ck
    }

    /// Folds one completed record into the snapshot. Re-observing a
    /// server id is ignored (the first record wins), so replaying an
    /// at-least-once stream is safe.
    ///
    /// # Panics
    /// Panics if `record.server_id` is outside `0..population` — callers
    /// folding untrusted input must range-check first (the engine
    /// validates its population up front; file loaders validate before
    /// folding).
    pub fn observe(&mut self, record: &CensusRecord) {
        if self.completed.insert(record.server_id) {
            self.aggregates.observe(record);
        }
    }

    /// Number of completed servers.
    pub fn completed_count(&self) -> u64 {
        self.completed.count()
    }

    /// Whether every server this shard owns has completed.
    pub fn is_complete(&self) -> bool {
        self.completed_count() == self.shard.owned_count(self.population)
    }

    /// Checks that this checkpoint belongs to a `(seed, population,
    /// shard)` run.
    pub fn ensure_matches(
        &self,
        seed: u64,
        population: u64,
        shard: ShardSpec,
    ) -> Result<(), String> {
        if self.seed != seed {
            return Err(format!("checkpoint seed {} != run seed {seed}", self.seed));
        }
        if self.population != population {
            return Err(format!(
                "checkpoint population {} != {population} servers",
                self.population
            ));
        }
        if self.shard != shard {
            return Err(format!(
                "checkpoint shard {} != run shard {shard}",
                self.shard
            ));
        }
        Ok(())
    }

    /// Serializes and atomically writes the checkpoint to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Append rather than replace the extension: `a.json` and `a.data`
        // in one directory must not share a temp file.
        let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads and validates a checkpoint from `path`. A v1 (full-record)
    /// checkpoint is upgraded in memory: its records are folded into
    /// aggregates and a bitmap, under the whole-population shard `0/1`.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let header: CheckpointHeader =
            serde_json::from_str(&json).map_err(|e| invalid(e.to_string()))?;
        let ck = match header.version {
            1 => {
                let v1: CheckpointV1 =
                    serde_json::from_str(&json).map_err(|e| invalid(e.to_string()))?;
                if let Some(bad) = v1
                    .records
                    .iter()
                    .find(|r| u64::from(r.server_id) >= v1.population)
                {
                    return Err(invalid(format!(
                        "v1 checkpoint record for server {} is outside its \
                         population of {}",
                        bad.server_id, v1.population
                    )));
                }
                Checkpoint::from_records(v1.seed, v1.population, ShardSpec::full(), &v1.records)
            }
            2 => serde_json::from_str::<Checkpoint>(&json).map_err(|e| invalid(e.to_string()))?,
            other => {
                return Err(invalid(format!("unsupported checkpoint version {other}")));
            }
        };
        ck.shard.validate().map_err(invalid)?;
        ck.completed.validate().map_err(invalid)?;
        if ck.completed.len() != ck.population {
            return Err(invalid(format!(
                "bitmap covers {} ids but population is {}",
                ck.completed.len(),
                ck.population
            )));
        }
        // Internal consistency: the aggregates must be the fold of
        // exactly the bitmap's servers, and every completed id must be
        // owned by the checkpoint's shard — a file violating either
        // would silently drop servers from a resumed or merged report.
        if ck.aggregates.total as u64 != ck.completed.count() {
            return Err(invalid(format!(
                "aggregates cover {} records but the bitmap has {} ids set",
                ck.aggregates.total,
                ck.completed.count()
            )));
        }
        if let Some(bad) = ck.completed.iter().find(|id| !ck.shard.owns(*id)) {
            return Err(invalid(format!(
                "completed id {bad} does not belong to shard {}",
                ck.shard
            )));
        }
        Ok(ck)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_congestion::AlgorithmId;
    use caai_core::census::Verdict;
    use caai_core::classes::ClassLabel;
    use caai_core::trace::InvalidReason;

    fn record(server_id: u32, verdict: Verdict) -> CensusRecord {
        CensusRecord {
            server_id,
            truth: Some(AlgorithmId::Bic),
            verdict,
        }
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("caai-ck-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn save_load_round_trips() {
        let mut ck = Checkpoint::new(42, 100, "1/4".parse().unwrap());
        ck.observe(&record(
            5,
            Verdict::Invalid(InvalidReason::NeverExceededThreshold),
        ));
        ck.observe(&record(9, Verdict::Identified(ClassLabel::Bic, 512)));
        let path = tmp("roundtrip.json");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ck, back);
        assert!(back.completed.contains(5));
        assert_eq!(back.completed_count(), 2);
        assert_eq!(back.aggregates.total, 2);
    }

    #[test]
    fn checkpoint_size_is_independent_of_completed_records() {
        // The constant-memory contract, measured directly: 10× the
        // records must not grow the serialized checkpoint.
        let population = 100_000u64;
        let few = Checkpoint::from_records(
            1,
            population,
            ShardSpec::full(),
            &(0..100)
                .map(|id| record(id, Verdict::Identified(ClassLabel::Bic, 512)))
                .collect::<Vec<_>>(),
        );
        let many = Checkpoint::from_records(
            1,
            population,
            ShardSpec::full(),
            &(0..10_000)
                .map(|id| record(id, Verdict::Identified(ClassLabel::Bic, 512)))
                .collect::<Vec<_>>(),
        );
        let few_len = serde_json::to_string(&few).unwrap().len();
        let many_len = serde_json::to_string(&many).unwrap().len();
        // Only decimal digit counts (counters, bitmap words) may differ
        // between the two — never the ~100× a v1 record list would cost.
        assert!(
            many_len < few_len * 3,
            "checkpoint grew with record count: {few_len} -> {many_len}"
        );
        let v1_style_records = serde_json::to_string(
            &(0..10_000)
                .map(|id| record(id, Verdict::Identified(ClassLabel::Bic, 512)))
                .collect::<Vec<_>>(),
        )
        .unwrap()
        .len();
        assert!(
            many_len * 10 < v1_style_records,
            "v2 checkpoint ({many_len} B) must undercut a v1 record list \
             ({v1_style_records} B) by at least 10x"
        );
    }

    #[test]
    fn duplicate_observations_are_ignored() {
        let mut ck = Checkpoint::new(1, 10, ShardSpec::full());
        let r = record(3, Verdict::Unsure(128));
        ck.observe(&r);
        ck.observe(&record(3, Verdict::Identified(ClassLabel::Bic, 512)));
        assert_eq!(ck.completed_count(), 1);
        assert_eq!(ck.aggregates.total, 1);
        assert_eq!(ck.aggregates.identified_total, 0, "first record wins");
    }

    #[test]
    fn v1_checkpoints_upgrade_on_load() {
        // A v1 file as PR 2 wrote it: full records, no shard, no bitmap.
        let records = vec![
            record(5, Verdict::Invalid(InvalidReason::PageTooShort)),
            record(7, Verdict::Identified(ClassLabel::Bic, 512)),
        ];
        let v1_json = format!(
            r#"{{"version":1,"seed":42,"population":100,"records":{}}}"#,
            serde_json::to_string(&records).unwrap()
        );
        let path = tmp("v1-upgrade.json");
        std::fs::write(&path, v1_json).unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(ck.version, CHECKPOINT_VERSION);
        assert_eq!((ck.seed, ck.population), (42, 100));
        assert_eq!(ck.shard, ShardSpec::full());
        assert_eq!(
            ck,
            Checkpoint::from_records(42, 100, ShardSpec::full(), &records)
        );
        assert!(ck.completed.contains(5) && ck.completed.contains(7));
        assert_eq!(ck.aggregates.identified_correct, 1);
        // And it round-trips as v2 from here on.
        let path = tmp("v1-upgraded-resave.json");
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ck);
    }

    #[test]
    fn v1_record_outside_population_is_an_error_not_a_panic() {
        let records = vec![record(100, Verdict::Unsure(128))];
        let v1_json = format!(
            r#"{{"version":1,"seed":1,"population":100,"records":{}}}"#,
            serde_json::to_string(&records).unwrap()
        );
        let path = tmp("v1-oob.json");
        std::fs::write(&path, v1_json).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn wrong_version_is_refused() {
        let path = tmp("bad-version.json");
        std::fs::write(&path, r#"{"version":999}"#).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn inconsistent_aggregates_or_foreign_ids_are_refused_on_load() {
        // Aggregates/bitmap disagreement: bitmap claims a server the
        // aggregates never folded.
        let mut ck = Checkpoint::new(1, 10, ShardSpec::full());
        ck.observe(&record(3, Verdict::Unsure(128)));
        let json = serde_json::to_string(&ck).unwrap();
        let forged = json.replace(r#""total":1"#, r#""total":0"#);
        let path = tmp("forged-total.json");
        std::fs::write(&path, forged).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("aggregates"), "{err}");

        // A completed id the checkpoint's shard does not own.
        let mut ck = Checkpoint::new(1, 10, ShardSpec::full());
        ck.observe(&record(2, Verdict::Unsure(128)));
        let json = serde_json::to_string(&ck).unwrap();
        let forged = json.replace(r#""0/1""#, r#""1/2""#);
        let path = tmp("forged-shard.json");
        std::fs::write(&path, forged).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("does not belong"), "{err}");
    }

    #[test]
    fn mismatches_are_refused() {
        let ck = Checkpoint::new(1, 50, ShardSpec::full());
        assert!(ck.ensure_matches(2, 50, ShardSpec::full()).is_err());
        assert!(ck.ensure_matches(1, 51, ShardSpec::full()).is_err());
        assert!(ck
            .ensure_matches(1, 50, "0/2".parse().unwrap())
            .unwrap_err()
            .contains("shard"));
        assert!(ck.ensure_matches(1, 50, ShardSpec::full()).is_ok());
    }

    #[test]
    fn is_complete_respects_the_shard() {
        let mut ck = Checkpoint::new(1, 10, "1/4".parse().unwrap());
        assert!(!ck.is_complete());
        for id in [1u32, 5, 9] {
            ck.observe(&record(id, Verdict::Unsure(128)));
        }
        assert!(ck.is_complete());
    }
}
