//! The census engine proper: worker pool, record streaming, checkpoint
//! cadence, budget enforcement.
//!
//! ## Determinism contract
//!
//! Every server is probed with an RNG keyed on `(seed, server_id)`
//! ([`caai_core::census::Census::probe_seeded`]), and the final report is
//! assembled from records sorted by `server_id`. Consequently the report
//! is a pure function of `(population, seed)` — independent of worker
//! count, batch size, scheduling interleavings, and of how many times the
//! run was interrupted and resumed.

use crate::budget::Budget;
use crate::checkpoint::Checkpoint;
use crate::scheduler::BatchScheduler;
use crate::sink::ResultSink;
use crate::telemetry::{ProgressStats, Telemetry};
use caai_core::census::{assemble, Census, CensusRecord, CensusReport};
use caai_webmodel::WebServer;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Tuning and policy knobs for one engine run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Census seed; with the population it fully determines the report.
    pub seed: u64,
    /// Worker threads probing servers.
    pub workers: usize,
    /// Servers claimed per scheduler batch.
    pub batch_size: usize,
    /// Where to write checkpoints (`None` disables checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint after every this many newly completed records.
    pub checkpoint_every: u64,
    /// Probe/deadline budget for this run.
    pub budget: Budget,
    /// Print a progress line to stderr every this many records (0 = off).
    pub progress_every: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 1,
            workers: 4,
            batch_size: 16,
            checkpoint_path: None,
            checkpoint_every: 256,
            budget: Budget::unlimited(),
            progress_every: 0,
        }
    }
}

/// Why the run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// Every server in the population has a record.
    Completed,
    /// The probe or wall-clock budget ran out first.
    BudgetExhausted,
}

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// The (possibly partial) census report, in canonical order.
    pub report: CensusReport,
    /// Final telemetry snapshot.
    pub stats: ProgressStats,
    /// Whether every server was probed.
    pub completed: bool,
    /// Why the run stopped.
    pub stop: StopCause,
}

/// Errors an engine run can hit.
#[derive(Debug)]
pub enum EngineError {
    /// A sink or checkpoint I/O failure.
    Io(io::Error),
    /// The resume checkpoint does not match this run's parameters.
    CheckpointMismatch(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "census I/O error: {e}"),
            EngineError::CheckpointMismatch(msg) => {
                write!(f, "checkpoint mismatch: {msg}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// The streaming census engine. See the crate docs for an example.
#[derive(Debug)]
pub struct CensusEngine {
    census: Census,
    config: EngineConfig,
}

impl CensusEngine {
    /// Creates an engine around a trained census driver.
    pub fn new(census: Census, config: EngineConfig) -> Self {
        CensusEngine { census, config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the census over `servers`, streaming records to `sinks` and
    /// optionally resuming from a checkpoint.
    ///
    /// Records already present in `resume` are re-emitted to the sinks
    /// (in canonical order) but not re-probed and not counted against the
    /// budget. Returns once the population is exhausted, the budget runs
    /// out, or an I/O error occurs.
    pub fn run(
        &self,
        servers: &[WebServer],
        sinks: &mut [&mut dyn ResultSink],
        resume: Option<Checkpoint>,
    ) -> Result<EngineOutcome, EngineError> {
        let seed = self.config.seed;
        let telemetry = Telemetry::new(servers.len() as u64);
        let started = Instant::now();

        // Replay the checkpoint: completed servers are skipped, their
        // records re-emitted so sinks see the full stream.
        let mut records: Vec<CensusRecord> = Vec::with_capacity(servers.len());
        let mut completed_ids: BTreeSet<u32> = BTreeSet::new();
        if let Some(ck) = resume {
            ck.ensure_matches(seed, servers.len() as u64)
                .map_err(EngineError::CheckpointMismatch)?;
            completed_ids = ck.completed_ids();
            // Replay in canonical order; for duplicated ids the last
            // checkpointed record wins.
            let resumed: BTreeMap<u32, CensusRecord> =
                ck.records.into_iter().map(|r| (r.server_id, r)).collect();
            for record in resumed.values() {
                telemetry.observe(record, true);
                for sink in sinks.iter_mut() {
                    sink.emit(record)?;
                }
            }
            records.extend(resumed.into_values());
        }

        // Work list: indices of servers without a record yet.
        let pending: Vec<usize> = servers
            .iter()
            .enumerate()
            .filter(|(_, s)| !completed_ids.contains(&s.id))
            .map(|(i, _)| i)
            .collect();

        let scheduler = BatchScheduler::new(pending.len(), self.config.batch_size);
        let stop = AtomicBool::new(false);
        let workers = self.config.workers.max(1).min(pending.len().max(1));
        let (tx, rx) = mpsc::channel::<CensusRecord>();

        let mut run_error: Option<EngineError> = None;
        let mut since_checkpoint: u64 = 0;
        let mut budget_hit = false;

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let pending = &pending;
                let scheduler = &scheduler;
                let stop = &stop;
                let census = &self.census;
                scope.spawn(move || {
                    'claim: while let Some(batch) = scheduler.next_batch() {
                        for i in batch {
                            if stop.load(Ordering::Relaxed) {
                                break 'claim;
                            }
                            let server = &servers[pending[i]];
                            let record = census.probe_seeded(server, seed);
                            if tx.send(record).is_err() {
                                break 'claim;
                            }
                        }
                    }
                });
            }
            drop(tx);

            for record in &rx {
                telemetry.observe(&record, false);
                for sink in sinks.iter_mut() {
                    if let Err(e) = sink.emit(&record) {
                        run_error = Some(e.into());
                        stop.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                if run_error.is_some() {
                    // Drain remaining in-flight records without emitting.
                    continue;
                }
                records.push(record);
                since_checkpoint += 1;

                let done = records.len() as u64;
                if self.config.progress_every > 0 && done.is_multiple_of(self.config.progress_every)
                {
                    eprintln!("census: {}", telemetry.snapshot());
                }
                if self.config.checkpoint_path.is_some()
                    && since_checkpoint >= self.config.checkpoint_every
                {
                    since_checkpoint = 0;
                    if let Err(e) = self.save_checkpoint(servers, &records) {
                        run_error = Some(e);
                        stop.store(true, Ordering::Relaxed);
                    }
                }
                if !budget_hit && self.config.budget.exhausted(telemetry.probed(), started) {
                    budget_hit = true;
                    stop.store(true, Ordering::Relaxed);
                }
            }
        });

        if let Some(e) = run_error {
            return Err(e);
        }
        for sink in sinks.iter_mut() {
            sink.flush()?;
        }
        if self.config.checkpoint_path.is_some() {
            self.save_checkpoint(servers, &records)?;
        }

        records.sort_by_key(|r| r.server_id);
        let completed = records.len() == servers.len();
        let stats = telemetry.snapshot();
        Ok(EngineOutcome {
            report: assemble(records),
            stats,
            completed,
            stop: if completed {
                StopCause::Completed
            } else {
                StopCause::BudgetExhausted
            },
        })
    }

    fn save_checkpoint(
        &self,
        servers: &[WebServer],
        records: &[CensusRecord],
    ) -> Result<(), EngineError> {
        let path = self
            .config
            .checkpoint_path
            .as_ref()
            .expect("save_checkpoint called without a checkpoint path");
        let ck = Checkpoint::new(self.config.seed, servers.len() as u64, records.to_vec());
        ck.save(path)?;
        Ok(())
    }
}
