//! The census engine proper: worker pool, sink thread, record streaming,
//! checkpoint cadence, budget enforcement.
//!
//! ## Transport seam
//!
//! The engine schedules *ids*, not servers: [`run_transport`] drives any
//! [`ProbeTransport`] — the simulator ([`caai_core::transport::SimTransport`],
//! what [`CensusEngine::run`] wraps) or `caai-net`'s real-socket
//! `NetTransport` — through the same workers, checkpoints, shards, and
//! sinks. The transport owns record production; the engine owns
//! everything after.
//!
//! ## Determinism contract
//!
//! Every probe is keyed on `(seed, server_id)` and all aggregation is
//! order-independent (commutative counter folds keyed by verdict and
//! `server_id`). Consequently the report is a pure function of
//! `(transport, seed, shard)` — independent of worker count, batch size,
//! scheduling interleavings, and of how many times the run was
//! interrupted and resumed. For the simulator transport the probes
//! themselves are pure too, so the whole report reduces to
//! `(population, seed, shard)`; a real network answers however it
//! pleases, and the engine stays deterministic *given the records*.
//!
//! ## Memory contract
//!
//! The engine retains O(aggregates + bitmap + work list) state, never
//! O(records): a [`caai_core::census::CensusAggregates`] fold plus one
//! bit per server id, both inside the live [`Checkpoint`], and the
//! pending work list (4 bytes per not-yet-probed owned server, shrinking
//! as the run proceeds — 125 KB of bitmap plus up to 4 MB of work list
//! at 10⁶ servers). Records stream through to the sinks and are dropped;
//! nothing grows with the number of *completed* records. Attach an
//! [`crate::sink::AggregatingSink`] to opt back into record retention.
//!
//! ## Sink thread
//!
//! Sinks run on a dedicated thread fed through a bounded queue
//! ([`EngineConfig::sink_queue`]), so a slow sink (compressing writer,
//! network upload) does not stall the coordinator — which keeps draining
//! workers, folding aggregates, and writing checkpoints — until the
//! queue itself fills, which bounds memory instead of growing a backlog.

use crate::budget::Budget;
use crate::checkpoint::Checkpoint;
use crate::scheduler::BatchScheduler;
use crate::shard::ShardSpec;
use crate::sink::ResultSink;
use crate::telemetry::{ProgressStats, Telemetry};
use caai_core::census::{Census, CensusRecord, CensusReport};
use caai_core::transport::{ProbeTransport, SimTransport};
use caai_obs::{
    span_begin, span_begin_with_parent, CensusRecordObserved, CensusResumed, CheckpointWritten,
    Histogram, NullSubscriber, ProbeTimed, SpanKind, Subscriber,
};
use caai_webmodel::WebServer;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Tuning and policy knobs for one engine run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Census seed; with the population it fully determines the report.
    pub seed: u64,
    /// Worker threads probing servers.
    pub workers: usize,
    /// Servers claimed per scheduler batch.
    pub batch_size: usize,
    /// Which shard of the population this run probes (`0/1` = all).
    pub shard: ShardSpec,
    /// Where to write checkpoints (`None` disables checkpointing).
    pub checkpoint_path: Option<PathBuf>,
    /// Checkpoint after every this many newly completed records.
    pub checkpoint_every: u64,
    /// Bounded capacity of the engine's two internal queues (workers →
    /// coordinator, coordinator → sink thread).
    pub sink_queue: usize,
    /// Probe/deadline budget for this run.
    pub budget: Budget,
    /// Print a progress line to stderr every this many records (0 = off).
    pub progress_every: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 1,
            workers: 4,
            batch_size: 16,
            shard: ShardSpec::full(),
            checkpoint_path: None,
            checkpoint_every: 256,
            sink_queue: 1024,
            budget: Budget::unlimited(),
            progress_every: 0,
        }
    }
}

/// Why the run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// Every server this run's shard owns has a record.
    Completed,
    /// The probe or wall-clock budget ran out first.
    BudgetExhausted,
}

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// The (possibly partial) record-free census report over this run's
    /// shard. Attach an [`crate::sink::AggregatingSink`] for records.
    pub report: CensusReport,
    /// Final telemetry snapshot.
    pub stats: ProgressStats,
    /// Whether every owned server was probed.
    pub completed: bool,
    /// Why the run stopped.
    pub stop: StopCause,
    /// How many checkpoint files this run wrote. A final write that
    /// would duplicate a write made earlier in the same run (no new
    /// records since) is skipped. A run that resumed and probed nothing
    /// still writes once: its `checkpoint_path` may differ from wherever
    /// the resume checkpoint was loaded from, and must end up current.
    pub checkpoints_written: u64,
}

/// Errors an engine run can hit.
#[derive(Debug)]
pub enum EngineError {
    /// A sink or checkpoint I/O failure.
    Io(io::Error),
    /// The resume checkpoint does not match this run's parameters.
    CheckpointMismatch(String),
    /// The configuration or population is invalid (e.g. a bad shard
    /// spec, or a server id outside `0..population`).
    Config(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "census I/O error: {e}"),
            EngineError::CheckpointMismatch(msg) => {
                write!(f, "checkpoint mismatch: {msg}")
            }
            EngineError::Config(msg) => write!(f, "invalid engine config: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<io::Error> for EngineError {
    fn from(e: io::Error) -> Self {
        EngineError::Io(e)
    }
}

/// What the coordinator feeds the sink thread through the bounded queue.
enum SinkMsg {
    /// One completed record to emit.
    Record(CensusRecord),
    /// Flush every sink, then ack — the coordinator's write barrier
    /// before a checkpoint, so a checkpoint never claims a record the
    /// sinks have not durably written (kill-safe with buffered writers).
    Flush(mpsc::Sender<()>),
}

/// The streaming census engine over the simulator transport. See the
/// crate docs for an example, and [`run_transport`] for driving other
/// transports through the same machinery.
#[derive(Debug)]
pub struct CensusEngine {
    census: Census,
    config: EngineConfig,
}

impl CensusEngine {
    /// Creates an engine around a trained census driver.
    pub fn new(census: Census, config: EngineConfig) -> Self {
        CensusEngine { census, config }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs the census over this run's shard of `servers`, streaming
    /// records to `sinks` and optionally resuming from a checkpoint.
    ///
    /// Servers already completed in `resume` are not re-probed and not
    /// counted against the budget; their aggregates seed the report and
    /// telemetry. Unlike the v1 (full-record) engine, resumed records are
    /// *not* replayed into the sinks — a checkpoint no longer has them.
    /// Keep the original JSONL file and open the sink in append mode
    /// ([`crate::sink::JsonlSink::append`]) instead. Returns once the
    /// owned population is exhausted, the budget runs out, or an I/O
    /// error occurs.
    pub fn run(
        &self,
        servers: &[WebServer],
        sinks: &mut [&mut dyn ResultSink],
        resume: Option<Checkpoint>,
    ) -> Result<EngineOutcome, EngineError> {
        self.run_obs(servers, sinks, resume, &NullSubscriber)
    }

    /// [`run`](Self::run) with a structured-event subscriber.
    ///
    /// The engine emits [`CensusRecordObserved`] from the (single-threaded)
    /// coordinator as each fresh record folds in, [`CensusResumed`] once
    /// when a checkpoint seeds the run, and [`CheckpointWritten`] after
    /// every durable checkpoint; workers forward the prober's rung events
    /// and [`ProbeTimed`] stage splits. The outcome is identical to the
    /// unobserved call — events never influence scheduling or verdicts.
    ///
    /// When `progress_every` is on, the engine additionally feeds an
    /// internal stage timer so progress lines carry a gather/verdict
    /// latency breakdown; with progress off and a [`NullSubscriber`], the
    /// whole observation path compiles out.
    pub fn run_obs<S: Subscriber>(
        &self,
        servers: &[WebServer],
        sinks: &mut [&mut dyn ResultSink],
        resume: Option<Checkpoint>,
        obs: &S,
    ) -> Result<EngineOutcome, EngineError> {
        let transport = SimTransport::new(&self.census, servers).map_err(EngineError::Config)?;
        run_transport_obs(&transport, &self.config, sinks, resume, obs)
    }
}

/// Runs a census over `config`'s shard of whatever population
/// `transport` fronts, streaming records to `sinks` and optionally
/// resuming from a checkpoint. Scheduling, checkpoint cadence, budget
/// enforcement, and the sink write barrier are identical to
/// [`CensusEngine::run`] — only record production is delegated.
pub fn run_transport<T: ProbeTransport>(
    transport: &T,
    config: &EngineConfig,
    sinks: &mut [&mut dyn ResultSink],
    resume: Option<Checkpoint>,
) -> Result<EngineOutcome, EngineError> {
    run_transport_obs(transport, config, sinks, resume, &NullSubscriber)
}

/// [`run_transport`] with a structured-event subscriber (see
/// [`CensusEngine::run_obs`] for what the engine itself emits; the
/// transport adds its own events — e.g. `caai-net`'s session lifecycle).
pub fn run_transport_obs<T: ProbeTransport, S: Subscriber>(
    transport: &T,
    config: &EngineConfig,
    sinks: &mut [&mut dyn ResultSink],
    resume: Option<Checkpoint>,
    obs: &S,
) -> Result<EngineOutcome, EngineError> {
    if config.progress_every > 0 {
        let stage = StageTimer::default();
        run_transport_inner(
            transport,
            config,
            sinks,
            resume,
            &(&stage, obs),
            Some(&stage),
        )
    } else {
        run_transport_inner(transport, config, sinks, resume, obs, None)
    }
}

fn run_transport_inner<T: ProbeTransport, S: Subscriber>(
    transport: &T,
    config: &EngineConfig,
    sinks: &mut [&mut dyn ResultSink],
    resume: Option<Checkpoint>,
    obs: &S,
    stage: Option<&StageTimer>,
) -> Result<EngineOutcome, EngineError> {
    let seed = config.seed;
    let shard = config.shard;
    shard.validate().map_err(EngineError::Config)?;
    let population = transport.population();
    if population > u64::from(u32::MAX) {
        return Err(EngineError::Config(format!(
            "population {population} exceeds the u32 id space"
        )));
    }
    let owned_total = shard.owned_count(population);
    let telemetry = Telemetry::new(owned_total);
    let started = Instant::now();

    // The live snapshot IS the engine state: constant-size aggregates
    // plus the completed-id bitmap. No record is retained here.
    let mut live = match resume {
        Some(ck) => {
            ck.ensure_matches(seed, population, shard)
                .map_err(EngineError::CheckpointMismatch)?;
            telemetry.observe_resumed(&ck.aggregates);
            let counts = crate::telemetry::resumed_counts(&ck.aggregates);
            obs.on_census_resumed(&CensusResumed {
                records: counts.records,
                identified: counts.identified,
                special: counts.special,
                unsure: counts.unsure,
                invalid: counts.invalid,
            });
            ck
        }
        None => Checkpoint::new(seed, population, shard),
    };
    let mut done = live.completed_count();

    // Work list: ids of owned servers without a record yet (u32 — this
    // is the largest engine-owned allocation).
    let pending: Vec<u32> = (0..population as u32)
        .filter(|&id| shard.owns(id) && !live.completed.contains(id))
        .collect();

    let scheduler = BatchScheduler::new(pending.len(), config.batch_size);
    let stop = AtomicBool::new(false);
    let workers = config.workers.max(1).min(pending.len().max(1));
    // Both queues are bounded: when the coordinator stalls (e.g.
    // blocked on a full sink queue), workers block in send instead of
    // growing an O(records) backlog.
    let queue = config.sink_queue.max(1);
    let (tx, rx) = mpsc::sync_channel::<CensusRecord>(queue);
    let (sink_tx, sink_rx) = mpsc::sync_channel::<SinkMsg>(queue);

    let mut run_error: Option<EngineError> = None;
    let mut since_checkpoint: u64 = 0;
    let mut last_written: Option<u64> = None;
    let mut checkpoints_written: u64 = 0;
    let mut budget_hit = false;

    let run_span = span_begin(obs, SpanKind::CensusRun, owned_total as i64, workers as i64);
    let run_id = run_span.id();

    let sink_result = std::thread::scope(|scope| {
        // Dedicated sink thread: drains the bounded queue so slow
        // sinks never stall the coordinator below.
        let sink_thread = scope.spawn(move || -> io::Result<()> {
            for msg in &sink_rx {
                match msg {
                    SinkMsg::Record(record) => {
                        for sink in sinks.iter_mut() {
                            sink.emit(&record)?;
                        }
                    }
                    SinkMsg::Flush(ack) => {
                        for sink in sinks.iter_mut() {
                            sink.flush()?;
                        }
                        // The coordinator may have given up waiting.
                        let _ = ack.send(());
                    }
                }
            }
            for sink in sinks.iter_mut() {
                sink.flush()?;
            }
            Ok(())
        });

        for _ in 0..workers {
            let tx = tx.clone();
            let pending = &pending;
            let scheduler = &scheduler;
            let stop = &stop;
            scope.spawn(move || {
                'claim: while let Some(batch) = scheduler.next_batch() {
                    // Explicit parent: the run span lives on the
                    // coordinator thread, this batch on a worker.
                    let batch_span = span_begin_with_parent(
                        obs,
                        SpanKind::Batch,
                        run_id,
                        batch.start as i64,
                        batch.len() as i64,
                    );
                    for i in batch {
                        if stop.load(Ordering::Relaxed) {
                            batch_span.end(obs);
                            break 'claim;
                        }
                        let id = pending[i];
                        let record = transport.probe(id, seed, obs);
                        debug_assert_eq!(
                            record.server_id, id,
                            "transport contract: probe(id) returns that id's record"
                        );
                        if tx.send(record).is_err() {
                            batch_span.end(obs);
                            break 'claim;
                        }
                    }
                    batch_span.end(obs);
                }
            });
        }
        drop(tx);

        // Coordinator: fold aggregates, mark the bitmap, forward to
        // the sink thread, checkpoint, and enforce the budget.
        for record in &rx {
            if run_error.is_some() {
                // Drain remaining in-flight records without folding.
                continue;
            }
            telemetry.observe(&record, false);
            live.observe(&record);
            obs.on_census_record_observed(&CensusRecordObserved {
                verdict: record.verdict.kind(),
                wmax: record.verdict.wmax(),
            });
            done += 1;
            since_checkpoint += 1;

            let mut sink_dead = sink_tx.send(SinkMsg::Record(record)).is_err();
            if sink_dead {
                // The sink thread bailed; its error surfaces at join.
                stop.store(true, Ordering::Relaxed);
            }
            if config.progress_every > 0 && done.is_multiple_of(config.progress_every) {
                eprintln!("census: {}", telemetry.snapshot());
                if let Some(line) = stage.and_then(StageTimer::line) {
                    eprintln!("census: {line}");
                }
            }
            if !sink_dead
                && config.checkpoint_path.is_some()
                && since_checkpoint >= config.checkpoint_every
            {
                since_checkpoint = 0;
                // Write barrier: every record in this checkpoint must
                // already be flushed through the sinks.
                sink_dead = !sync_sinks(&sink_tx);
                if sink_dead {
                    stop.store(true, Ordering::Relaxed);
                } else {
                    match save_checkpoint(config, &live) {
                        Ok(()) => {
                            last_written = Some(done);
                            checkpoints_written += 1;
                            obs.on_checkpoint_written(&CheckpointWritten { records: done });
                        }
                        Err(e) => {
                            run_error = Some(e);
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                }
            }
            if !budget_hit && config.budget.exhausted(telemetry.probed(), started) {
                budget_hit = true;
                stop.store(true, Ordering::Relaxed);
            }
        }

        drop(sink_tx);
        sink_thread.join().expect("sink thread panicked")
    });
    run_span.end(obs);

    if let Some(e) = run_error {
        return Err(e);
    }
    sink_result?;
    // Final checkpoint — skipped when it would be byte-identical to
    // the last one written (no new records completed since).
    if config.checkpoint_path.is_some() && last_written != Some(done) {
        save_checkpoint(config, &live)?;
        checkpoints_written += 1;
        obs.on_checkpoint_written(&CheckpointWritten { records: done });
    }

    let completed = done == owned_total;
    let stats = telemetry.snapshot();
    Ok(EngineOutcome {
        report: live.aggregates.report(),
        stats,
        completed,
        stop: if completed {
            StopCause::Completed
        } else {
            StopCause::BudgetExhausted
        },
        checkpoints_written,
    })
}

fn save_checkpoint(config: &EngineConfig, live: &Checkpoint) -> Result<(), EngineError> {
    let path = config
        .checkpoint_path
        .as_ref()
        .expect("save_checkpoint called without a checkpoint path");
    live.save(path)?;
    Ok(())
}

/// Engine-internal subscriber behind the stage-timing progress line:
/// lock-free histograms of each probe's gather/verdict split, fed by the
/// workers' [`ProbeTimed`] events and rendered next to the regular
/// `census:` progress line. Composed with the caller's subscriber as a
/// tuple, so it only exists (and only times) when `progress_every` is on.
#[derive(Debug, Default)]
struct StageTimer {
    gather_us: Histogram,
    verdict_us: Histogram,
}

impl StageTimer {
    /// One-line latency breakdown, or `None` before the first probe.
    fn line(&self) -> Option<String> {
        let gather = self.gather_us.snapshot();
        let verdict = self.verdict_us.snapshot();
        if gather.count == 0 {
            return None;
        }
        let total = (gather.sum + verdict.sum).max(1);
        Some(format!(
            "stages | gather p50 {}µs p90 {}µs | verdict p50 {}µs p90 {}µs | \
             gather share {:.1}%",
            gather.quantile(0.5),
            gather.quantile(0.9),
            verdict.quantile(0.5),
            verdict.quantile(0.9),
            100.0 * gather.sum as f64 / total as f64,
        ))
    }
}

impl Subscriber for StageTimer {
    fn on_probe_timed(&self, event: &ProbeTimed) {
        self.gather_us.record(event.gather_us);
        self.verdict_us.record(event.verdict_us);
    }
}

/// Asks the sink thread to flush everything and waits for the ack.
/// Returns `false` if the sink thread has died (its error surfaces when
/// the coordinator joins it).
fn sync_sinks(sink_tx: &mpsc::SyncSender<SinkMsg>) -> bool {
    let (ack_tx, ack_rx) = mpsc::channel();
    if sink_tx.send(SinkMsg::Flush(ack_tx)).is_err() {
        return false;
    }
    ack_rx.recv().is_ok()
}
