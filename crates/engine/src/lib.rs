//! # caai-engine
//!
//! The Internet-scale census engine: turns `caai_core::census` from a
//! blocking batch call into a streaming probe scheduler in the spirit of
//! the paper's §VII-B campaign (and of follow-up censuses such as "The
//! Great Internet TCP Congestion Control Census").
//!
//! The engine adds four capabilities over [`caai_core::census::Census::run`]:
//!
//! 1. **Work-stealing scheduling** ([`scheduler`]): workers pull batches
//!    of servers from an atomic cursor instead of being handed fixed
//!    shards, so a slow server never idles the other workers.
//! 2. **Deterministic per-server randomness**: every probe's RNG is keyed
//!    on `(seed, server_id)` — any worker count and any interleaving
//!    produce the identical census report, byte for byte.
//! 3. **Streaming results and checkpoint/resume** ([`sink`],
//!    [`checkpoint`]): records are emitted to [`sink::ResultSink`]s as
//!    they complete (e.g. a JSONL file), and periodic snapshots of the
//!    completed records let an interrupted census restart and finish
//!    identical to an uninterrupted run.
//! 4. **Budgets and telemetry** ([`budget`], [`telemetry`]): wall-clock
//!    deadlines, max-probe budgets, and live progress/throughput stats.
//!
//! ## Example
//!
//! ```
//! use caai_engine::{CensusEngine, EngineConfig};
//! use caai_engine::sink::AggregatingSink;
//! use caai_core::census::Census;
//! use caai_core::classify::CaaiClassifier;
//! use caai_core::prober::ProberConfig;
//! use caai_core::training::{build_training_set, TrainingConfig};
//! use caai_netem::{rng, ConditionDb};
//! use caai_webmodel::PopulationConfig;
//!
//! let mut train_rng = rng::seeded(1);
//! let db = ConditionDb::paper_2011();
//! let data = build_training_set(&TrainingConfig::quick(2), &db, &mut train_rng);
//! let classifier = CaaiClassifier::train(&data, &mut train_rng);
//! let census = Census::new(classifier, db, ProberConfig::default());
//!
//! let servers = PopulationConfig::small(24).generate(&mut rng::seeded(2));
//! let engine = CensusEngine::new(census, EngineConfig { seed: 7, workers: 4, ..EngineConfig::default() });
//! let mut agg = AggregatingSink::new();
//! let outcome = engine.run(&servers, &mut [&mut agg], None).unwrap();
//! assert!(outcome.completed);
//! assert_eq!(outcome.report.total, 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod checkpoint;
pub mod engine;
pub mod scheduler;
pub mod sink;
pub mod telemetry;

pub use budget::Budget;
pub use checkpoint::Checkpoint;
pub use engine::{CensusEngine, EngineConfig, EngineError, EngineOutcome, StopCause};
pub use scheduler::BatchScheduler;
pub use sink::{AggregatingSink, JsonlSink, ResultSink};
pub use telemetry::{ProgressStats, Telemetry};
