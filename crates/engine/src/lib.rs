//! # caai-engine
//!
//! The Internet-scale census engine: turns `caai_core::census` from a
//! blocking batch call into a streaming probe scheduler in the spirit of
//! the paper's §VII-B campaign (and of follow-up censuses such as "The
//! Great Internet TCP Congestion Control Census").
//!
//! The engine adds six capabilities over [`caai_core::census::Census::run`]:
//!
//! 1. **Work-stealing scheduling** ([`scheduler`]): workers pull batches
//!    of servers from an atomic cursor instead of being handed fixed
//!    shards, so a slow server never idles the other workers.
//! 2. **Deterministic per-server randomness**: every probe's RNG is keyed
//!    on `(seed, server_id)` — any worker count and any interleaving
//!    produce the identical census report, byte for byte.
//! 3. **Constant memory**: the engine retains only a
//!    [`caai_core::census::CensusAggregates`] fold plus a completed-id
//!    bitmap ([`bitmap`]) — O(aggregates + bitmap), never O(records).
//!    Records stream to [`sink::ResultSink`]s (a JSONL file, or the
//!    opt-in record-retaining [`sink::AggregatingSink`]) on a dedicated
//!    sink thread behind a bounded queue, so a slow sink cannot stall
//!    the coordinator.
//! 4. **Checkpoint/resume** ([`checkpoint`]): periodic constant-size v2
//!    snapshots (aggregates + bitmap, atomically renamed, never written
//!    ahead of the flushed sinks) let a census killed mid-flight — even
//!    with SIGKILL — restart and finish identical to an uninterrupted
//!    run. v1 (full-record) checkpoints upgrade transparently on load.
//! 5. **Shard fan-out and merge** ([`shard`], [`merge`]): `--shard k/N`
//!    style specs split a census across machines by `id % N == k`, and
//!    [`merge::merge_pieces`] joins the per-shard checkpoints/JSONL back
//!    into the byte-identical unsharded report.
//! 6. **Budgets and telemetry** ([`budget`], [`telemetry`]): wall-clock
//!    deadlines, max-probe budgets, and live progress/throughput stats.
//!
//! ## Example
//!
//! ```
//! use caai_engine::{CensusEngine, EngineConfig};
//! use caai_engine::sink::AggregatingSink;
//! use caai_core::census::Census;
//! use caai_core::classify::CaaiClassifier;
//! use caai_core::prober::ProberConfig;
//! use caai_core::training::{build_training_set, TrainingConfig};
//! use caai_netem::{rng, ConditionDb};
//! use caai_webmodel::PopulationConfig;
//!
//! let mut train_rng = rng::seeded(1);
//! let db = ConditionDb::paper_2011();
//! let data = build_training_set(&TrainingConfig::quick(2), &db, &mut train_rng);
//! let classifier = CaaiClassifier::train(&data, &mut train_rng);
//! let census = Census::new(classifier, db, ProberConfig::default());
//!
//! let servers = PopulationConfig::small(24).generate(&mut rng::seeded(2));
//! let engine = CensusEngine::new(census, EngineConfig { seed: 7, workers: 4, ..EngineConfig::default() });
//! let mut agg = AggregatingSink::new();
//! let outcome = engine.run(&servers, &mut [&mut agg], None).unwrap();
//! assert!(outcome.completed);
//! assert_eq!(outcome.report.total, 24);
//! // The engine itself is constant-memory: its report carries aggregates
//! // only. Per-record drill-down lives in the opt-in aggregating sink.
//! assert!(outcome.report.records.is_empty());
//! assert_eq!(agg.records().len(), 24);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmap;
pub mod budget;
pub mod checkpoint;
pub mod engine;
pub mod merge;
pub mod scheduler;
pub mod shard;
pub mod sink;
pub mod telemetry;

pub use bitmap::IdBitmap;
pub use budget::Budget;
pub use checkpoint::Checkpoint;
pub use engine::{
    run_transport, run_transport_obs, CensusEngine, EngineConfig, EngineError, EngineOutcome,
    StopCause,
};
pub use merge::{merge_pieces, MergeError, MergedCensus, ShardPiece};
pub use scheduler::BatchScheduler;
pub use shard::ShardSpec;
pub use sink::{AggregatingSink, JsonlMeta, JsonlSink, ResultSink};
pub use telemetry::{ProgressStats, Telemetry};
