//! Joining per-shard census outputs into one report.
//!
//! A census fanned out with `--shard k/N` produces N checkpoints (and/or
//! JSONL files). Because the aggregates are a commutative fold over
//! disjoint server sets, merging them reproduces the **byte-identical**
//! report an unsharded run of the same `(population, seed)` would have
//! printed. This module validates that the pieces actually form that
//! partition — same run parameters, every shard present exactly once,
//! every shard complete — before summing.
//!
//! ```
//! use caai_engine::merge::{merge_pieces, ShardPiece};
//! use caai_engine::{Checkpoint, ShardSpec};
//! use caai_core::census::{CensusRecord, Verdict};
//! use caai_core::trace::InvalidReason;
//! use caai_congestion::AlgorithmId;
//!
//! // Two complete half-shards of a 4-server census ...
//! let record = |id: u32| CensusRecord {
//!     server_id: id,
//!     truth: Some(AlgorithmId::Reno),
//!     verdict: Verdict::Invalid(InvalidReason::PageTooShort),
//! };
//! let shard = |k: u32| -> Checkpoint {
//!     let spec = ShardSpec { index: k, count: 2 };
//!     let ids = (0..4).filter(|id| spec.owns(*id)).map(record).collect::<Vec<_>>();
//!     Checkpoint::from_records(1, 4, spec, &ids)
//! };
//! let pieces = vec![ShardPiece::from(shard(0)), ShardPiece::from(shard(1))];
//! let merged = merge_pieces(pieces, false).unwrap();
//! assert_eq!(merged.report.total, 4);
//! ```

use crate::bitmap::IdBitmap;
use crate::checkpoint::Checkpoint;
use crate::shard::ShardSpec;
use crate::sink::JsonlFile;
use caai_core::census::{CensusAggregates, CensusReport};
use std::fmt;

/// One shard's contribution to a merged census: run parameters, the
/// aggregate fold, and which server ids it completed.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPiece {
    /// The census seed the shard ran under.
    pub seed: u64,
    /// Population size of the whole census.
    pub population: u64,
    /// Which shard of the population this piece is.
    pub shard: ShardSpec,
    /// The fold of every record the shard completed.
    pub aggregates: CensusAggregates,
    /// Which server ids the shard completed.
    pub completed: IdBitmap,
}

impl From<Checkpoint> for ShardPiece {
    fn from(ck: Checkpoint) -> Self {
        ShardPiece {
            seed: ck.seed,
            population: ck.population,
            shard: ck.shard,
            aggregates: ck.aggregates,
            completed: ck.completed,
        }
    }
}

impl ShardPiece {
    /// Builds a piece from a parsed JSONL file, folding its records. The
    /// file must carry exactly one provenance meta line (shard files
    /// written by `caai census --out` always do) and every record must
    /// belong to the declared shard.
    pub fn from_jsonl(file: &JsonlFile) -> Result<Self, MergeError> {
        let meta = match file.metas.as_slice() {
            [meta] => *meta,
            [] => return Err(MergeError::MissingMeta),
            metas => {
                let mut it = metas.iter();
                let first = it.next().expect("nonempty");
                if it.any(|m| m != first) {
                    return Err(MergeError::ConflictingMeta);
                }
                *first
            }
        };
        let mut ck = Checkpoint::new(meta.seed, meta.population, meta.shard);
        for record in &file.records {
            if u64::from(record.server_id) >= meta.population {
                return Err(MergeError::RecordOutOfRange {
                    server_id: record.server_id,
                    population: meta.population,
                });
            }
            if !meta.shard.owns(record.server_id) {
                return Err(MergeError::ForeignRecord {
                    server_id: record.server_id,
                    shard: meta.shard,
                });
            }
            ck.observe(record);
        }
        Ok(ShardPiece::from(ck))
    }

    /// Servers this piece completed out of the servers it owns.
    pub fn progress(&self) -> (u64, u64) {
        (
            self.completed.count(),
            self.shard.owned_count(self.population),
        )
    }
}

/// A merged census: the joined report plus the run parameters it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedCensus {
    /// The joined, record-free report — byte-identical to an unsharded
    /// run when every shard was present and complete.
    pub report: CensusReport,
    /// The census seed all pieces ran under.
    pub seed: u64,
    /// Population size of the whole census.
    pub population: u64,
    /// How many shards the census was split into.
    pub shards: u32,
    /// Whether every server of the population is covered.
    pub complete: bool,
}

/// Why a set of shard pieces cannot be merged.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No input pieces.
    Empty,
    /// A JSONL input carried no provenance meta line.
    MissingMeta,
    /// A JSONL input carried meta lines from different runs.
    ConflictingMeta,
    /// A JSONL input held a record its declared shard does not own.
    ForeignRecord {
        /// The trespassing record's server id.
        server_id: u32,
        /// The shard the file claimed to be.
        shard: ShardSpec,
    },
    /// A JSONL input held a record outside its declared population.
    RecordOutOfRange {
        /// The out-of-range record's server id.
        server_id: u32,
        /// The population the file's meta line declared.
        population: u64,
    },
    /// Two pieces disagree on `(seed, population)` or shard count.
    ParameterMismatch(String),
    /// The same shard index appears twice.
    DuplicateShard(ShardSpec),
    /// Shard indices missing from the partition.
    MissingShards(Vec<u32>),
    /// A shard has not completed all the servers it owns.
    IncompleteShard {
        /// Which shard is short.
        shard: ShardSpec,
        /// Servers it completed.
        done: u64,
        /// Servers it owns.
        owned: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard inputs to merge"),
            MergeError::MissingMeta => write!(
                f,
                "JSONL input has no meta line; only files written by \
                 `caai census --out` can be merged"
            ),
            MergeError::ConflictingMeta => {
                write!(f, "JSONL input mixes meta lines from different runs")
            }
            MergeError::ForeignRecord { server_id, shard } => write!(
                f,
                "record for server {server_id} does not belong to shard {shard}"
            ),
            MergeError::RecordOutOfRange {
                server_id,
                population,
            } => write!(
                f,
                "record for server {server_id} is outside the declared \
                 population of {population}"
            ),
            MergeError::ParameterMismatch(msg) => write!(f, "shard mismatch: {msg}"),
            MergeError::DuplicateShard(spec) => {
                write!(f, "shard {spec} appears more than once")
            }
            MergeError::MissingShards(missing) => {
                let list: Vec<String> = missing.iter().map(ToString::to_string).collect();
                write!(f, "missing shard indices: {}", list.join(", "))
            }
            MergeError::IncompleteShard { shard, done, owned } => write!(
                f,
                "shard {shard} is incomplete ({done}/{owned} servers) — resume it \
                 first, or merge with --allow-partial"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Joins shard pieces into one census report.
///
/// Validates that all pieces share `(seed, population)` and shard count,
/// that each shard index appears exactly once, and — unless
/// `allow_partial` — that every piece completed all the servers it owns.
/// With `allow_partial`, missing shards and incomplete pieces are
/// tolerated and the merged report covers whatever was measured
/// (`complete` says whether that is the whole population).
pub fn merge_pieces(
    pieces: Vec<ShardPiece>,
    allow_partial: bool,
) -> Result<MergedCensus, MergeError> {
    let Some(first) = pieces.first() else {
        return Err(MergeError::Empty);
    };
    let (seed, population, shards) = (first.seed, first.population, first.shard.count);

    let mut seen = vec![false; shards as usize];
    let mut aggregates = CensusAggregates::default();
    let mut completed = IdBitmap::new(population);
    for piece in &pieces {
        if piece.seed != seed {
            return Err(MergeError::ParameterMismatch(format!(
                "seed {} vs {seed}",
                piece.seed
            )));
        }
        if piece.population != population {
            return Err(MergeError::ParameterMismatch(format!(
                "population {} vs {population}",
                piece.population
            )));
        }
        if piece.shard.count != shards {
            return Err(MergeError::ParameterMismatch(format!(
                "shard count {} vs {shards}",
                piece.shard.count
            )));
        }
        let slot = &mut seen[piece.shard.index as usize];
        if *slot {
            return Err(MergeError::DuplicateShard(piece.shard));
        }
        *slot = true;
        let (done, owned) = piece.progress();
        if done < owned && !allow_partial {
            return Err(MergeError::IncompleteShard {
                shard: piece.shard,
                done,
                owned,
            });
        }
        aggregates.merge(&piece.aggregates);
        completed.union_with(&piece.completed);
    }

    let missing: Vec<u32> = (0..shards).filter(|&k| !seen[k as usize]).collect();
    if !missing.is_empty() && !allow_partial {
        return Err(MergeError::MissingShards(missing));
    }

    Ok(MergedCensus {
        report: aggregates.report(),
        seed,
        population,
        shards,
        complete: completed.count() == population,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_congestion::AlgorithmId;
    use caai_core::census::{CensusRecord, Verdict};
    use caai_core::classes::ClassLabel;

    fn record(id: u32) -> CensusRecord {
        CensusRecord {
            server_id: id,
            truth: Some(AlgorithmId::Bic),
            verdict: Verdict::Identified(ClassLabel::Bic, 512),
        }
    }

    fn complete_shard(k: u32, n: u32, population: u64) -> ShardPiece {
        let spec = ShardSpec { index: k, count: n };
        let records: Vec<CensusRecord> = (0..population as u32)
            .filter(|id| spec.owns(*id))
            .map(record)
            .collect();
        ShardPiece::from(Checkpoint::from_records(5, population, spec, &records))
    }

    #[test]
    fn complete_partition_merges_to_the_whole_population() {
        let pieces: Vec<ShardPiece> = (0..4).map(|k| complete_shard(k, 4, 22)).collect();
        let merged = merge_pieces(pieces, false).unwrap();
        assert!(merged.complete);
        assert_eq!(merged.report.total, 22);
        assert_eq!(merged.shards, 4);
    }

    #[test]
    fn merge_order_does_not_matter() {
        let forward: Vec<ShardPiece> = (0..3).map(|k| complete_shard(k, 3, 17)).collect();
        let mut backward = forward.clone();
        backward.reverse();
        assert_eq!(
            merge_pieces(forward, false).unwrap().report,
            merge_pieces(backward, false).unwrap().report
        );
    }

    #[test]
    fn mismatched_and_duplicate_pieces_are_refused() {
        assert_eq!(
            merge_pieces(Vec::new(), false).unwrap_err(),
            MergeError::Empty
        );

        let mut wrong_seed = complete_shard(1, 2, 10);
        wrong_seed.seed = 99;
        let err = merge_pieces(vec![complete_shard(0, 2, 10), wrong_seed], false).unwrap_err();
        assert!(matches!(err, MergeError::ParameterMismatch(_)), "{err}");

        let err = merge_pieces(
            vec![complete_shard(0, 2, 10), complete_shard(0, 2, 10)],
            false,
        )
        .unwrap_err();
        assert!(matches!(err, MergeError::DuplicateShard(_)), "{err}");

        let err = merge_pieces(vec![complete_shard(0, 2, 10)], false).unwrap_err();
        assert_eq!(err, MergeError::MissingShards(vec![1]));
    }

    #[test]
    fn jsonl_record_outside_population_is_an_error_not_a_panic() {
        let file = crate::sink::JsonlFile {
            metas: vec![crate::sink::JsonlMeta {
                seed: 5,
                population: 10,
                shard: ShardSpec { index: 0, count: 2 },
            }],
            records: vec![record(10)], // owned by 0/2, but >= population
            corrupt: Vec::new(),
        };
        let err = ShardPiece::from_jsonl(&file).unwrap_err();
        assert!(
            matches!(err, MergeError::RecordOutOfRange { server_id: 10, .. }),
            "{err}"
        );
    }

    #[test]
    fn incomplete_shards_need_allow_partial() {
        let full = complete_shard(0, 2, 10);
        let partial = ShardPiece::from(Checkpoint::from_records(
            5,
            10,
            ShardSpec { index: 1, count: 2 },
            &[record(1)], // owns 1,3,5,7,9 but only finished server 1
        ));
        let err = merge_pieces(vec![full.clone(), partial.clone()], false).unwrap_err();
        assert!(
            matches!(
                err,
                MergeError::IncompleteShard {
                    done: 1,
                    owned: 5,
                    ..
                }
            ),
            "{err}"
        );

        let merged = merge_pieces(vec![full, partial], true).unwrap();
        assert!(!merged.complete);
        assert_eq!(merged.report.total, 6);
    }
}
