//! Work-stealing batch scheduler.
//!
//! A single atomic cursor over the pending work list replaces the seed
//! census's fixed per-worker chunks: every worker claims the next batch
//! of indices when it runs dry, so one pathological server (or one slow
//! core) never leaves the rest of the pool idle. Because each server's
//! probe RNG is keyed on `(seed, server_id)` rather than on which worker
//! claims it, the claiming order is irrelevant to the result.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Hands out disjoint `Range<usize>` batches of `0..total` to concurrent
/// workers via a single `fetch_add` cursor.
#[derive(Debug)]
pub struct BatchScheduler {
    cursor: AtomicUsize,
    total: usize,
    batch: usize,
}

impl BatchScheduler {
    /// Creates a scheduler over `total` work items claimed `batch` at a
    /// time. A batch size of 0 is promoted to 1.
    pub fn new(total: usize, batch: usize) -> Self {
        BatchScheduler {
            cursor: AtomicUsize::new(0),
            total,
            batch: batch.max(1),
        }
    }

    /// Claims the next batch, or `None` when the work list is exhausted.
    pub fn next_batch(&self) -> Option<Range<usize>> {
        let start = self.cursor.fetch_add(self.batch, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some(start..(start + self.batch).min(self.total))
    }

    /// How many items have been claimed so far (may exceed `total` once
    /// the scheduler runs dry; callers should clamp for display).
    pub fn claimed(&self) -> usize {
        self.cursor.load(Ordering::Relaxed).min(self.total)
    }

    /// Total number of work items.
    pub fn total(&self) -> usize {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn batches_cover_everything_exactly_once() {
        let sched = BatchScheduler::new(103, 7);
        let mut seen = [false; 103];
        while let Some(range) = sched.next_batch() {
            for i in range {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(sched.claimed(), 103);
    }

    #[test]
    fn empty_work_list_yields_no_batches() {
        let sched = BatchScheduler::new(0, 8);
        assert!(sched.next_batch().is_none());
    }

    #[test]
    fn concurrent_claims_are_disjoint() {
        let sched = BatchScheduler::new(1000, 3);
        let seen = Mutex::new(vec![0u32; 1000]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while let Some(range) = sched.next_batch() {
                        let mut seen = seen.lock().unwrap();
                        for i in range {
                            seen[i] += 1;
                        }
                    }
                });
            }
        });
        assert!(seen.into_inner().unwrap().iter().all(|&n| n == 1));
    }
}
