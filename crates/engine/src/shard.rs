//! Multi-host shard specifications.
//!
//! A census fans out across machines by giving each run a shard spec
//! `k/N`: the run probes exactly the servers with `id % N == k`. Because
//! every probe's RNG is keyed on `(seed, server_id)` — never on which
//! run performs it — the N shards together measure exactly what one
//! unsharded run would have, and their checkpoints/JSONL merge back into
//! the byte-identical report (see [`crate::merge`]).

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::str::FromStr;

/// Which slice of the population one census run owns: servers with
/// `id % count == index`.
///
/// ```
/// use caai_engine::ShardSpec;
///
/// let shard: ShardSpec = "1/4".parse().unwrap();
/// assert!(shard.owns(5) && !shard.owns(4));
/// assert_eq!(shard.to_string(), "1/4");
/// assert_eq!(shard.owned_count(10), 3); // ids 1, 5, 9
/// assert_eq!(ShardSpec::full().owned_count(10), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This run's shard index, in `0..count`.
    pub index: u32,
    /// Total number of shards the census is split into.
    pub count: u32,
}

impl ShardSpec {
    /// The trivial spec covering the whole population (`0/1`).
    pub fn full() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// Whether this is the trivial whole-population spec.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns server `id`.
    pub fn owns(&self, id: u32) -> bool {
        id % self.count == self.index
    }

    /// How many of the ids `0..population` this shard owns.
    pub fn owned_count(&self, population: u64) -> u64 {
        let (index, count) = (u64::from(self.index), u64::from(self.count));
        if index >= population {
            0
        } else {
            (population - index - 1) / count + 1
        }
    }

    /// Validates the spec: `count >= 1` and `index < count`.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("shard count must be at least 1".to_owned());
        }
        if self.index >= self.count {
            return Err(format!(
                "shard index {} out of range for {} shards",
                self.index, self.count
            ));
        }
        Ok(())
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec::full()
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for ShardSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec `{s}`: expected k/N, e.g. 0/4"))?;
        let index: u32 = index
            .trim()
            .parse()
            .map_err(|e| format!("shard index `{index}`: {e}"))?;
        let count: u32 = count
            .trim()
            .parse()
            .map_err(|e| format!("shard count `{count}`: {e}"))?;
        let spec = ShardSpec { index, count };
        spec.validate()?;
        Ok(spec)
    }
}

// Serialized as the human-readable "k/N" string, so checkpoints and JSONL
// meta lines show the same spec the operator typed on the command line.
impl Serialize for ShardSpec {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for ShardSpec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::msg("shard spec must be a \"k/N\" string"))?;
        s.parse().map_err(serde::Error::msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        let spec: ShardSpec = "2/5".parse().unwrap();
        assert_eq!(spec, ShardSpec { index: 2, count: 5 });
        assert_eq!(spec.to_string(), "2/5");
        let back: ShardSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!("3".parse::<ShardSpec>().is_err());
        assert!("a/4".parse::<ShardSpec>().is_err());
        assert!("4/4".parse::<ShardSpec>().is_err(), "index out of range");
        assert!("0/0".parse::<ShardSpec>().is_err(), "zero shards");
    }

    #[test]
    fn shards_partition_the_population() {
        let n = 4u32;
        let population = 103u64;
        let shards: Vec<ShardSpec> = (0..n).map(|k| ShardSpec { index: k, count: n }).collect();
        let mut owners = vec![0u32; population as usize];
        for shard in &shards {
            for id in 0..population as u32 {
                if shard.owns(id) {
                    owners[id as usize] += 1;
                }
            }
        }
        assert!(owners.iter().all(|&n| n == 1), "each id has one owner");
        let total: u64 = shards.iter().map(|s| s.owned_count(population)).sum();
        assert_eq!(total, population);
        assert_eq!(ShardSpec::full().owned_count(population), population);
        assert_eq!(ShardSpec { index: 3, count: 4 }.owned_count(3), 0);
    }
}
