//! Streaming result sinks.
//!
//! The seed census accumulated every [`CensusRecord`] in RAM and returned
//! them all at once. At Internet scale the engine instead *streams*
//! records to [`ResultSink`]s as workers complete them: a JSONL file for
//! offline analysis ([`JsonlSink`]), an in-memory aggregator for the
//! Table IV report ([`AggregatingSink`]), or both at once.

use caai_core::census::{assemble, CensusRecord, CensusReport};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Receives census records as they complete.
///
/// Sinks are driven from the engine's coordinator thread, in completion
/// order — which varies with worker interleaving. Consumers that need the
/// canonical order should sort by `server_id` (see [`read_jsonl`]).
pub trait ResultSink {
    /// Consumes one completed record.
    fn emit(&mut self, record: &CensusRecord) -> io::Result<()>;

    /// Flushes any buffered output (called at the end of a run).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams records as one JSON object per line.
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, written: 0 }
    }

    /// Number of records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer (flushing first is the caller's job).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> ResultSink for JsonlSink<W> {
    fn emit(&mut self, record: &CensusRecord) -> io::Result<()> {
        let json = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(json.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Reads a JSONL record stream back, returning records sorted by
/// `server_id` (deduplicated, last record wins). Feeding the result to
/// [`caai_core::census::assemble`] reproduces the engine's canonical
/// report regardless of the completion order the file was written in.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<CensusRecord>> {
    let reader = BufReader::new(File::open(path)?);
    let mut records: Vec<CensusRecord> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: CensusRecord = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        records.push(record);
    }
    // Last record per server id wins (a resumed run's file may repeat
    // ids); BTreeMap insertion order implements that directly.
    let deduped: std::collections::BTreeMap<u32, CensusRecord> =
        records.into_iter().map(|r| (r.server_id, r)).collect();
    Ok(deduped.into_values().collect())
}

/// Accumulates records in memory and folds them into a [`CensusReport`].
#[derive(Debug, Default)]
pub struct AggregatingSink {
    records: Vec<CensusRecord>,
}

impl AggregatingSink {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        AggregatingSink::default()
    }

    /// Records seen so far, in completion order.
    pub fn records(&self) -> &[CensusRecord] {
        &self.records
    }

    /// Sorts into canonical `server_id` order and assembles the report.
    pub fn into_report(mut self) -> CensusReport {
        self.records.sort_by_key(|r| r.server_id);
        assemble(self.records)
    }
}

impl ResultSink for AggregatingSink {
    fn emit(&mut self, record: &CensusRecord) -> io::Result<()> {
        self.records.push(*record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_congestion::AlgorithmId;
    use caai_core::census::Verdict;
    use caai_core::classes::ClassLabel;
    use caai_core::trace::InvalidReason;

    fn records() -> Vec<CensusRecord> {
        vec![
            CensusRecord {
                server_id: 2,
                truth: AlgorithmId::CubicV2,
                verdict: Verdict::Identified(ClassLabel::Cubic1, 512),
            },
            CensusRecord {
                server_id: 0,
                truth: AlgorithmId::Reno,
                verdict: Verdict::Invalid(InvalidReason::PageTooShort),
            },
            CensusRecord {
                server_id: 1,
                truth: AlgorithmId::Htcp,
                verdict: Verdict::Unsure(128),
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_out_of_order_records() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("caai-sink-test-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for r in records() {
                sink.emit(&r).unwrap();
            }
            ResultSink::flush(&mut sink).unwrap();
        }
        let back = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let ids: Vec<u32> = back.iter().map(|r| r.server_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let mut sorted = records();
        sorted.sort_by_key(|r| r.server_id);
        assert_eq!(back, sorted);
    }

    #[test]
    fn aggregating_sink_builds_canonical_report() {
        let mut sink = AggregatingSink::new();
        for r in records() {
            sink.emit(&r).unwrap();
        }
        let report = sink.into_report();
        assert_eq!(report.total, 3);
        assert_eq!(report.valid_total(), 2);
        let ids: Vec<u32> = report.records.iter().map(|r| r.server_id).collect();
        assert_eq!(ids, vec![0, 1, 2], "records must be in canonical order");
    }
}
