//! Streaming result sinks.
//!
//! The seed census accumulated every [`CensusRecord`] in RAM and returned
//! them all at once. At Internet scale the engine instead *streams*
//! records to [`ResultSink`]s as workers complete them: a JSONL file for
//! offline analysis ([`JsonlSink`]), an in-memory aggregator
//! ([`AggregatingSink`]) when per-record drill-down is wanted, or both at
//! once. Since checkpoint v2 the engine itself retains no records — a
//! sink is the only place records survive a run.
//!
//! Sinks run on a dedicated thread behind a bounded queue (see
//! [`crate::engine`]), so they must be [`Send`]; a slow sink only
//! back-pressures the coordinator once the queue fills.

use crate::shard::ShardSpec;
use caai_core::census::{assemble, CensusRecord, CensusReport};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Receives census records as they complete.
///
/// The engine drives sinks from a dedicated sink thread, in completion
/// order — which varies with worker interleaving. Consumers that need the
/// canonical order should sort by `server_id` (see [`read_jsonl`]).
pub trait ResultSink: Send {
    /// Consumes one completed record.
    fn emit(&mut self, record: &CensusRecord) -> io::Result<()>;

    /// Flushes any buffered output (called at the end of a run).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The provenance header of a census JSONL file: which run produced it.
///
/// Serialized as the first line of the file, wrapped in a `{"meta": ...}`
/// object so it can never be confused with a record line. `caai
/// census-merge` uses it to validate that per-shard files belong to the
/// same `(seed, population)` run and together cover every shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JsonlMeta {
    /// The census seed.
    pub seed: u64,
    /// Population size.
    pub population: u64,
    /// Which shard of the population the writing run owned.
    pub shard: ShardSpec,
}

/// The on-disk wrapper distinguishing a meta line from a record line.
#[derive(Debug, Serialize, Deserialize)]
struct JsonlMetaLine {
    meta: JsonlMeta,
}

/// Streams records as one JSON object per line.
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Opens a JSONL file at `path` for appending (creating it if
    /// absent). This is the resume path: a v2 checkpoint cannot replay
    /// old records, so the file written before the interruption is kept
    /// and only new records are added.
    ///
    /// A non-empty file first gets a newline: if the previous run was
    /// SIGKILLed mid-write its last line may be partial, and the newline
    /// terminates it so new lines never concatenate onto the fragment
    /// (the fragment itself is skipped by [`read_jsonl_tagged`]).
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if file.metadata()?.len() > 0 {
            file.write_all(b"\n")?;
        }
        Ok(JsonlSink::new(BufWriter::new(file)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, written: 0 }
    }

    /// Writes a provenance meta line (conventionally first in the file).
    /// Meta lines do not count toward [`written`](JsonlSink::written).
    pub fn write_meta(&mut self, meta: &JsonlMeta) -> io::Result<()> {
        let line = serde_json::to_string(&JsonlMetaLine { meta: *meta })
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Number of records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer (flushing first is the caller's job).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + Send> ResultSink for JsonlSink<W> {
    fn emit(&mut self, record: &CensusRecord) -> io::Result<()> {
        let json = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.writer.write_all(json.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.written += 1;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// A census JSONL file, parsed: its meta lines (one per writing run) and
/// its records in canonical `server_id` order (deduplicated, last wins).
#[derive(Debug, Clone, PartialEq)]
pub struct JsonlFile {
    /// Every meta line found, in file order.
    pub metas: Vec<JsonlMeta>,
    /// Records sorted by `server_id`, deduplicated (last record wins).
    pub records: Vec<CensusRecord>,
    /// Unparseable lines, as `(line_number, parse_error)`. A SIGKILLed
    /// run legitimately leaves one partial line; anything here was never
    /// checkpointed (the engine flushes sinks before every checkpoint),
    /// so a resumed run re-probes and re-emits those records.
    pub corrupt: Vec<(usize, String)>,
}

/// Reads a JSONL stream back: meta lines and records, skipping (but
/// reporting) corrupt lines. Feeding the records to
/// [`caai_core::census::assemble`] reproduces the canonical report
/// regardless of the completion order the file was written in.
pub fn read_jsonl_tagged(path: impl AsRef<Path>) -> io::Result<JsonlFile> {
    let reader = BufReader::new(File::open(path)?);
    let mut metas = Vec::new();
    let mut records: Vec<CensusRecord> = Vec::new();
    let mut corrupt = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<CensusRecord>(&line) {
            Ok(record) => records.push(record),
            Err(record_err) => match serde_json::from_str::<JsonlMetaLine>(&line) {
                Ok(meta) => metas.push(meta.meta),
                Err(_) => corrupt.push((lineno + 1, record_err.to_string())),
            },
        }
    }
    // Last record per server id wins (a resumed run's file may repeat
    // ids); BTreeMap insertion order implements that directly.
    let deduped: std::collections::BTreeMap<u32, CensusRecord> =
        records.into_iter().map(|r| (r.server_id, r)).collect();
    Ok(JsonlFile {
        metas,
        records: deduped.into_values().collect(),
        corrupt,
    })
}

/// Whether the file's first line looks like census JSONL (a record or a
/// meta line) rather than some other JSON document (e.g. a checkpoint).
/// Reads only one line, so sniffing a multi-gigabyte record stream is
/// O(one line), not O(file).
pub fn sniff_jsonl(path: impl AsRef<Path>) -> io::Result<bool> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut first = String::new();
    reader.read_line(&mut first)?;
    Ok(serde_json::from_str::<CensusRecord>(&first).is_ok()
        || serde_json::from_str::<JsonlMetaLine>(&first).is_ok())
}

/// Reads a JSONL record stream back, returning records sorted by
/// `server_id` (deduplicated, last record wins; meta lines skipped).
/// Unlike [`read_jsonl_tagged`], any corrupt line is an error.
pub fn read_jsonl(path: impl AsRef<Path>) -> io::Result<Vec<CensusRecord>> {
    let file = read_jsonl_tagged(path)?;
    if let Some((lineno, err)) = file.corrupt.first() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("line {lineno}: {err}"),
        ));
    }
    Ok(file.records)
}

/// Accumulates records in memory and folds them into a [`CensusReport`].
///
/// This is the *opt-in* record-retention path: the engine itself keeps
/// only constant-size aggregates, so attach an `AggregatingSink` when a
/// run needs per-record drill-down (and accept the O(population) memory).
#[derive(Debug, Default)]
pub struct AggregatingSink {
    records: Vec<CensusRecord>,
}

impl AggregatingSink {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        AggregatingSink::default()
    }

    /// Records seen so far, in completion order.
    pub fn records(&self) -> &[CensusRecord] {
        &self.records
    }

    /// Sorts into canonical `server_id` order and assembles the report
    /// (records included).
    pub fn into_report(mut self) -> CensusReport {
        self.records.sort_by_key(|r| r.server_id);
        assemble(self.records)
    }
}

impl ResultSink for AggregatingSink {
    fn emit(&mut self, record: &CensusRecord) -> io::Result<()> {
        self.records.push(*record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_congestion::AlgorithmId;
    use caai_core::census::Verdict;
    use caai_core::classes::ClassLabel;
    use caai_core::trace::InvalidReason;

    fn records() -> Vec<CensusRecord> {
        vec![
            CensusRecord {
                server_id: 2,
                truth: Some(AlgorithmId::CubicV2),
                verdict: Verdict::Identified(ClassLabel::Cubic1, 512),
            },
            CensusRecord {
                server_id: 0,
                truth: Some(AlgorithmId::Reno),
                verdict: Verdict::Invalid(InvalidReason::PageTooShort),
            },
            CensusRecord {
                server_id: 1,
                truth: Some(AlgorithmId::Htcp),
                verdict: Verdict::Unsure(128),
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_out_of_order_records() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("caai-sink-test-{}.jsonl", std::process::id()));
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            for r in records() {
                sink.emit(&r).unwrap();
            }
            ResultSink::flush(&mut sink).unwrap();
        }
        let back = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let ids: Vec<u32> = back.iter().map(|r| r.server_id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let mut sorted = records();
        sorted.sort_by_key(|r| r.server_id);
        assert_eq!(back, sorted);
    }

    #[test]
    fn meta_lines_round_trip_and_do_not_pollute_records() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("caai-sink-meta-test-{}.jsonl", std::process::id()));
        let meta = JsonlMeta {
            seed: 7,
            population: 100,
            shard: "1/4".parse().unwrap(),
        };
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.write_meta(&meta).unwrap();
            for r in records() {
                sink.emit(&r).unwrap();
            }
            assert_eq!(sink.written(), 3, "meta must not count as a record");
            ResultSink::flush(&mut sink).unwrap();
        }
        let file = read_jsonl_tagged(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(file.metas, vec![meta]);
        assert_eq!(file.records.len(), 3);
    }

    #[test]
    fn append_mode_extends_an_existing_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "caai-sink-append-test-{}.jsonl",
            std::process::id()
        ));
        let all = records();
        {
            let mut sink = JsonlSink::create(&path).unwrap();
            sink.emit(&all[0]).unwrap();
            ResultSink::flush(&mut sink).unwrap();
        }
        {
            let mut sink = JsonlSink::append(&path).unwrap();
            sink.emit(&all[1]).unwrap();
            sink.emit(&all[2]).unwrap();
            ResultSink::flush(&mut sink).unwrap();
        }
        let back = read_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), 3, "append must keep the first run's record");
    }

    #[test]
    fn append_terminates_a_partial_line_from_a_killed_run() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "caai-sink-partial-test-{}.jsonl",
            std::process::id()
        ));
        let all = records();
        // Simulate a SIGKILL mid-write: a complete record, then a torn one.
        let full_line = serde_json::to_string(&all[0]).unwrap();
        let torn_line = &serde_json::to_string(&all[1]).unwrap()[..20];
        std::fs::write(&path, format!("{full_line}\n{torn_line}")).unwrap();
        {
            let mut sink = JsonlSink::append(&path).unwrap();
            sink.emit(&all[2]).unwrap();
            ResultSink::flush(&mut sink).unwrap();
        }
        let file = read_jsonl_tagged(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(file.records.len(), 2, "torn line skipped, new line intact");
        assert_eq!(file.corrupt.len(), 1);
        assert_eq!(file.corrupt[0].0, 2, "the torn line is line 2");
    }

    #[test]
    fn garbage_lines_are_rejected_with_a_line_number() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "caai-sink-garbage-test-{}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, "{\"not\": \"a record\"}\n").unwrap();
        let err = read_jsonl(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn aggregating_sink_builds_canonical_report() {
        let mut sink = AggregatingSink::new();
        for r in records() {
            sink.emit(&r).unwrap();
        }
        let report = sink.into_report();
        assert_eq!(report.total, 3);
        assert_eq!(report.valid_total(), 2);
        let ids: Vec<u32> = report.records.iter().map(|r| r.server_id).collect();
        assert_eq!(ids, vec![0, 1, 2], "records must be in canonical order");
    }
}
