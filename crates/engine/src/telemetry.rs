//! Live progress and throughput telemetry.
//!
//! Lock-free [`caai_obs::Counter`]s updated as records stream out of the
//! worker pool, snapshotted into [`ProgressStats`] for progress lines,
//! the CLI summary, and tests. The paper probed ~63k servers over weeks;
//! at that scale "how fast, how valid, how far along" must be observable
//! while the census runs, not after.

use caai_core::census::{CensusAggregates, CensusRecord, Verdict};
use caai_obs::Counter;
use std::fmt;
use std::time::Instant;

/// Per-verdict totals extracted from a resume checkpoint's aggregates,
/// shared between [`Telemetry::observe_resumed`] and the engine's
/// `CensusResumed` event so both report the same numbers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ResumedCounts {
    pub records: u64,
    pub identified: u64,
    pub special: u64,
    pub unsure: u64,
    pub invalid: u64,
}

pub(crate) fn resumed_counts(agg: &CensusAggregates) -> ResumedCounts {
    let invalid: usize = agg.invalid.values().sum();
    let mut special = 0usize;
    let mut unsure = 0usize;
    let mut identified = 0usize;
    for col in agg.columns.values() {
        special += col.special.values().sum::<usize>();
        unsure += col.unsure;
        identified += col.identified.values().sum::<usize>();
    }
    ResumedCounts {
        records: agg.total as u64,
        identified: identified as u64,
        special: special as u64,
        unsure: unsure as u64,
        invalid: invalid as u64,
    }
}

/// Lock-free counters shared between the engine and its observers.
///
/// ```
/// use caai_engine::Telemetry;
/// use caai_core::census::{CensusRecord, Verdict};
/// use caai_core::classes::ClassLabel;
/// use caai_congestion::AlgorithmId;
///
/// let telemetry = Telemetry::new(100);
/// telemetry.observe(
///     &CensusRecord {
///         server_id: 0,
///         truth: Some(AlgorithmId::Bic),
///         verdict: Verdict::Identified(ClassLabel::Bic, 512),
///     },
///     false,
/// );
/// let stats = telemetry.snapshot();
/// assert_eq!((stats.done, stats.identified), (1, 1));
/// assert_eq!(stats.valid_rate(), 1.0);
/// ```
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    total: u64,
    resumed: Counter,
    probed: Counter,
    invalid: Counter,
    special: Counter,
    unsure: Counter,
    identified: Counter,
}

impl Telemetry {
    /// Creates telemetry for a census over `total` servers.
    pub fn new(total: u64) -> Self {
        Telemetry {
            started: Instant::now(),
            total,
            resumed: Counter::new(),
            probed: Counter::new(),
            invalid: Counter::new(),
            special: Counter::new(),
            unsure: Counter::new(),
            identified: Counter::new(),
        }
    }

    /// Counts one record. `resumed` records came from a checkpoint and do
    /// not contribute to this run's probe throughput.
    pub fn observe(&self, record: &CensusRecord, resumed: bool) {
        if resumed {
            self.resumed.incr();
        } else {
            self.probed.incr();
        }
        let counter = match record.verdict {
            Verdict::Invalid(_) => &self.invalid,
            Verdict::Special(..) => &self.special,
            Verdict::Unsure(_) => &self.unsure,
            Verdict::Identified(..) => &self.identified,
        };
        counter.incr();
    }

    /// Counts a resume checkpoint's aggregates in one shot. Since
    /// checkpoint v2 retains aggregates rather than records, this is how
    /// resumed work enters the counters: it adds to `resumed` (not to
    /// this run's probe throughput) and to the per-verdict counts.
    pub fn observe_resumed(&self, agg: &CensusAggregates) {
        let counts = resumed_counts(agg);
        self.resumed.add(counts.records);
        self.invalid.add(counts.invalid);
        self.special.add(counts.special);
        self.unsure.add(counts.unsure);
        self.identified.add(counts.identified);
    }

    /// Number of probes performed by this run (excluding resumed records).
    pub fn probed(&self) -> u64 {
        self.probed.get()
    }

    /// Snapshots the counters into an immutable stats struct.
    pub fn snapshot(&self) -> ProgressStats {
        let probed = self.probed.get();
        let resumed = self.resumed.get();
        let invalid = self.invalid.get();
        let special = self.special.get();
        let unsure = self.unsure.get();
        let identified = self.identified.get();
        let elapsed = self.started.elapsed().as_secs_f64();
        ProgressStats {
            total: self.total,
            done: probed + resumed,
            probed,
            resumed,
            invalid,
            special,
            unsure,
            identified,
            elapsed_secs: elapsed,
            probes_per_sec: if elapsed > 0.0 {
                probed as f64 / elapsed
            } else {
                0.0
            },
        }
    }
}

/// A point-in-time view of census progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressStats {
    /// Servers in the population.
    pub total: u64,
    /// Records completed so far (probed this run + resumed).
    pub done: u64,
    /// Probes performed by this run.
    pub probed: u64,
    /// Records replayed from a resume checkpoint.
    pub resumed: u64,
    /// Records with no valid trace.
    pub invalid: u64,
    /// §VII-B special-case records.
    pub special: u64,
    /// "Unsure TCP" records.
    pub unsure: u64,
    /// Confidently identified records.
    pub identified: u64,
    /// Wall-clock seconds since the run started.
    pub elapsed_secs: f64,
    /// Probe throughput of this run (probes per second).
    pub probes_per_sec: f64,
}

impl ProgressStats {
    /// Share of completed records that produced a valid trace.
    pub fn valid_rate(&self) -> f64 {
        let valid = self.special + self.unsure + self.identified;
        valid as f64 / self.done.max(1) as f64
    }
}

impl fmt::Display for ProgressStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} servers ({} probed, {} resumed) | {:.1} probes/s | \
             valid {:.1}% | id {} special {} unsure {} invalid {}",
            self.done,
            self.total,
            self.probed,
            self.resumed,
            self.probes_per_sec,
            100.0 * self.valid_rate(),
            self.identified,
            self.special,
            self.unsure,
            self.invalid,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_congestion::AlgorithmId;
    use caai_core::census::Verdict;
    use caai_core::classes::ClassLabel;
    use caai_core::trace::InvalidReason;

    fn record(verdict: Verdict) -> CensusRecord {
        CensusRecord {
            server_id: 0,
            truth: Some(AlgorithmId::Reno),
            verdict,
        }
    }

    #[test]
    fn counters_track_verdicts() {
        let t = Telemetry::new(10);
        t.observe(
            &record(Verdict::Invalid(InvalidReason::PageTooShort)),
            false,
        );
        t.observe(&record(Verdict::Unsure(128)), false);
        t.observe(&record(Verdict::Identified(ClassLabel::Bic, 512)), false);
        t.observe(&record(Verdict::Identified(ClassLabel::Bic, 512)), true);
        let s = t.snapshot();
        assert_eq!(s.done, 4);
        assert_eq!(s.probed, 3);
        assert_eq!(s.resumed, 1);
        assert_eq!(s.invalid, 1);
        assert_eq!(s.unsure, 1);
        assert_eq!(s.identified, 2);
        assert!((s.valid_rate() - 0.75).abs() < 1e-12);
        let line = s.to_string();
        assert!(line.contains("4/10"), "{line}");
    }

    #[test]
    fn resumed_aggregates_seed_the_counters() {
        let mut agg = CensusAggregates::default();
        agg.observe(&record(Verdict::Invalid(InvalidReason::PageTooShort)));
        agg.observe(&record(Verdict::Identified(ClassLabel::Bic, 512)));
        agg.observe(&record(Verdict::Unsure(128)));

        let t = Telemetry::new(10);
        t.observe_resumed(&agg);
        t.observe(&record(Verdict::Identified(ClassLabel::Bic, 512)), false);
        let s = t.snapshot();
        assert_eq!(s.done, 4);
        assert_eq!(s.resumed, 3);
        assert_eq!(s.probed, 1);
        assert_eq!(s.invalid, 1);
        assert_eq!(s.unsure, 1);
        assert_eq!(s.identified, 2);
    }
}
