//! Structure-aware fuzzing for the capture and stream parsers.
//!
//! A capture that arrives over the wire is attacker-controlled input,
//! and the CAAI tooling promises to *skip and report* hostile bytes,
//! never to panic on them. This crate is the standing check on that
//! promise: a hand-rolled, dependency-free fuzzer (the build
//! environment is offline, so cargo-fuzz/libFuzzer are unavailable)
//! that mutates valid captures along their structural seams and drives
//! them through three parser stacks:
//!
//! * [`targets::Target::Offline`] — classic reader → flow reassembly →
//!   ladder reconstruction;
//! * [`targets::Target::Stream`] — the incremental source (classic and
//!   pcapng framing);
//! * [`targets::Target::Pipeline`] — the multi-worker streaming
//!   pipeline with a live classifier;
//! * [`targets::Target::TraceReport`] — `--trace` output (Chrome
//!   trace-event JSON) through the `trace-report` salvage reader and
//!   stage analyzer.
//!
//! Everything is deterministic: a crash reproduces from `(seed,
//! iteration)` alone, and its input is written to the regression corpus
//! (`tests/corpus/`), which `cargo test` replays forever after.
//!
//! See `ARCHITECTURE.md` ("Adversarial defense and fuzzing") for how
//! this harness relates to the defense-evaluation sweep.

pub mod mutate;
pub mod rng;
pub mod seeds;
pub mod targets;

use rng::SplitMix64;
use targets::{Target, Targets};

/// Tuning for one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Mutated inputs to try.
    pub iters: u64,
    /// Master seed: the whole campaign is a pure function of it.
    pub seed: u64,
    /// Run the (much slower) full pipeline target every N-th iteration;
    /// 0 disables it.
    pub pipeline_every: u64,
    /// Hard cap on a mutated input's size.
    pub max_len: usize,
    /// Stop after this many crashes (0 = never stop early).
    pub max_crashes: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            iters: 1000,
            seed: 1,
            pipeline_every: 97,
            max_len: seeds::MAX_SEED_LEN * 2,
            max_crashes: 16,
        }
    }
}

/// One panic provoked by a mutated input.
#[derive(Debug)]
pub struct Crash {
    /// Which parser stack panicked.
    pub target: Target,
    /// The iteration that produced the input (with the campaign seed,
    /// this reproduces the exact bytes).
    pub iter: u64,
    /// The input that did it.
    pub input: Vec<u8>,
    /// The panic message.
    pub message: String,
}

/// Campaign totals.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// Iterations actually executed.
    pub iters: u64,
    /// Executions per target (one iteration usually runs several).
    pub executions: u64,
    /// Every crash found, in discovery order.
    pub crashes: Vec<Crash>,
}

/// Runs a fuzzing campaign. `progress` is called every few thousand
/// iterations with `(done, executions, crashes_so_far)`.
pub fn fuzz(config: &FuzzConfig, mut progress: impl FnMut(u64, u64, usize)) -> FuzzOutcome {
    let seed_set = seeds::build_seeds();
    let targets = Targets::new();
    let mut rng = SplitMix64::new(config.seed);
    let mut crashes: Vec<Crash> = Vec::new();
    let mut executions = 0u64;
    let mut done = 0u64;

    for iter in 0..config.iters {
        done = iter + 1;

        // Mutate one seed, splicing material from another.
        let base = rng.below(seed_set.len());
        let other = rng.below(seed_set.len());
        let mut input = seed_set[base].bytes.clone();
        mutate::mutate(&mut input, &seed_set[other].bytes, &mut rng);
        input.truncate(config.max_len);

        let mut plan = vec![
            Target::Offline,
            Target::Stream,
            Target::NetTargets,
            Target::NetFrames,
            Target::TraceReport,
        ];
        if config.pipeline_every > 0 && iter % config.pipeline_every == 0 {
            plan.push(Target::Pipeline);
        }
        // Rotate pipeline worker counts so sharding paths all get hit.
        let workers = 1 + (iter % 3) as usize;

        for target in plan {
            executions += 1;
            if let Err(message) = targets.run(target, &input, workers) {
                crashes.push(Crash {
                    target,
                    iter,
                    input: input.clone(),
                    message,
                });
                if config.max_crashes > 0 && crashes.len() >= config.max_crashes {
                    progress(done, executions, crashes.len());
                    return FuzzOutcome {
                        iters: done,
                        executions,
                        crashes,
                    };
                }
            }
        }

        if done.is_multiple_of(5000) {
            progress(done, executions, crashes.len());
        }
    }
    progress(done, executions, crashes.len());
    FuzzOutcome {
        iters: done,
        executions,
        crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_are_reproducible() {
        let config = FuzzConfig {
            iters: 40,
            seed: 7,
            pipeline_every: 0,
            ..FuzzConfig::default()
        };
        let a = fuzz(&config, |_, _, _| {});
        let b = fuzz(&config, |_, _, _| {});
        assert_eq!(a.iters, b.iters);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.crashes.len(), b.crashes.len());
    }
}
