//! `caai-fuzz` — the fuzzing campaign driver.
//!
//! ```text
//! caai-fuzz run [--iters N] [--seed S] [--pipeline-every N] [--crashes DIR]
//! caai-fuzz replay --corpus DIR
//! caai-fuzz emit-fixtures --out DIR
//! ```
//!
//! `run` executes a campaign and exits nonzero if any input panicked a
//! parser, writing each crashing input to `--crashes` (default
//! `fuzz-crashes/`) so it can be committed to `tests/corpus/` as a
//! regression fixture. `replay` runs every file in a directory through
//! every target once — the manual version of the corpus regression
//! test. `emit-fixtures` writes the pinned pcapng diagnostic fixtures
//! (used to [re]generate `tests/corpus/`).

use caai_fuzz::seeds::diagnostic_fixtures;
use caai_fuzz::targets::{Target, Targets};
use caai_fuzz::{fuzz, FuzzConfig};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str);
    match mode {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("emit-fixtures") => cmd_emit_fixtures(&args[1..]),
        _ => {
            eprintln!(
                "usage: caai-fuzz run [--iters N] [--seed S] [--pipeline-every N] [--crashes DIR]\n\
                 \x20      caai-fuzz replay --corpus DIR\n\
                 \x20      caai-fuzz emit-fixtures --out DIR"
            );
            ExitCode::from(2)
        }
    }
}

/// `--flag value` parsing; every flag takes exactly one value.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(args: &[String], name: &str, default: u64) -> u64 {
    match flag(args, name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("caai-fuzz: {name} wants an integer, got {v:?}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn cmd_run(args: &[String]) -> ExitCode {
    let config = FuzzConfig {
        iters: parse_u64(args, "--iters", 10_000),
        seed: parse_u64(args, "--seed", 1),
        pipeline_every: parse_u64(args, "--pipeline-every", 97),
        ..FuzzConfig::default()
    };
    let crash_dir = flag(args, "--crashes").unwrap_or("fuzz-crashes");
    println!(
        "fuzzing: {} iterations, seed {}, pipeline every {}",
        config.iters, config.seed, config.pipeline_every
    );
    let outcome = fuzz(&config, |done, execs, crashes| {
        println!("  {done} iterations, {execs} executions, {crashes} crashes");
    });
    if outcome.crashes.is_empty() {
        println!(
            "done: {} iterations, {} executions, zero crashes",
            outcome.iters, outcome.executions
        );
        return ExitCode::SUCCESS;
    }
    std::fs::create_dir_all(crash_dir).ok();
    for crash in &outcome.crashes {
        let file = format!(
            "{crash_dir}/crash-{}-seed{}-iter{}.bin",
            crash.target.name(),
            config.seed,
            crash.iter
        );
        match std::fs::write(&file, &crash.input) {
            Ok(()) => eprintln!(
                "CRASH {} at iteration {}: {}\n  input saved to {file}",
                crash.target.name(),
                crash.iter,
                crash.message
            ),
            Err(e) => eprintln!(
                "CRASH {} at iteration {}: {} (could not save input: {e})",
                crash.target.name(),
                crash.iter,
                crash.message
            ),
        }
    }
    eprintln!(
        "done: {} iterations, {} crashes — commit the inputs under tests/corpus/",
        outcome.iters,
        outcome.crashes.len()
    );
    ExitCode::FAILURE
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(dir) = flag(args, "--corpus") else {
        eprintln!("caai-fuzz replay: --corpus DIR is required");
        return ExitCode::from(2);
    };
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
        Err(e) => {
            eprintln!("caai-fuzz replay: cannot read {dir}: {e}");
            return ExitCode::from(2);
        }
    };
    entries.sort();
    entries.retain(|p| p.is_file());
    let targets = Targets::new();
    let mut failed = 0usize;
    for path in &entries {
        match replay_one(&targets, path) {
            Ok(()) => println!("ok   {}", path.display()),
            Err(msg) => {
                eprintln!("FAIL {}: {msg}", path.display());
                failed += 1;
            }
        }
    }
    println!("{} inputs replayed, {failed} failures", entries.len());
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay_one(targets: &Targets, path: &Path) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    for target in [
        Target::Offline,
        Target::Stream,
        Target::Pipeline,
        Target::NetTargets,
        Target::NetFrames,
        Target::TraceReport,
    ] {
        for workers in [1usize, 2] {
            targets
                .run(target, &bytes, workers)
                .map_err(|m| format!("panicked {} ({workers} workers): {m}", target.name()))?;
        }
    }
    Ok(())
}

fn cmd_emit_fixtures(args: &[String]) -> ExitCode {
    let out = flag(args, "--out").unwrap_or("tests/corpus");
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("caai-fuzz emit-fixtures: cannot create {out}: {e}");
        return ExitCode::from(2);
    }
    for fx in diagnostic_fixtures() {
        let file = format!("{out}/diag-{}.pcapng", fx.name);
        if let Err(e) = std::fs::write(&file, &fx.bytes) {
            eprintln!("caai-fuzz emit-fixtures: cannot write {file}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote {file} ({} bytes): {}",
            fx.bytes.len(),
            fx.expected_reason
        );
    }
    ExitCode::SUCCESS
}
