//! The mutation engine: generic byte-level havoc plus structure-aware
//! transforms for the two capture containers.
//!
//! Generic mutations (bit flips, interesting integers, chunk surgery)
//! find framing bugs; structure-aware mutations get *past* the framing to
//! the per-record logic, by walking the container the way the parser does
//! and corrupting exactly the fields the parser trusts: classic-pcap
//! record lengths and timestamps, pcapng block lengths, block types,
//! `if_tsresol`, EPB `cap_len`/interface ids, and whole-record reorders.
//!
//! Every walker in this module is defensive: it re-derives the framing
//! from the (possibly already corrupted) buffer with checked arithmetic
//! and bails out to a generic mutation when the structure is gone. A
//! panic in the mutation engine would be a harness bug, not a finding.

use crate::rng::SplitMix64;

/// Integer values that exercise boundary paths in length-checked parsers.
pub const INTERESTING_U32: [u32; 14] = [
    0,
    1,
    2,
    3,
    4,
    15,
    16,
    24,
    0x7FFF_FFFF,
    0x8000_0000,
    0xFFFF_FFFF,
    caai_capture::pcap::MAX_INCL_LEN,
    caai_capture::pcap::MAX_INCL_LEN + 1,
    16 * 1024 * 1024, // pcapng MAX_BLOCK_LEN
];

/// Applies 1–4 mutations to `buf`, drawing splice material from `other`.
pub fn mutate(buf: &mut Vec<u8>, other: &[u8], rng: &mut SplitMix64) {
    let rounds = 1 + rng.below(4);
    for _ in 0..rounds {
        mutate_once(buf, other, rng);
    }
}

fn mutate_once(buf: &mut Vec<u8>, other: &[u8], rng: &mut SplitMix64) {
    match rng.below(12) {
        0 => bit_flip(buf, rng),
        1 => byte_set(buf, rng),
        2 => write_interesting_u32(buf, rng),
        3 => chunk_delete(buf, rng),
        4 => chunk_duplicate(buf, rng),
        5 => chunk_swap(buf, rng),
        6 => truncate(buf, rng),
        7 => cross_splice(buf, other, rng),
        8..=9 => {
            // Structure-aware: pick the walker matching the container;
            // fall back to havoc when neither recognizes the bytes.
            if !mutate_pcap(buf, rng) && !mutate_pcapng(buf, rng) {
                bit_flip(buf, rng);
            }
        }
        10 => {
            if !mutate_pcapng(buf, rng) && !mutate_pcap(buf, rng) {
                byte_set(buf, rng);
            }
        }
        _ => extend_with_garbage(buf, rng),
    }
}

// ---------------------------------------------------------------------------
// Generic havoc.
// ---------------------------------------------------------------------------

fn bit_flip(buf: &mut [u8], rng: &mut SplitMix64) {
    if buf.is_empty() {
        return;
    }
    let at = rng.below(buf.len());
    buf[at] ^= 1 << rng.below(8);
}

fn byte_set(buf: &mut [u8], rng: &mut SplitMix64) {
    if buf.is_empty() {
        return;
    }
    let at = rng.below(buf.len());
    buf[at] = rng.byte();
}

fn write_interesting_u32(buf: &mut [u8], rng: &mut SplitMix64) {
    if buf.len() < 4 {
        return;
    }
    let at = rng.below(buf.len() - 3);
    let v = *rng.pick(&INTERESTING_U32);
    let bytes = if rng.chance(1, 2) {
        v.to_le_bytes()
    } else {
        v.to_be_bytes()
    };
    buf[at..at + 4].copy_from_slice(&bytes);
}

/// A random chunk span of up to 1/4 of the buffer (at least 1 byte).
fn chunk(len: usize, rng: &mut SplitMix64) -> (usize, usize) {
    let max = (len / 4).max(1);
    let size = 1 + rng.below(max);
    let at = rng.below(len.saturating_sub(size).max(1));
    (at, (at + size).min(len))
}

fn chunk_delete(buf: &mut Vec<u8>, rng: &mut SplitMix64) {
    if buf.len() < 2 {
        return;
    }
    let (a, b) = chunk(buf.len(), rng);
    buf.drain(a..b);
}

fn chunk_duplicate(buf: &mut Vec<u8>, rng: &mut SplitMix64) {
    if buf.is_empty() || buf.len() > 1 << 20 {
        return; // bound growth: mutated inputs must stay small
    }
    let (a, b) = chunk(buf.len(), rng);
    let piece: Vec<u8> = buf[a..b].to_vec();
    let at = rng.below(buf.len() + 1);
    buf.splice(at..at, piece);
}

fn chunk_swap(buf: &mut [u8], rng: &mut SplitMix64) {
    if buf.len() < 4 {
        return;
    }
    let half = buf.len() / 2;
    let size = 1 + rng.below((half / 2).max(1));
    let a = rng.below(half - size.min(half) + 1);
    let b = half + rng.below(half - size.min(half) + 1);
    for i in 0..size {
        if b + i < buf.len() {
            buf.swap(a + i, b + i);
        }
    }
}

fn truncate(buf: &mut Vec<u8>, rng: &mut SplitMix64) {
    if buf.len() < 2 {
        return;
    }
    let keep = rng.below(buf.len());
    buf.truncate(keep.max(1));
}

fn cross_splice(buf: &mut Vec<u8>, other: &[u8], rng: &mut SplitMix64) {
    if other.is_empty() || buf.len() > 1 << 20 {
        return;
    }
    let (oa, ob) = chunk(other.len(), rng);
    let at = rng.below(buf.len() + 1);
    if rng.chance(1, 2) {
        // Overwrite in place.
        let end = (at + (ob - oa)).min(buf.len());
        buf[at..end].copy_from_slice(&other[oa..oa + (end - at)]);
    } else {
        buf.splice(at..at, other[oa..ob].iter().copied());
    }
}

fn extend_with_garbage(buf: &mut Vec<u8>, rng: &mut SplitMix64) {
    if buf.len() > 1 << 20 {
        return;
    }
    let n = 1 + rng.below(64);
    for _ in 0..n {
        buf.push(rng.byte());
    }
}

// ---------------------------------------------------------------------------
// Structure-aware: classic pcap.
// ---------------------------------------------------------------------------

/// The record table of a classic capture: `(header_offset, record_size)`
/// per record, plus whether integers are little-endian. `None` when the
/// buffer is not (or no longer) a walkable classic capture.
fn pcap_records(buf: &[u8]) -> Option<(bool, Vec<(usize, usize)>)> {
    use caai_capture::pcap::{MAGIC_MICROS, MAGIC_NANOS, MAX_INCL_LEN};
    if buf.len() < 24 {
        return None;
    }
    let le32 = u32::from_le_bytes(buf[0..4].try_into().ok()?);
    let be32 = u32::from_be_bytes(buf[0..4].try_into().ok()?);
    let little = match (le32, be32) {
        (MAGIC_MICROS | MAGIC_NANOS, _) => true,
        (_, MAGIC_MICROS | MAGIC_NANOS) => false,
        _ => return None,
    };
    let mut records = Vec::new();
    let mut at = 24usize;
    while at.checked_add(16)? <= buf.len() {
        let len_bytes: [u8; 4] = buf[at + 8..at + 12].try_into().ok()?;
        let incl = if little {
            u32::from_le_bytes(len_bytes)
        } else {
            u32::from_be_bytes(len_bytes)
        };
        if incl > MAX_INCL_LEN {
            break;
        }
        let size = 16usize.checked_add(incl as usize)?;
        if at.checked_add(size)? > buf.len() {
            break;
        }
        records.push((at, size));
        at += size;
        if records.len() > 1 << 16 {
            break;
        }
    }
    if records.is_empty() {
        None
    } else {
        Some((little, records))
    }
}

/// Corrupts the classic container along its own seams. Returns false when
/// the buffer is not walkable as classic pcap.
fn mutate_pcap(buf: &mut Vec<u8>, rng: &mut SplitMix64) -> bool {
    let Some((little, records)) = pcap_records(buf) else {
        return false;
    };
    let w32 = |buf: &mut [u8], at: usize, v: u32| {
        let bytes = if little {
            v.to_le_bytes()
        } else {
            v.to_be_bytes()
        };
        buf[at..at + 4].copy_from_slice(&bytes);
    };
    match rng.below(6) {
        0 => {
            // Corrupt one header field of one record: ts_sec, ts_frac,
            // incl_len, or orig_len.
            let &(at, _) = rng.pick(&records);
            let field = at + 4 * rng.below(4);
            let v = *rng.pick(&INTERESTING_U32);
            w32(buf, field, v);
        }
        1 => {
            // Reorder: swap two whole records.
            if records.len() >= 2 {
                let i = rng.below(records.len());
                let j = rng.below(records.len());
                let (ia, isz) = records[i.min(j)];
                let (ja, jsz) = records[i.max(j)];
                if ia != ja {
                    let first: Vec<u8> = buf[ia..ia + isz].to_vec();
                    let second: Vec<u8> = buf[ja..ja + jsz].to_vec();
                    let mut out = Vec::with_capacity(buf.len());
                    out.extend_from_slice(&buf[..ia]);
                    out.extend_from_slice(&second);
                    out.extend_from_slice(&buf[ia + isz..ja]);
                    out.extend_from_slice(&first);
                    out.extend_from_slice(&buf[ja + jsz..]);
                    *buf = out;
                }
            }
        }
        2 => {
            // Duplicate one record in place.
            if buf.len() < 1 << 20 {
                let &(at, size) = rng.pick(&records);
                let piece: Vec<u8> = buf[at..at + size].to_vec();
                buf.splice(at..at, piece);
            }
        }
        3 => {
            // Delete one record cleanly.
            let &(at, size) = rng.pick(&records);
            buf.drain(at..at + size);
        }
        4 => {
            // Global header: magic, linktype, or snaplen.
            match rng.below(3) {
                0 => {
                    let magics = [
                        caai_capture::pcap::MAGIC_MICROS,
                        caai_capture::pcap::MAGIC_NANOS,
                        0xDEAD_BEEF,
                    ];
                    w32(buf, 0, *rng.pick(&magics));
                }
                1 => {
                    let linktypes = [0u32, 1, 101, 113, 276, u32::MAX];
                    w32(buf, 20, *rng.pick(&linktypes));
                }
                _ => w32(buf, 16, *rng.pick(&INTERESTING_U32)),
            }
        }
        _ => {
            // Cut a record in half: classic truncation mid-payload.
            let &(at, size) = rng.pick(&records);
            buf.truncate(at + rng.below(size.max(1)));
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Structure-aware: pcapng.
// ---------------------------------------------------------------------------

/// Block table of a pcapng buffer: section endianness plus
/// `(offset, size, type)` per block.
type NgBlocks = (bool, Vec<(usize, usize, u32)>);

fn ng_blocks(buf: &[u8]) -> Option<NgBlocks> {
    if buf.len() < 12 || buf[..4] != caai_stream::pcapng::SHB_MAGIC {
        return None;
    }
    let big = match (
        u32::from_le_bytes(buf[8..12].try_into().ok()?),
        u32::from_be_bytes(buf[8..12].try_into().ok()?),
    ) {
        (caai_stream::pcapng::BYTE_ORDER_MAGIC, _) => false,
        (_, caai_stream::pcapng::BYTE_ORDER_MAGIC) => true,
        _ => return None,
    };
    let rd = |at: usize| -> Option<u32> {
        let b: [u8; 4] = buf.get(at..at + 4)?.try_into().ok()?;
        Some(if big {
            u32::from_be_bytes(b)
        } else {
            u32::from_le_bytes(b)
        })
    };
    let mut blocks = Vec::new();
    let mut at = 0usize;
    while at.checked_add(8)? <= buf.len() {
        let btype = rd(at)?;
        let total = rd(at + 4)? as usize;
        if total < 12 || !total.is_multiple_of(4) || total > 16 * 1024 * 1024 {
            break;
        }
        if at.checked_add(total)? > buf.len() {
            break;
        }
        blocks.push((at, total, btype));
        at += total;
        if blocks.len() > 1 << 16 {
            break;
        }
    }
    if blocks.is_empty() {
        None
    } else {
        Some((big, blocks))
    }
}

/// Corrupts pcapng framing along its block seams. Returns false when the
/// buffer is not walkable as pcapng.
fn mutate_pcapng(buf: &mut Vec<u8>, rng: &mut SplitMix64) -> bool {
    let Some((big, blocks)) = ng_blocks(buf) else {
        return false;
    };
    let w32 = |buf: &mut [u8], at: usize, v: u32| {
        let bytes = if big {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        buf[at..at + 4].copy_from_slice(&bytes);
    };
    let w16 = |buf: &mut [u8], at: usize, v: u16| {
        let bytes = if big {
            v.to_be_bytes()
        } else {
            v.to_le_bytes()
        };
        buf[at..at + 2].copy_from_slice(&bytes);
    };
    match rng.below(8) {
        0 => {
            // Corrupt a block's total_len: off-by-small or interesting.
            let &(at, size, _) = rng.pick(&blocks);
            let v = if rng.chance(1, 2) {
                (size as u32)
                    .wrapping_add(rng.below(9) as u32)
                    .wrapping_sub(4)
            } else {
                *rng.pick(&INTERESTING_U32)
            };
            w32(buf, at + 4, v);
        }
        1 => {
            // Corrupt a block's type.
            let &(at, _, _) = rng.pick(&blocks);
            let types = [
                caai_stream::pcapng::BT_IDB,
                caai_stream::pcapng::BT_SPB,
                caai_stream::pcapng::BT_NRB,
                caai_stream::pcapng::BT_ISB,
                caai_stream::pcapng::BT_EPB,
                0x0BAD,
                0xFFFF_FFFF,
            ];
            w32(buf, at, *rng.pick(&types));
        }
        2 => {
            // Corrupt the section byte-order magic or an IDB's if_tsresol
            // byte (the timestamp-scale hazard).
            if rng.chance(1, 4) {
                if buf.len() >= 12 {
                    w32(buf, 8, rng.next_u64() as u32);
                }
            } else if let Some(&(at, size, _)) = blocks
                .iter()
                .find(|&&(_, _, t)| t == caai_stream::pcapng::BT_IDB)
            {
                // The canonical IDB layout puts the if_tsresol value at
                // block offset 20 (type 4, len 4, linktype 2, reserved 2,
                // snaplen 4, option header 4); on foreign layouts this
                // lands somewhere in the options, which is just as good.
                let resols = [0u8, 1, 6, 9, 127, 0x80, 0x80 | 20, 0x80 | 127, 0xFF];
                let off = at + 20.min(size.saturating_sub(5));
                if off < buf.len() {
                    buf[off] = *rng.pick(&resols);
                }
            }
        }
        3 => {
            // Corrupt an EPB's interface id, timestamp halves, or cap_len.
            let epbs: Vec<&(usize, usize, u32)> = blocks
                .iter()
                .filter(|&&(_, _, t)| t == caai_stream::pcapng::BT_EPB)
                .collect();
            if !epbs.is_empty() {
                let &&(at, size, _) = rng.pick(&epbs);
                // Body starts at +8: iface, ts_high, ts_low, cap_len, orig_len.
                let field = at + 8 + 4 * rng.below(5);
                if field + 4 <= at + size {
                    w32(buf, field, *rng.pick(&INTERESTING_U32));
                }
            }
        }
        4 => {
            // Reorder: move one block before another.
            if blocks.len() >= 2 {
                let i = rng.below(blocks.len());
                let (at, size, _) = blocks[i];
                let piece: Vec<u8> = buf[at..at + size].to_vec();
                buf.drain(at..at + size);
                let j = rng.below(blocks.len());
                let dest = blocks[j].0.min(buf.len());
                buf.splice(dest..dest, piece);
            }
        }
        5 => {
            // Duplicate one block.
            if buf.len() < 1 << 20 {
                let &(at, size, _) = rng.pick(&blocks);
                let piece: Vec<u8> = buf[at..at + size].to_vec();
                buf.splice(at..at, piece);
            }
        }
        6 => {
            // Insert a fresh well-framed block of arbitrary type.
            let &(at, size, _) = rng.pick(&blocks);
            let mut alien = Vec::new();
            let body = 4 * rng.below(5);
            let total = (12 + body) as u32;
            let w = |v: u32, out: &mut Vec<u8>| {
                out.extend_from_slice(&if big {
                    v.to_be_bytes()
                } else {
                    v.to_le_bytes()
                });
            };
            w(
                *rng.pick(&[0x0BADu32, caai_stream::pcapng::BT_SPB, 0x0A0D_0D0A]),
                &mut alien,
            );
            w(total, &mut alien);
            for _ in 0..body {
                alien.push(rng.byte());
            }
            w(total, &mut alien);
            buf.splice(at + size..at + size, alien);
        }
        _ => {
            // Truncate mid-block.
            let &(at, size, _) = rng.pick(&blocks);
            buf.truncate(at + rng.below(size.max(1)));
        }
    }
    let _ = w16; // endianness helper kept for future field-level mutations
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_capture::pcap::PcapWriter;

    fn classic() -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_frame(1.0, b"frame one").unwrap();
        w.write_frame(2.0, &[7u8; 60]).unwrap();
        w.write_frame(3.0, b"third").unwrap();
        w.finish().unwrap()
    }

    #[test]
    fn pcap_walker_frames_the_records() {
        let buf = classic();
        let (little, records) = pcap_records(&buf).expect("walkable");
        assert!(little);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].0, 24);
        assert_eq!(records[0].1, 16 + 9);
    }

    #[test]
    fn ng_walker_frames_the_blocks() {
        let ng = caai_stream::classic_to_pcapng(&classic(), false, 6);
        let (big, blocks) = ng_blocks(&ng).expect("walkable");
        assert!(!big);
        // SHB + IDB + 3 EPBs.
        assert_eq!(blocks.len(), 5);
        assert_eq!(blocks[0].2, u32::from_le_bytes(SHB_MAGIC_LOCAL));
        assert_eq!(blocks[1].2, caai_stream::pcapng::BT_IDB);
        assert_eq!(blocks[4].2, caai_stream::pcapng::BT_EPB);
    }

    const SHB_MAGIC_LOCAL: [u8; 4] = caai_stream::pcapng::SHB_MAGIC;

    #[test]
    fn walkers_reject_garbage() {
        assert!(pcap_records(b"not a capture at all").is_none());
        assert!(ng_blocks(b"not a capture at all").is_none());
        assert!(pcap_records(&[]).is_none());
        assert!(ng_blocks(&[]).is_none());
    }

    #[test]
    fn mutation_engine_never_panics_on_tiny_or_empty_buffers() {
        let mut rng = SplitMix64::new(99);
        for len in 0..32 {
            for round in 0..200 {
                let mut buf: Vec<u8> = (0..len).map(|i| (i + round) as u8).collect();
                mutate(&mut buf, b"other material", &mut rng);
            }
        }
    }

    #[test]
    fn structure_aware_mutations_keep_working_over_many_rounds() {
        let mut rng = SplitMix64::new(5);
        let classic = classic();
        let ng = caai_stream::classic_to_pcapng(&classic, true, 9);
        let mut a = classic.clone();
        let mut b = ng.clone();
        for _ in 0..2000 {
            mutate(&mut a, &ng, &mut rng);
            mutate(&mut b, &classic, &mut rng);
        }
        // The buffers must have actually churned.
        assert_ne!(a, classic);
        assert_ne!(b, ng);
    }
}
