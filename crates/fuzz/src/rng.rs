//! SplitMix64: the fuzzer's own tiny deterministic generator.
//!
//! The mutation engine wants a generator it fully controls — reproducing
//! a crash from `(seed, iteration)` alone must survive any change to the
//! workspace-wide `rand` stand-in — so it carries its own. SplitMix64 is
//! the standard choice for this job: 64 bits of state, full period,
//! passes BigCrush, and the whole algorithm fits in four lines.

/// A SplitMix64 generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Every sequence is a pure function of `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n`. `n = 0` returns 0. The modulo bias is
    /// irrelevant at fuzzing's tolerances.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// One uniform byte.
    pub fn byte(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        den > 0 && self.next_u64() % den < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.below(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_reproducible() {
        let mut a = SplitMix64::new(1234);
        let mut b = SplitMix64::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "{same} collisions in 64 draws");
    }

    #[test]
    fn known_vector() {
        // Reference value from the published SplitMix64 algorithm.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_stays_in_range_and_handles_zero() {
        let mut r = SplitMix64::new(9);
        assert_eq!(r.below(0), 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
