//! Seed corpus construction.
//!
//! Structure-aware fuzzing is only as good as its seeds: mutations of a
//! valid capture reach far deeper into the parsers than random bytes
//! ever would. The seeds here cover both containers and both byte
//! orders, and include a real rendered CAAI probe session so the flow
//! reassembler and ladder reconstruction see realistic TCP state, not
//! just a toy handshake.
//!
//! The module also builds the *diagnostic fixtures*: tiny hand-framed
//! pcapng captures that each provoke exactly one skip diagnostic, with
//! the expected rendered string pinned character-for-character. These
//! are committed under `tests/corpus/` and replayed by the corpus
//! regression test, so a wording change in the reader is a visible diff,
//! not a silent drift.

use caai_capture::packet::flags;
use caai_capture::pcap::byteswap_capture;
use caai_capture::{encode, CaptureRenderer, FrameSpec, PcapReader, PcapWriter};
use caai_congestion::AlgorithmId;
use caai_core::{Prober, ProberConfig, ServerUnderTest};
use caai_netem::path::PathConfig;
use caai_netem::rng::seeded;
use caai_stream::classic_to_pcapng;
use caai_stream::pcapng::{BT_EPB, BT_IDB, BT_SPB, BYTE_ORDER_MAGIC, SHB_MAGIC};

/// Upper bound on any single seed. Iteration cost is linear in seed
/// size, so the 100k-iteration acceptance run needs seeds this small.
pub const MAX_SEED_LEN: usize = 48 * 1024;

/// A named seed input.
pub struct Seed {
    pub name: &'static str,
    pub bytes: Vec<u8>,
}

/// Builds the full seed set: a handcrafted classic capture, a rendered
/// CAAI probe session, their big-endian twins, and pcapng re-framings at
/// three timestamp resolutions.
pub fn build_seeds() -> Vec<Seed> {
    let tiny = tiny_classic();
    // pcapng re-framing inflates a classic capture (32-byte block
    // envelopes vs 16-byte record headers), so cap the classic form low
    // enough that its pcapng twins also fit the budget.
    let rendered = cap_capture(&rendered_session(), MAX_SEED_LEN * 2 / 3);
    let seeds = vec![
        Seed {
            name: "tiny-classic",
            bytes: tiny.clone(),
        },
        Seed {
            name: "tiny-classic-be",
            bytes: byteswap_capture(&tiny),
        },
        Seed {
            name: "rendered-reno",
            bytes: rendered.clone(),
        },
        Seed {
            name: "rendered-reno-be",
            bytes: byteswap_capture(&rendered),
        },
        Seed {
            name: "pcapng-le-us",
            bytes: classic_to_pcapng(&rendered, false, 6),
        },
        Seed {
            name: "pcapng-be-ns",
            bytes: classic_to_pcapng(&rendered, true, 9),
        },
        Seed {
            name: "pcapng-le-2pow",
            bytes: classic_to_pcapng(&tiny, false, 0x80 | 20),
        },
        Seed {
            name: "trace-json",
            bytes: trace_event_json(),
        },
    ];
    for s in &seeds {
        assert!(!s.bytes.is_empty(), "seed {} rendered empty", s.name);
        assert!(
            s.bytes.len() <= MAX_SEED_LEN + 4096,
            "seed {} is {} bytes, too large for the iteration budget",
            s.name,
            s.bytes.len()
        );
    }
    seeds
}

/// A small trace-event document in exactly the `TraceSubscriber`
/// dialect: thread metadata, nested `"X"` complete events down the
/// census → batch → gather → rung → round spine (with virtual-time
/// args), a sibling classify, and an async `"b"`/`"e"` flow pair. Hand-
/// written with fixed ids and timestamps rather than rendered through
/// the live subscriber, so the seed bytes — and with them every
/// mutation the campaign derives — are identical from run to run.
fn trace_event_json() -> Vec<u8> {
    concat!(
        "[\n",
        r#"{"ph":"M","name":"thread_name","pid":1,"tid":1,"args":{"name":"main"}}"#,
        ",\n",
        r#"{"ph":"b","cat":"caai","id":"9","name":"queue.wait","pid":1,"tid":1,"ts":4.000,"args":{"parent":0,"shard":1,"len":16}}"#,
        ",\n",
        r#"{"ph":"e","cat":"caai","id":"9","name":"queue.wait","pid":1,"tid":2,"ts":41.500}"#,
        ",\n",
        r#"{"ph":"X","cat":"caai","name":"gather.round","pid":1,"tid":2,"ts":120.000,"dur":30.000,"id":"5","args":{"parent":4,"round":0,"phase":0,"virt":0.000000000,"virt_dur":0.200000000}}"#,
        ",\n",
        r#"{"ph":"X","cat":"caai","name":"gather.rung","pid":1,"tid":2,"ts":118.000,"dur":40.000,"id":"4","args":{"parent":3,"wmax":64,"env":0,"virt":0.000000000,"virt_dur":0.310000000}}"#,
        ",\n",
        r#"{"ph":"X","cat":"caai","name":"gather","pid":1,"tid":2,"ts":110.000,"dur":300.000,"id":"3","args":{"parent":2,"server_id":7}}"#,
        ",\n",
        r#"{"ph":"X","cat":"caai","name":"classify","pid":1,"tid":2,"ts":415.000,"dur":12.500,"id":"6","args":{"parent":2,"server_id":7}}"#,
        ",\n",
        r#"{"ph":"X","cat":"caai","name":"census.batch","pid":1,"tid":2,"ts":100.000,"dur":350.000,"id":"2","args":{"parent":1,"start":0,"len":16}}"#,
        ",\n",
        r#"{"ph":"X","cat":"caai","name":"census.run","pid":1,"tid":1,"ts":0.000,"dur":500.000,"id":"1","args":{"parent":0,"population":16,"workers":2}}"#,
        "\n]\n",
    )
    .as_bytes()
    .to_vec()
}

/// A handshake, two data segments with their ACKs, and a server FIN:
/// the smallest capture the flow layer fully understands.
fn tiny_classic() -> Vec<u8> {
    const CLIENT: ([u8; 4], u16) = ([192, 0, 2, 1], 40001);
    const SERVER: ([u8; 4], u16) = ([198, 51, 100, 9], 80);
    let seg = |from: ([u8; 4], u16), to: ([u8; 4], u16)| FrameSpec {
        src_ip: from.0,
        dst_ip: to.0,
        src_port: from.1,
        dst_port: to.1,
        seq: 0,
        ack: 0,
        flags: flags::ACK,
        window: 65000,
        mss_option: None,
        payload: b"",
    };
    let (isn_c, isn_s) = (1000u32, 5000u32);
    let payload = [7u8; 100];
    let mut w = PcapWriter::new(Vec::new()).expect("Vec writes are infallible");
    let mut frame = |ts: f64, spec: FrameSpec<'_>| {
        w.write_frame(ts, &encode(&spec))
            .expect("Vec writes are infallible");
    };
    frame(
        0.0,
        FrameSpec {
            seq: isn_c,
            flags: flags::SYN,
            mss_option: Some(100),
            ..seg(CLIENT, SERVER)
        },
    );
    frame(
        0.1,
        FrameSpec {
            seq: isn_s,
            ack: isn_c + 1,
            flags: flags::SYN | flags::ACK,
            mss_option: Some(1460),
            ..seg(SERVER, CLIENT)
        },
    );
    frame(
        0.2,
        FrameSpec {
            seq: isn_c + 1,
            ack: isn_s + 1,
            ..seg(CLIENT, SERVER)
        },
    );
    frame(
        1.0,
        FrameSpec {
            seq: isn_s + 1,
            ack: isn_c + 1,
            payload: &payload,
            ..seg(SERVER, CLIENT)
        },
    );
    frame(
        1.2,
        FrameSpec {
            seq: isn_c + 1,
            ack: isn_s + 101,
            ..seg(CLIENT, SERVER)
        },
    );
    frame(
        2.0,
        FrameSpec {
            seq: isn_s + 101,
            ack: isn_c + 1,
            payload: &payload,
            ..seg(SERVER, CLIENT)
        },
    );
    frame(
        2.2,
        FrameSpec {
            seq: isn_c + 1,
            ack: isn_s + 201,
            ..seg(CLIENT, SERVER)
        },
    );
    frame(
        3.0,
        FrameSpec {
            seq: isn_s + 201,
            ack: isn_c + 1,
            flags: flags::FIN | flags::ACK,
            ..seg(SERVER, CLIENT)
        },
    );
    w.finish().expect("Vec writes are infallible")
}

/// One full CAAI probe round-trip against an ideal Reno server, rendered
/// to wire frames. This is the seed that exercises ladder reconstruction
/// and the RTO round bookkeeping.
fn rendered_session() -> Vec<u8> {
    let mut renderer = CaptureRenderer::new();
    let prober = Prober::new(ProberConfig::fixed_wmax(64));
    let server = ServerUnderTest::ideal(AlgorithmId::Reno);
    let mut rng = seeded(1);
    renderer
        .render_session(
            [192, 0, 2, 1],
            [198, 51, 100, 9],
            &server,
            &prober,
            &PathConfig::clean(),
            &mut rng,
        )
        .expect("Vec writes are infallible");
    renderer.to_bytes()
}

/// Re-emits a capture's leading records until the byte budget is spent,
/// keeping the truncation on a record boundary so the seed stays valid.
fn cap_capture(src: &[u8], max_len: usize) -> Vec<u8> {
    let mut reader = PcapReader::new(src).expect("renderer output is a valid capture");
    let mut w = PcapWriter::new(Vec::new()).expect("Vec writes are infallible");
    let mut written = 24usize;
    while let Some(Ok(rec)) = reader.next() {
        let record = 16 + rec.data.len();
        if written + record > max_len {
            break;
        }
        w.write_frame(rec.ts, rec.data)
            .expect("Vec writes are infallible");
        written += record;
    }
    w.finish().expect("Vec writes are infallible")
}

// ---------------------------------------------------------------------------
// Diagnostic fixtures: one capture per pcapng skip diagnostic.
// ---------------------------------------------------------------------------

/// A pcapng capture that provokes exactly one skip, plus the skip
/// reason's exact rendered text.
pub struct DiagnosticFixture {
    pub name: &'static str,
    pub bytes: Vec<u8>,
    pub expected_reason: &'static str,
}

/// All six pcapng skip diagnostics, each in a minimal little-endian
/// capture. The expected strings are pinned verbatim: every one must
/// name the enclosing block type so a diagnostic alone identifies the
/// block walker that produced it.
pub fn diagnostic_fixtures() -> Vec<DiagnosticFixture> {
    vec![
        DiagnosticFixture {
            name: "spb-no-timestamp",
            bytes: cat(&[shb_le(), idb_le(1, 6), block_le(BT_SPB, &[0, 0, 0, 0])]),
            expected_reason: "simple packet block (type 0x00000003) carries no timestamp",
        },
        DiagnosticFixture {
            name: "unknown-block-type",
            bytes: cat(&[shb_le(), block_le(0x0BAD, &[1, 2, 3, 4, 5, 6, 7, 8])]),
            expected_reason: "unknown pcapng block type 0x00000BAD skipped",
        },
        DiagnosticFixture {
            name: "epb-body-too-short",
            bytes: cat(&[shb_le(), idb_le(1, 6), block_le(BT_EPB, &[0u8; 16])]),
            expected_reason: "enhanced packet block (type 0x00000006): body too short (16 bytes)",
        },
        DiagnosticFixture {
            name: "epb-cap-len-overrun",
            bytes: cat(&[shb_le(), idb_le(1, 6), block_le(BT_EPB, &epb_body(0, 9999))]),
            expected_reason: "enhanced packet block (type 0x00000006): \
                              cap_len 9999 overruns its block (20 body bytes)",
        },
        DiagnosticFixture {
            name: "epb-undeclared-interface",
            bytes: cat(&[shb_le(), block_le(BT_EPB, &epb_body(7, 0))]),
            expected_reason: "enhanced packet block (type 0x00000006): \
                              references undeclared interface 7",
        },
        DiagnosticFixture {
            name: "epb-non-ethernet-interface",
            bytes: cat(&[shb_le(), idb_le(113, 6), block_le(BT_EPB, &epb_body(0, 0))]),
            expected_reason: "enhanced packet block (type 0x00000006): \
                              packet on non-Ethernet interface (link type 113)",
        },
    ]
}

fn cat(parts: &[Vec<u8>]) -> Vec<u8> {
    parts.concat()
}

/// A canonical 28-byte little-endian section header block.
fn shb_le() -> Vec<u8> {
    let mut out = Vec::with_capacity(28);
    out.extend_from_slice(&SHB_MAGIC);
    out.extend_from_slice(&28u32.to_le_bytes());
    out.extend_from_slice(&BYTE_ORDER_MAGIC.to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // major
    out.extend_from_slice(&0u16.to_le_bytes()); // minor
    out.extend_from_slice(&u64::MAX.to_le_bytes()); // unspecified length
    out.extend_from_slice(&28u32.to_le_bytes());
    out
}

/// A 32-byte little-endian interface description block mirroring the
/// `classic_to_pcapng` layout: `linktype`, generous snaplen, one
/// `if_tsresol` option, `opt_endofopt`.
fn idb_le(linktype: u16, tsresol: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&BT_IDB.to_le_bytes());
    out.extend_from_slice(&32u32.to_le_bytes());
    out.extend_from_slice(&linktype.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.extend_from_slice(&(256u32 * 1024).to_le_bytes()); // snaplen
    out.extend_from_slice(&9u16.to_le_bytes()); // OPT_IF_TSRESOL
    out.extend_from_slice(&1u16.to_le_bytes());
    out.extend_from_slice(&[tsresol, 0, 0, 0]); // value + padding
    out.extend_from_slice(&0u32.to_le_bytes()); // opt_endofopt
    out.extend_from_slice(&32u32.to_le_bytes());
    out
}

/// An arbitrary little-endian block with the body padded to 32 bits.
fn block_le(btype: u32, body: &[u8]) -> Vec<u8> {
    let padded = (body.len() + 3) & !3;
    let total = (12 + padded) as u32;
    let mut out = Vec::with_capacity(total as usize);
    out.extend_from_slice(&btype.to_le_bytes());
    out.extend_from_slice(&total.to_le_bytes());
    out.extend_from_slice(body);
    out.extend(std::iter::repeat_n(0u8, padded - body.len()));
    out.extend_from_slice(&total.to_le_bytes());
    out
}

/// A minimal 20-byte EPB body: interface id, zero timestamp, `cap_len`,
/// zero `orig_len`, no frame bytes.
fn epb_body(iface: u32, cap_len: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(20);
    out.extend_from_slice(&iface.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // ts_high
    out.extend_from_slice(&0u32.to_le_bytes()); // ts_low
    out.extend_from_slice(&cap_len.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // orig_len
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use caai_stream::source::{CaptureSource, PcapStream, SourceItem, StallPolicy};
    use std::io::Cursor;

    #[test]
    fn seed_set_covers_both_containers_and_byte_orders() {
        let seeds = build_seeds();
        assert_eq!(seeds.len(), 8);
        let captures = seeds.iter().filter(|s| s.name != "trace-json");
        let classic = captures
            .clone()
            .filter(|s| s.bytes[..4] != SHB_MAGIC)
            .count();
        let ng = captures.filter(|s| s.bytes[..4] == SHB_MAGIC).count();
        assert_eq!((classic, ng), (4, 3));
    }

    #[test]
    fn every_seed_parses_cleanly() {
        for seed in build_seeds() {
            if seed.name == "trace-json" {
                // Not a capture: it must instead round-trip through the
                // trace reader without a single salvage skip.
                let text = String::from_utf8(seed.bytes).expect("trace seed is UTF-8");
                let read = caai_obs::report::read_str(&text);
                assert_eq!(read.skipped, 0, "trace seed skipped lines");
                assert_eq!(read.unmatched_begins, 0, "trace seed left spans open");
                assert!(read.spans.len() >= 6, "trace seed too small to mutate");
                continue;
            }
            let mut src = PcapStream::new(Cursor::new(seed.bytes), StallPolicy::Eof);
            let mut frames = 0usize;
            loop {
                match src.next() {
                    Ok(Some(SourceItem::Frame(_))) => frames += 1,
                    Ok(Some(SourceItem::Skipped { reason, .. })) => {
                        panic!("seed {} skipped a frame: {reason}", seed.name)
                    }
                    Ok(None) => break,
                    Err(e) => panic!("seed {} failed to parse: {}", seed.name, e.reason),
                }
            }
            assert!(frames >= 8, "seed {} holds only {frames} frames", seed.name);
        }
    }

    #[test]
    fn each_diagnostic_fixture_produces_exactly_its_pinned_reason() {
        for fx in diagnostic_fixtures() {
            let mut src = PcapStream::new(Cursor::new(fx.bytes), StallPolicy::Eof);
            let mut skips = Vec::new();
            loop {
                match src.next() {
                    Ok(Some(SourceItem::Skipped { reason, .. })) => skips.push(reason),
                    Ok(Some(SourceItem::Frame(f))) => {
                        panic!("fixture {} yielded a frame at ts {}", fx.name, f.ts)
                    }
                    Ok(None) => break,
                    Err(e) => panic!("fixture {} went fatal: {}", fx.name, e.reason),
                }
            }
            assert_eq!(
                skips,
                vec![fx.expected_reason.to_owned()],
                "fixture {} diagnostics drifted",
                fx.name
            );
        }
    }
}
