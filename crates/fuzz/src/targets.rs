//! Fuzz targets: each one drives a mutated capture through a parser
//! stack and reports any panic as a finding.
//!
//! Parse errors, skip reports and truncation diagnostics are the
//! parsers' *contract* for hostile bytes — they are explicitly not
//! findings. A finding is a panic (or, under a fuzz-specific debug
//! build, an arithmetic overflow surfacing as one) anywhere between the
//! container walker and the verdict.

use caai_capture::reassemble;
use caai_capture::reconstruct::{observe_connection, session_outcome, sessions};
use caai_capture::DEFAULT_LADDER;
use caai_congestion::AlgorithmId;
use caai_core::classes::label_names;
use caai_core::features::FEATURE_DIM;
use caai_core::prober::ProberConfig;
use caai_core::CaaiClassifier;
use caai_ml::{Dataset, RandomForestConfig};
use caai_net::frame::{ClientFrame, FrameDecoder, ServerFrame};
use caai_net::{parse_targets, LadderCore, ServerCore, ServerProfile, Step};
use caai_netem::rng::seeded;
use caai_stream::source::{CaptureSource, PcapStream, SourceItem, StallPolicy};
use caai_stream::{identify_bytes, StreamConfig};
use std::io::Cursor;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The parser stacks a mutated input is driven through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Zero-copy classic reader → flow reassembly → ladder
    /// reconstruction → outcome (no classifier).
    Offline,
    /// Incremental source (classic *and* pcapng framing) drained item
    /// by item.
    Stream,
    /// The full multi-worker streaming pipeline with a live classifier.
    Pipeline,
    /// `host:port` target-list ingestion (mutated text: every line must
    /// parse or skip with an in-range 1-based diagnostic, never panic).
    NetTargets,
    /// The virtual-time wire protocol: mutated bytes decoded as server
    /// frames into a [`LadderCore`] ladder walk, and as client frames
    /// into a tcpsim-backed [`ServerCore`].
    NetFrames,
    /// Chrome trace-event JSON (mutated `--trace` output) through the
    /// `trace-report` salvage reader, stage analyzer, and renderer.
    TraceReport,
}

impl Target {
    pub fn name(self) -> &'static str {
        match self {
            Target::Offline => "offline",
            Target::Stream => "stream",
            Target::Pipeline => "pipeline",
            Target::NetTargets => "net-targets",
            Target::NetFrames => "net-frames",
            Target::TraceReport => "trace-report",
        }
    }
}

/// Shared state for all targets: one classifier, trained once.
pub struct Targets {
    classifier: CaaiClassifier,
}

impl Targets {
    pub fn new() -> Targets {
        Targets {
            classifier: tiny_classifier(),
        }
    }

    /// Runs `bytes` through `target`, converting any panic into
    /// `Err(message)`.
    pub fn run(&self, target: Target, bytes: &[u8], workers: usize) -> Result<(), String> {
        let job = AssertUnwindSafe(|| match target {
            Target::Offline => drive_offline(bytes),
            Target::Stream => drive_stream(bytes),
            Target::Pipeline => self.drive_pipeline(bytes, workers),
            Target::NetTargets => drive_net_targets(bytes),
            Target::NetFrames => drive_net_frames(bytes),
            Target::TraceReport => drive_trace_report(bytes),
        });
        catch_unwind(job).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic payload of unknown type".to_owned()
            }
        })
    }

    fn drive_pipeline(&self, bytes: &[u8], workers: usize) {
        let mut source = PcapStream::new(Cursor::new(bytes.to_vec()), StallPolicy::Eof);
        let config = StreamConfig {
            workers: workers.max(1),
            batch: 16,
            channel_depth: 2,
            ..StreamConfig::default()
        };
        let mut verdicts = 0usize;
        let _ = caai_stream::run(&mut source, &self.classifier, &config, |_report| {
            verdicts += 1;
        });
    }
}

impl Default for Targets {
    fn default() -> Self {
        Targets::new()
    }
}

/// The offline capture stack, classifier excluded: reassemble, observe
/// every flow against the ladder, group sessions, replay each outcome.
fn drive_offline(bytes: &[u8]) {
    let Ok(reassembly) = reassemble(bytes) else {
        return; // rejected at the container: the contract, not a finding
    };
    for flow in &reassembly.flows {
        let _ = observe_connection(flow, &DEFAULT_LADDER);
    }
    for session in sessions(&reassembly, &DEFAULT_LADDER) {
        let _ = session_outcome(&session, &DEFAULT_LADDER);
    }
}

/// The incremental source drained to exhaustion (both container
/// formats, per-item skip reports, fatal framing errors).
fn drive_stream(bytes: &[u8]) {
    let mut src = PcapStream::new(Cursor::new(bytes.to_vec()), StallPolicy::Eof);
    let mut items = 0u64;
    loop {
        match src.next() {
            Ok(Some(SourceItem::Frame(_))) | Ok(Some(SourceItem::Skipped { .. })) => {
                items += 1;
                // A mutated length field must never turn the reader into
                // an infinite item generator.
                assert!(
                    items < 1 << 22,
                    "source yielded {items} items without ending"
                );
            }
            Ok(None) | Err(_) => return,
        }
    }
}

/// `identify_bytes` — the public one-shot entry point — as a separate
/// drive for corpus replay (needs the classifier, so it lives on
/// [`Targets`] callers via [`Target::Pipeline`] during fuzzing; replay
/// uses it directly for the offline-vs-stream contract).
pub fn drive_identify(classifier: &CaaiClassifier, bytes: &[u8]) {
    let _ = identify_bytes(bytes, classifier, None);
}

/// Target-list ingestion over mutated text: skip-and-report is the
/// contract; a panic, or a diagnostic pointing outside the input, is a
/// finding.
fn drive_net_targets(bytes: &[u8]) {
    let text = String::from_utf8_lossy(bytes);
    let list = parse_targets(&text);
    let lines = text.lines().count();
    for skipped in &list.skipped {
        assert!(
            (1..=lines.max(1)).contains(&skipped.line),
            "skip diagnostic names line {} of a {lines}-line input",
            skipped.line
        );
    }
    for target in &list.targets {
        assert!((1..=65535).contains(&target.port));
    }
}

/// The wire protocol under mutation. Both endpoints must reduce hostile
/// frame streams to decode errors or protocol violations — the ladder
/// walk and the tcpsim replay must never panic, whatever arrives.
fn drive_net_frames(bytes: &[u8]) {
    // Client side: mutated bytes as the server's half of the dialogue.
    let mut client = LadderCore::new(ProberConfig::default());
    if matches!(client.start(), Step::Connect) {
        let _ = client.on_connected();
    }
    let mut decoder = FrameDecoder::new();
    decoder.push(bytes);
    'client: while let Ok(Some(frame)) = decoder.next::<ServerFrame>() {
        match client.on_frame(&frame) {
            Err(_) => break 'client,
            Ok(next) => {
                let mut step = next;
                // Walk non-blocking transitions so later frames land in
                // deeper ladder states.
                loop {
                    match step {
                        Step::Connect => step = client.on_connected(),
                        Step::Send {
                            close_after: true, ..
                        } => step = client.on_closed(),
                        Step::Send { .. } => break,
                        Step::Done(_) => break 'client,
                    }
                }
            }
        }
    }

    // Server side: mutated bytes as the client's half.
    let mut server = ServerCore::new(ServerProfile::ideal(AlgorithmId::Reno));
    let mut decoder = FrameDecoder::new();
    decoder.push(bytes);
    while let Ok(Some(frame)) = decoder.next::<ClientFrame>() {
        if server.on_frame(&frame).is_err() {
            break;
        }
    }
}

/// Trace-event JSON through the offline `trace-report` stack: salvage
/// reader, stage analyzer, report renderer. Skipped lines and unmatched
/// async begins are the reader's contract for mangled traces (a
/// SIGKILLed run leaves exactly that); a panic anywhere — line parsing,
/// quantile math over hostile durations, rendering — is a finding. The
/// sanity asserts mirror the salvage promise: whatever was skipped must
/// be counted, and every reconstructed span must carry a finite,
/// non-negative duration.
fn drive_trace_report(bytes: &[u8]) {
    let text = String::from_utf8_lossy(bytes);
    let read = caai_obs::report::read_str(&text);
    if read.skipped > 0 {
        assert!(
            read.first_error.is_some(),
            "{} lines skipped but no diagnostic recorded",
            read.skipped
        );
    }
    for span in &read.spans {
        assert!(
            span.dur_us.is_finite() && span.dur_us >= 0.0,
            "span `{}` reconstructed with duration {}",
            span.name,
            span.dur_us
        );
    }
    let analysis = caai_obs::TraceAnalysis::from_spans(&read.spans, 8);
    let _ = analysis.render(&read);
}

/// The cheapest forest that satisfies the classifier's 15-class
/// contract: one synthetic feature vector per class, three trees. The
/// fuzzer only needs *a* classifier on the pipeline's hot path — its
/// accuracy is irrelevant.
pub fn tiny_classifier() -> CaaiClassifier {
    let names = label_names();
    let n_classes = names.len();
    let mut data = Dataset::new(names, FEATURE_DIM);
    for class in 0..n_classes {
        for rep in 0..2 {
            let v: Vec<f64> = (0..FEATURE_DIM)
                .map(|f| (class * FEATURE_DIM + f) as f64 * 0.01 + rep as f64 * 0.001)
                .collect();
            data.push(v, class);
        }
    }
    CaaiClassifier::train_with(
        &data,
        RandomForestConfig {
            n_trees: 3,
            mtry: 4,
        },
        &mut seeded(42),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::build_seeds;

    #[test]
    fn all_targets_accept_all_seeds() {
        let targets = Targets::new();
        for seed in build_seeds() {
            for t in [
                Target::Offline,
                Target::Stream,
                Target::Pipeline,
                Target::NetTargets,
                Target::NetFrames,
                Target::TraceReport,
            ] {
                targets
                    .run(t, &seed.bytes, 2)
                    .unwrap_or_else(|m| panic!("seed {} panicked {}: {m}", seed.name, t.name()));
            }
        }
    }

    #[test]
    fn garbage_is_rejected_without_panicking() {
        let targets = Targets::new();
        let garbage: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        for t in [
            Target::Offline,
            Target::Stream,
            Target::Pipeline,
            Target::NetTargets,
            Target::NetFrames,
            Target::TraceReport,
        ] {
            targets.run(t, &garbage, 1).expect("garbage must not panic");
        }
    }
}
