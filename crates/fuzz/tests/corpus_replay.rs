//! Regression corpus replay.
//!
//! Every file under `tests/corpus/` is an input that once mattered —
//! a pinned diagnostic fixture or a crash the fuzzer found. This test
//! replays all of them through every target on every `cargo test`, and
//! additionally pins the pcapng skip diagnostics character-for-
//! character: each must name its enclosing block type, so a diagnostic
//! alone identifies the block walker that produced it.

use caai_fuzz::seeds::diagnostic_fixtures;
use caai_fuzz::targets::{Target, Targets};
use caai_stream::source::{CaptureSource, PcapStream, SourceItem, StallPolicy};
use std::io::Cursor;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_input_replays_without_panicking() {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus directory {} missing: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 6,
        "corpus at {} holds only {} files; the diagnostic fixtures alone are six",
        dir.display(),
        paths.len()
    );
    let targets = Targets::new();
    for path in &paths {
        let bytes = std::fs::read(path).expect("corpus file readable");
        for target in [
            Target::Offline,
            Target::Stream,
            Target::Pipeline,
            Target::TraceReport,
        ] {
            for workers in [1usize, 2] {
                targets.run(target, &bytes, workers).unwrap_or_else(|m| {
                    panic!(
                        "{} panicked {} ({workers} workers): {m}",
                        path.display(),
                        target.name()
                    )
                });
            }
        }
    }
}

#[test]
fn trace_fixtures_salvage_as_their_shapes_demand() {
    // The clean fixture is a finished `--trace` file: everything parses,
    // nothing dangles. Its truncated twin was cut mid-line (the SIGKILL
    // shape): the reader must salvage every whole line, skip at most the
    // torn one, and still never fail hard.
    let clean = std::fs::read_to_string(corpus_dir().join("trace-roundtrip.trace.json"))
        .expect("clean trace fixture committed");
    let read = caai_obs::report::read_str(&clean);
    assert!(read.spans.len() > 10, "clean fixture holds a real census");
    assert_eq!(read.skipped, 0);
    assert_eq!(read.unmatched_begins, 0);

    let cut = std::fs::read_to_string(corpus_dir().join("trace-sigkill-cut.trace.json"))
        .expect("truncated trace fixture committed");
    let read = caai_obs::report::read_str(&cut);
    assert!(!read.spans.is_empty(), "whole lines before the cut salvage");
    assert!(
        read.skipped <= 1,
        "only the torn line may be skipped, got {}",
        read.skipped
    );
}

#[test]
fn committed_diagnostic_fixtures_match_their_generator() {
    // The committed bytes must be exactly what `caai-fuzz emit-fixtures`
    // produces today — catching both corpus drift and generator drift.
    for fx in diagnostic_fixtures() {
        let path = corpus_dir().join(format!("diag-{}.pcapng", fx.name));
        let committed = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "{} missing ({e}); regenerate with `caai-fuzz emit-fixtures --out tests/corpus`",
                path.display()
            )
        });
        assert_eq!(
            committed,
            fx.bytes,
            "{} drifted from its generator; regenerate with `caai-fuzz emit-fixtures`",
            path.display()
        );
    }
}

#[test]
fn pcapng_skip_diagnostics_are_pinned_verbatim() {
    for fx in diagnostic_fixtures() {
        let path = corpus_dir().join(format!("diag-{}.pcapng", fx.name));
        let bytes = std::fs::read(&path).expect("fixture committed");
        let mut src = PcapStream::new(Cursor::new(bytes), StallPolicy::Eof);
        let mut skips: Vec<String> = Vec::new();
        loop {
            match src.next() {
                Ok(Some(SourceItem::Skipped { reason, .. })) => skips.push(reason),
                Ok(Some(SourceItem::Frame(f))) => {
                    panic!(
                        "fixture {} unexpectedly yielded frame at ts {}",
                        fx.name, f.ts
                    )
                }
                Ok(None) => break,
                Err(e) => panic!("fixture {} went fatal: {}", fx.name, e.reason),
            }
        }
        assert_eq!(
            skips,
            vec![fx.expected_reason.to_owned()],
            "fixture {}: skip diagnostic drifted from its pinned wording",
            fx.name
        );
        // The contract satellite: the enclosing block type is in the text.
        assert!(
            skips[0].contains("(type 0x0000000") || skips[0].contains("block type 0x"),
            "fixture {}: diagnostic does not name its block type: {}",
            fx.name,
            skips[0]
        );
    }
}
