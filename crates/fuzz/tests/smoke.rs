//! Bounded fuzzing as a regular test: a deterministic slice of the
//! campaign runs on every `cargo test`, so a parser regression that
//! panics on mutated input fails CI within seconds instead of waiting
//! for someone to run the long campaign by hand.
//!
//! Debug builds matter here: arithmetic overflow panics only in debug,
//! so this bounded run covers a failure mode the release acceptance
//! campaign cannot.

use caai_fuzz::{fuzz, FuzzConfig};

#[test]
fn bounded_campaign_finds_no_crashes() {
    let config = FuzzConfig {
        iters: 1500,
        seed: 0xF5A2_2026,
        pipeline_every: 250,
        ..FuzzConfig::default()
    };
    let outcome = fuzz(&config, |_, _, _| {});
    assert_eq!(outcome.iters, config.iters);
    assert!(
        outcome.executions >= config.iters * 2,
        "only {} executions for {} iterations",
        outcome.executions,
        outcome.iters
    );
    let summary: Vec<String> = outcome
        .crashes
        .iter()
        .map(|c| format!("{} iter {}: {}", c.target.name(), c.iter, c.message))
        .collect();
    assert!(
        outcome.crashes.is_empty(),
        "fuzzer found {} crash(es):\n{}",
        outcome.crashes.len(),
        summary.join("\n")
    );
}

#[test]
fn distinct_seeds_explore_distinct_inputs() {
    // Two campaigns from different seeds must not execute identically —
    // a stuck RNG would silently hollow out the smoke test above.
    let a = fuzz(
        &FuzzConfig {
            iters: 30,
            seed: 1,
            pipeline_every: 0,
            ..FuzzConfig::default()
        },
        |_, _, _| {},
    );
    let b = fuzz(
        &FuzzConfig {
            iters: 30,
            seed: 2,
            pipeline_every: 0,
            ..FuzzConfig::default()
        },
        |_, _, _| {},
    );
    assert_eq!(a.iters, b.iters);
    assert_eq!(a.crashes.len() + b.crashes.len(), 0);
}
