//! Confusion matrices — the representation behind the paper's Table III.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A square confusion matrix: `m[actual][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    labels: Vec<String>,
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an all-zero matrix over the given class names.
    pub fn new(labels: Vec<String>) -> Self {
        let n = labels.len();
        ConfusionMatrix {
            labels,
            counts: vec![vec![0; n]; n],
        }
    }

    /// Records one classification outcome.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// Merges another matrix over the same labels into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.labels, other.labels, "matrices must share labels");
        for (row, orow) in self.counts.iter_mut().zip(&other.counts) {
            for (c, oc) in row.iter_mut().zip(orow) {
                *c += oc;
            }
        }
    }

    /// Class names.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Raw counts: `counts()[actual][predicted]`.
    pub fn counts(&self) -> &[Vec<usize>] {
        &self.counts
    }

    /// Total recorded outcomes.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Overall accuracy: the headline 96.98% of §VII-A.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: usize = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Row of per-class percentages for `actual` (the Table III rows);
    /// empty classes yield all-zero rows.
    pub fn row_percent(&self, actual: usize) -> Vec<f64> {
        let row = &self.counts[actual];
        let total: usize = row.iter().sum();
        if total == 0 {
            return vec![0.0; row.len()];
        }
        row.iter()
            .map(|&c| 100.0 * c as f64 / total as f64)
            .collect()
    }

    /// Recall of one class (diagonal of its percentage row).
    pub fn recall(&self, class: usize) -> f64 {
        self.row_percent(class)[class] / 100.0
    }

    /// Number of outcomes recorded for one actual class.
    pub fn row_total(&self, actual: usize) -> usize {
        self.counts[actual].iter().sum()
    }

    /// Recall of every class, in label order; empty classes yield 0.
    pub fn per_class_recall(&self) -> Vec<f64> {
        (0..self.labels.len()).map(|i| self.recall(i)).collect()
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(8)
            .max(8);
        write!(f, "{:width$} ", "")?;
        for l in &self.labels {
            write!(f, "{:>width$} ", l)?;
        }
        writeln!(f)?;
        for (i, l) in self.labels.iter().enumerate() {
            write!(f, "{:width$} ", l)?;
            for p in self.row_percent(i) {
                write!(f, "{:>width$.2} ", p)?;
            }
            writeln!(f)?;
        }
        writeln!(f, "overall accuracy: {:.2}%", 100.0 * self.accuracy())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(vec!["x".into(), "y".into()]);
        for _ in 0..9 {
            m.record(0, 0);
        }
        m.record(0, 1);
        for _ in 0..8 {
            m.record(1, 1);
        }
        m.record(1, 0);
        m.record(1, 0);
        m
    }

    #[test]
    fn accuracy_and_recall() {
        let m = toy();
        assert_eq!(m.total(), 20);
        assert!((m.accuracy() - 17.0 / 20.0).abs() < 1e-12);
        assert!((m.recall(0) - 0.9).abs() < 1e-12);
        assert!((m.recall(1) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn row_percentages_sum_to_100() {
        let m = toy();
        for i in 0..2 {
            let sum: f64 = m.row_percent(i).iter().sum();
            assert!((sum - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_class_rows_are_zero() {
        let m = ConfusionMatrix::new(vec!["x".into(), "y".into()]);
        assert_eq!(m.row_percent(0), vec![0.0, 0.0]);
        assert_eq!(m.accuracy(), 0.0);
    }

    #[test]
    fn row_total_and_per_class_recall() {
        let m = toy();
        assert_eq!(m.row_total(0), 10);
        assert_eq!(m.row_total(1), 10);
        let r = m.per_class_recall();
        assert!((r[0] - 0.9).abs() < 1e-12);
        assert!((r[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = toy();
        let b = toy();
        a.merge(&b);
        assert_eq!(a.total(), 40);
        assert!((a.accuracy() - 17.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_labels_and_accuracy() {
        let s = toy().to_string();
        assert!(s.contains('x') && s.contains('y'));
        assert!(s.contains("accuracy"));
    }
}
