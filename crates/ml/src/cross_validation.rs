//! k-fold cross-validation — the 10-fold protocol of §VII-A ("we evenly
//! and randomly divide the total of 5600 feature vectors into 10 groups").

use crate::confusion::ConfusionMatrix;
use crate::dataset::Dataset;
use crate::Classifier;
use rand::RngCore;

/// Result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvReport {
    /// Confusion matrix accumulated over all validation folds.
    pub confusion: ConfusionMatrix,
    /// Per-fold accuracies.
    pub fold_accuracies: Vec<f64>,
}

impl CvReport {
    /// Overall accuracy across folds (the metric of Fig. 12).
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }
}

/// Runs stratified k-fold cross-validation of `make_model` over `data`.
///
/// A fresh model is built per fold so no state leaks between folds; the
/// report accumulates one confusion matrix over all validation samples,
/// exactly as Weka reports it.
pub fn cross_validate<C, F>(
    data: &Dataset,
    k: usize,
    mut make_model: F,
    rng: &mut dyn RngCore,
) -> CvReport
where
    C: Classifier,
    F: FnMut() -> C,
{
    assert!(data.len() >= k, "need at least one sample per fold");
    let folds = data.stratified_folds(k, rng);
    let mut confusion = ConfusionMatrix::new(data.label_names().to_vec());
    let mut fold_accuracies = Vec::with_capacity(k);

    for v in 0..k {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != v)
            .flat_map(|(_, f)| f.clone())
            .collect();
        let train = data.subset(&train_idx);
        let mut model = make_model();
        model.fit(&train, rng);

        let mut correct = 0usize;
        for &i in &folds[v] {
            let s = &data.samples()[i];
            let p = model.predict(&s.features);
            confusion.record(s.label, p.label);
            if p.label == s.label {
                correct += 1;
            }
        }
        let denom = folds[v].len().max(1);
        fold_accuracies.push(correct as f64 / denom as f64);
    }

    CvReport {
        confusion,
        fold_accuracies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestConfig};
    use crate::knn::KnnClassifier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..60 {
            let j = (i % 6) as f64 / 10.0;
            d.push(vec![j, j], 0);
            d.push(vec![5.0 + j, 5.0 + j], 1);
        }
        d
    }

    #[test]
    fn easy_data_cross_validates_cleanly() {
        let d = blobs();
        let mut rng = StdRng::seed_from_u64(3);
        let report = cross_validate(
            &d,
            10,
            || {
                RandomForest::new(RandomForestConfig {
                    n_trees: 10,
                    mtry: 1,
                })
            },
            &mut rng,
        );
        assert_eq!(report.fold_accuracies.len(), 10);
        assert!(report.accuracy() > 0.95, "got {}", report.accuracy());
        assert_eq!(report.confusion.total(), d.len());
    }

    #[test]
    fn works_with_other_classifiers() {
        let d = blobs();
        let mut rng = StdRng::seed_from_u64(4);
        let report = cross_validate(&d, 5, || KnnClassifier::new(3), &mut rng);
        assert!(report.accuracy() > 0.95);
    }

    #[test]
    fn every_sample_is_validated_exactly_once() {
        let d = blobs();
        let mut rng = StdRng::seed_from_u64(5);
        let report = cross_validate(&d, 7, || KnnClassifier::new(1), &mut rng);
        assert_eq!(report.confusion.total(), d.len());
    }
}
