//! Labeled datasets of dense feature vectors.

use rand::seq::SliceRandom;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One labeled sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature values.
    pub features: Vec<f64>,
    /// Class index.
    pub label: usize,
}

/// A labeled dataset with a class-name table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
    label_names: Vec<String>,
    n_features: usize,
}

impl Dataset {
    /// Creates an empty dataset over the given class names and feature
    /// dimensionality.
    pub fn new(label_names: Vec<String>, n_features: usize) -> Self {
        Dataset {
            samples: Vec::new(),
            label_names,
            n_features,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the feature dimensionality or label index is inconsistent.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature dimensionality mismatch"
        );
        assert!(label < self.label_names.len(), "label {label} out of range");
        assert!(
            features.iter().all(|f| f.is_finite()),
            "features must be finite, got {features:?}"
        );
        self.samples.push(Sample { features, label });
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.label_names.len()
    }

    /// Class names.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Name of one class.
    pub fn label_name(&self, label: usize) -> &str {
        &self.label_names[label]
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for s in &self.samples {
            counts[s.label] += 1;
        }
        counts
    }

    /// A view restricted to the given sample indices (clones the samples).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.label_names.clone(), self.n_features);
        for &i in indices {
            let s = &self.samples[i];
            out.push(s.features.clone(), s.label);
        }
        out
    }

    /// Splits indices into `k` stratified folds: each fold preserves the
    /// class proportions, as Weka's 10-fold cross-validation does (§VII-A).
    pub fn stratified_folds(&self, k: usize, rng: &mut dyn RngCore) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least two folds");
        let mut by_class: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.samples.iter().enumerate() {
            by_class.entry(s.label).or_default().push(i);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (_, mut idxs) in by_class {
            idxs.shuffle(rng);
            for (j, idx) in idxs.into_iter().enumerate() {
                folds[j % k].push(idx);
            }
        }
        folds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..20 {
            d.push(vec![i as f64, -(i as f64)], i % 2);
        }
        d
    }

    #[test]
    fn push_and_counts() {
        let d = toy();
        assert_eq!(d.len(), 20);
        assert_eq!(d.class_counts(), vec![10, 10]);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.label_name(1), "b");
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_dimensionality_rejected() {
        let mut d = toy();
        d.push(vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_rejected() {
        let mut d = toy();
        d.push(vec![1.0, 2.0], 7);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_features_rejected() {
        let mut d = toy();
        d.push(vec![f64::NAN, 0.0], 0);
    }

    #[test]
    fn stratified_folds_preserve_proportions() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(5);
        let folds = d.stratified_folds(5, &mut rng);
        assert_eq!(folds.len(), 5);
        for fold in &folds {
            assert_eq!(fold.len(), 4);
            let zeros = fold.iter().filter(|&&i| d.samples()[i].label == 0).count();
            assert_eq!(zeros, 2, "each fold holds half of each class");
        }
        // Folds partition the indices.
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn subset_clones_the_right_rows() {
        let d = toy();
        let s = d.subset(&[0, 3, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.samples()[1].features[0], 3.0);
        assert_eq!(s.samples()[1].label, 1);
    }
}
