//! Random forest (Breiman 2001), configured exactly as the paper
//! configures Weka: bagging + random-subspace CART trees, majority vote,
//! vote-share confidence (§VI).

use crate::dataset::Dataset;
use crate::tree::DecisionTree;
use crate::{Classifier, Prediction};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Forest hyperparameters (the two the paper tunes in Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees `K` (paper setting: 80).
    pub n_trees: usize,
    /// Random-subspace size `m`: features examined per split (paper
    /// setting: 4 of the 7 feature-vector elements).
    pub mtry: usize,
}

impl RandomForestConfig {
    /// The paper's production setting: K = 80 trees, m = 4.
    pub fn paper() -> Self {
        RandomForestConfig {
            n_trees: 80,
            mtry: 4,
        }
    }
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A bagged ensemble of random-subspace CART trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    config: RandomForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl Default for RandomForest {
    fn default() -> Self {
        Self::new(RandomForestConfig::paper())
    }
}

impl RandomForest {
    /// Creates an untrained forest with the given configuration.
    pub fn new(config: RandomForestConfig) -> Self {
        assert!(config.n_trees >= 1, "a forest needs at least one tree");
        RandomForest {
            config,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> RandomForestConfig {
        self.config
    }

    /// Number of trained trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Per-class vote shares for a feature vector (sums to 1).
    pub fn vote_shares(&self, features: &[f64]) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "predict called before fit");
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(features).label] += 1;
        }
        let total = self.trees.len() as f64;
        votes.into_iter().map(|v| v as f64 / total).collect()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset, rng: &mut dyn RngCore) {
        assert!(!data.is_empty(), "cannot fit a forest to an empty dataset");
        self.n_classes = data.n_classes();
        self.trees.clear();
        let n = data.len();
        for _ in 0..self.config.n_trees {
            // Bootstrap sample: n draws with replacement (bagging).
            let rows: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
            let mut tree = DecisionTree::with_mtry(self.config.mtry);
            tree.fit_rows(data, rows, rng);
            self.trees.push(tree);
        }
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        let shares = self.vote_shares(features);
        let (label, share) = shares
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite shares"))
            .expect("at least one class");
        Prediction {
            label,
            confidence: *share,
        }
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n_per_class: usize) -> Dataset {
        // Three well-separated Gaussian-ish blobs on a line, deterministic.
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()], 2);
        for i in 0..n_per_class {
            let jitter = (i % 7) as f64 / 20.0;
            d.push(vec![0.0 + jitter, 0.0 - jitter], 0);
            d.push(vec![5.0 + jitter, 5.0 - jitter], 1);
            d.push(vec![10.0 + jitter, 10.0 - jitter], 2);
        }
        d
    }

    #[test]
    fn forest_learns_blobs() {
        let d = blobs(30);
        let mut f = RandomForest::new(RandomForestConfig {
            n_trees: 20,
            mtry: 1,
        });
        let mut rng = StdRng::seed_from_u64(10);
        f.fit(&d, &mut rng);
        assert_eq!(f.tree_count(), 20);
        for s in d.samples() {
            let p = f.predict(&s.features);
            assert_eq!(p.label, s.label);
            assert!(p.confidence > 0.8, "clean blobs → confident votes");
        }
    }

    #[test]
    fn vote_shares_sum_to_one() {
        let d = blobs(10);
        let mut f = RandomForest::new(RandomForestConfig {
            n_trees: 15,
            mtry: 2,
        });
        let mut rng = StdRng::seed_from_u64(11);
        f.fit(&d, &mut rng);
        let shares = f.vote_shares(&[5.0, 5.0]);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ambiguous_points_get_low_confidence() {
        // A point exactly between two blobs splits the votes.
        let d = blobs(30);
        let mut f = RandomForest::new(RandomForestConfig {
            n_trees: 40,
            mtry: 1,
        });
        let mut rng = StdRng::seed_from_u64(12);
        f.fit(&d, &mut rng);
        let p = f.predict(&[2.6, 2.6]);
        assert!(
            p.confidence < 1.0,
            "boundary votes must split, got {}",
            p.confidence
        );
    }

    #[test]
    fn deterministic_under_a_fixed_seed() {
        let d = blobs(20);
        let mut f1 = RandomForest::new(RandomForestConfig::paper());
        let mut f2 = RandomForest::new(RandomForestConfig::paper());
        f1.fit(&d, &mut StdRng::seed_from_u64(77));
        f2.fit(&d, &mut StdRng::seed_from_u64(77));
        for s in d.samples() {
            assert_eq!(f1.predict(&s.features), f2.predict(&s.features));
        }
    }

    #[test]
    fn paper_config_values() {
        let c = RandomForestConfig::paper();
        assert_eq!(c.n_trees, 80);
        assert_eq!(c.mtry, 4);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let _ = RandomForest::new(RandomForestConfig {
            n_trees: 0,
            mtry: 1,
        });
    }
}
