//! k-nearest-neighbour baseline (one of the methods the paper compared
//! against random forest in Weka, §VI).

use crate::dataset::Dataset;
use crate::{Classifier, Prediction};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A kNN classifier with Euclidean distance over z-scored features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    /// Number of neighbours consulted.
    pub k: usize,
    train: Dataset,
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl KnnClassifier {
    /// Creates an untrained kNN classifier.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KnnClassifier {
            k,
            train: Dataset::default(),
            means: Vec::new(),
            stds: Vec::new(),
        }
    }

    fn normalize(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(x, (m, s))| if *s > 1e-12 { (x - m) / s } else { 0.0 })
            .collect()
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, data: &Dataset, _rng: &mut dyn RngCore) {
        assert!(!data.is_empty(), "cannot fit kNN to an empty dataset");
        let n = data.len() as f64;
        let d = data.n_features();
        let mut means = vec![0.0; d];
        for s in data.samples() {
            for (i, v) in s.features.iter().enumerate() {
                means[i] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for s in data.samples() {
            for (i, v) in s.features.iter().enumerate() {
                stds[i] += (v - means[i]) * (v - means[i]);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        self.means = means;
        self.stds = stds;
        self.train = data.clone();
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        assert!(!self.train.is_empty(), "predict called before fit");
        let q = self.normalize(features);
        let mut dists: Vec<(f64, usize)> = self
            .train
            .samples()
            .iter()
            .map(|s| {
                let p = self.normalize(&s.features);
                let d2: f64 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, s.label)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut votes = vec![0usize; self.train.n_classes()];
        for &(_, label) in dists.iter().take(k) {
            votes[label] += 1;
        }
        let (label, count) = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, &c)| (i, c))
            .unwrap();
        Prediction {
            label,
            confidence: count as f64 / k as f64,
        }
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 1);
        for i in 0..10 {
            d.push(vec![i as f64], 0);
            d.push(vec![100.0 + i as f64], 1);
        }
        d
    }

    #[test]
    fn nearest_neighbour_classifies_cleanly() {
        let d = toy();
        let mut knn = KnnClassifier::new(3);
        knn.fit(&d, &mut StdRng::seed_from_u64(0));
        assert_eq!(knn.predict(&[4.0]).label, 0);
        assert_eq!(knn.predict(&[104.0]).label, 1);
    }

    #[test]
    fn confidence_is_vote_fraction() {
        let d = toy();
        let mut knn = KnnClassifier::new(5);
        knn.fit(&d, &mut StdRng::seed_from_u64(0));
        let p = knn.predict(&[0.0]);
        assert_eq!(p.confidence, 1.0);
    }

    #[test]
    fn z_scoring_makes_scales_comparable() {
        // Feature 1 has a huge scale; without normalization it would
        // dominate. The discriminating feature is feature 0.
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..20 {
            let noise = (i as f64) * 1000.0;
            d.push(vec![0.0, noise], 0);
            d.push(vec![1.0, noise], 1);
        }
        let mut knn = KnnClassifier::new(1);
        knn.fit(&d, &mut StdRng::seed_from_u64(0));
        assert_eq!(knn.predict(&[0.0, 7000.0]).label, 0);
        assert_eq!(knn.predict(&[1.0, 7000.0]).label, 1);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_rejected() {
        let _ = KnnClassifier::new(0);
    }
}
