//! # caai-ml
//!
//! The machine-learning substrate of the CAAI reproduction.
//!
//! The paper classifies feature vectors with Weka's **random forest**
//! (Breiman 2001), chosen after comparing kNN, decision trees, neural
//! networks, naive Bayes and SVMs (§VI: "random forest consistently
//! achieves the highest classification accuracy"). This crate implements:
//!
//! * [`tree`] — CART classification trees (Gini impurity, no pruning) with
//!   random-subspace splits;
//! * [`forest`] — bootstrap-aggregated forests with vote-share confidence,
//!   matching Weka's `numTrees` (paper: K = 80) and `numFeatures`
//!   (paper: m = 4) parameters and the 40% confidence floor of §VII-B;
//! * [`knn`], [`naive_bayes`], [`mlp`], [`svm`] — the baselines the paper
//!   compared against (kNN, naive Bayes, neural network, SVM);
//! * [`cross_validation`] — the 10-fold protocol of §VII-A;
//! * [`confusion`] — confusion matrices (Table III);
//! * [`scaler`] — feature standardization shared by the distance- and
//!   gradient-based models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusion;
pub mod cross_validation;
pub mod dataset;
pub mod forest;
pub mod knn;
pub mod mlp;
pub mod naive_bayes;
pub mod scaler;
pub mod svm;
pub mod tree;

pub use confusion::ConfusionMatrix;
pub use cross_validation::{cross_validate, CvReport};
pub use dataset::{Dataset, Sample};
pub use forest::{RandomForest, RandomForestConfig};
pub use knn::KnnClassifier;
pub use mlp::{MlpClassifier, MlpConfig};
pub use naive_bayes::GaussianNaiveBayes;
pub use scaler::StandardScaler;
pub use svm::{LinearSvm, SvmConfig};
pub use tree::DecisionTree;

use rand::RngCore;

/// A trained-or-trainable classifier over dense `f64` feature vectors.
pub trait Classifier {
    /// Fits the model to a dataset. Stochastic models draw from `rng`.
    fn fit(&mut self, data: &Dataset, rng: &mut dyn RngCore);

    /// Predicts the label of one feature vector.
    fn predict(&self, features: &[f64]) -> Prediction;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;
}

/// A classification outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted class index into the dataset's label table.
    pub label: usize,
    /// Confidence in [0, 1]. For forests: the share of trees voting for
    /// the winner — the quantity CAAI thresholds at 40% (§VII-B).
    pub confidence: f64,
}
