//! Artificial-neural-network baseline (one of the methods the paper
//! compared against random forest in Weka, §VI — Weka's
//! `MultilayerPerceptron`).
//!
//! A single-hidden-layer perceptron with tanh activations and a softmax
//! output trained by full-batch gradient descent on cross-entropy loss.
//! Features are standardized with [`StandardScaler`] before training, as
//! Weka's implementation normalizes its inputs.

use crate::dataset::Dataset;
use crate::scaler::StandardScaler;
use crate::{Classifier, Prediction};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Hyperparameters of the multilayer perceptron.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Hidden-layer width. Weka's default is `(features + classes) / 2`;
    /// [`MlpConfig::default`] uses 16, which covers the CAAI geometry
    /// (7 features, 15 classes).
    pub hidden: usize,
    /// Learning rate for gradient descent.
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 16,
            learning_rate: 0.05,
            epochs: 400,
            weight_decay: 1e-4,
        }
    }
}

/// A single-hidden-layer neural network classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlpClassifier {
    config: MlpConfig,
    scaler: StandardScaler,
    /// `hidden × (features + 1)` row-major weights (last column is bias).
    w1: Vec<f64>,
    /// `classes × (hidden + 1)` row-major weights (last column is bias).
    w2: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

impl MlpClassifier {
    /// Creates an untrained network.
    ///
    /// # Panics
    ///
    /// Panics if the hidden width is zero.
    pub fn new(config: MlpConfig) -> Self {
        assert!(config.hidden >= 1, "hidden width must be at least 1");
        MlpClassifier {
            config,
            scaler: StandardScaler::default(),
            w1: Vec::new(),
            w2: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// The hyperparameters in force.
    pub fn config(&self) -> MlpConfig {
        self.config
    }

    /// Forward pass over standardized features; returns (hidden
    /// activations, class probabilities).
    fn forward(&self, z: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let h = self.config.hidden;
        let d = self.n_features;
        let mut hidden = vec![0.0; h];
        for (j, act) in hidden.iter_mut().enumerate() {
            let row = &self.w1[j * (d + 1)..(j + 1) * (d + 1)];
            let mut sum = row[d]; // bias
            for (x, w) in z.iter().zip(row) {
                sum += x * w;
            }
            *act = sum.tanh();
        }
        let mut logits = vec![0.0; self.n_classes];
        for (c, logit) in logits.iter_mut().enumerate() {
            let row = &self.w2[c * (h + 1)..(c + 1) * (h + 1)];
            let mut sum = row[h]; // bias
            for (a, w) in hidden.iter().zip(row) {
                sum += a * w;
            }
            *logit = sum;
        }
        (hidden, softmax(&logits))
    }
}

/// Numerically stable softmax.
fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, data: &Dataset, rng: &mut dyn RngCore) {
        assert!(!data.is_empty(), "cannot fit an MLP to an empty dataset");
        let d = data.n_features();
        let c = data.n_classes();
        let h = self.config.hidden;
        self.n_features = d;
        self.n_classes = c;
        self.scaler = StandardScaler::fit(data);

        // Xavier-style initialization.
        let scale1 = (1.0 / (d as f64 + 1.0)).sqrt();
        let scale2 = (1.0 / (h as f64 + 1.0)).sqrt();
        self.w1 = (0..h * (d + 1))
            .map(|_| rng.random_range(-scale1..scale1))
            .collect();
        self.w2 = (0..c * (h + 1))
            .map(|_| rng.random_range(-scale2..scale2))
            .collect();

        let inputs: Vec<Vec<f64>> = data
            .samples()
            .iter()
            .map(|s| self.scaler.transform(&s.features))
            .collect();
        let n = inputs.len() as f64;
        let lr = self.config.learning_rate;
        let decay = self.config.weight_decay;

        for _ in 0..self.config.epochs {
            let mut g1 = vec![0.0; self.w1.len()];
            let mut g2 = vec![0.0; self.w2.len()];
            for (z, s) in inputs.iter().zip(data.samples()) {
                let (hidden, probs) = self.forward(z);
                // Output delta: softmax + cross-entropy.
                let mut delta_out = probs;
                delta_out[s.label] -= 1.0;
                // Gradients for w2 and backprop into the hidden layer.
                let mut delta_hidden = vec![0.0; h];
                for (cls, &dout) in delta_out.iter().enumerate() {
                    let base = cls * (h + 1);
                    for j in 0..h {
                        g2[base + j] += dout * hidden[j];
                        delta_hidden[j] += dout * self.w2[base + j];
                    }
                    g2[base + h] += dout;
                }
                // tanh'(x) = 1 − tanh²(x).
                for (j, dh) in delta_hidden.iter_mut().enumerate() {
                    *dh *= 1.0 - hidden[j] * hidden[j];
                }
                for (j, &dh) in delta_hidden.iter().enumerate() {
                    let base = j * (d + 1);
                    for (i, x) in z.iter().enumerate() {
                        g1[base + i] += dh * x;
                    }
                    g1[base + d] += dh;
                }
            }
            for (w, g) in self.w1.iter_mut().zip(&g1) {
                *w -= lr * (g / n + decay * *w);
            }
            for (w, g) in self.w2.iter_mut().zip(&g2) {
                *w -= lr * (g / n + decay * *w);
            }
        }
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        assert!(!self.w1.is_empty(), "predict called before fit");
        let z = self.scaler.transform(features);
        let (_, probs) = self.forward(&z);
        let (label, p) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .expect("at least one class");
        Prediction {
            label,
            confidence: *p,
        }
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()], 2);
        for i in 0..30 {
            let j = (i % 5) as f64 / 10.0;
            d.push(vec![0.0 + j, 0.0 - j], 0);
            d.push(vec![4.0 + j, 4.0 - j], 1);
            d.push(vec![8.0 + j, 8.0 - j], 2);
        }
        d
    }

    /// XOR is not linearly separable: passing it proves the hidden layer
    /// does real work (a linear model scores ≤ 75%).
    fn xor() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..25 {
            let j = (i % 5) as f64 / 25.0;
            d.push(vec![j, j], 0);
            d.push(vec![1.0 - j, 1.0 - j], 0);
            d.push(vec![j, 1.0 - j], 1);
            d.push(vec![1.0 - j, j], 1);
        }
        d
    }

    #[test]
    fn learns_separable_blobs() {
        let d = blobs();
        let mut m = MlpClassifier::new(MlpConfig::default());
        m.fit(&d, &mut StdRng::seed_from_u64(1));
        let correct = d
            .samples()
            .iter()
            .filter(|s| m.predict(&s.features).label == s.label)
            .count();
        assert!(
            correct as f64 / d.len() as f64 > 0.95,
            "{correct}/{}",
            d.len()
        );
    }

    #[test]
    fn learns_xor() {
        let d = xor();
        let mut m = MlpClassifier::new(MlpConfig {
            hidden: 8,
            learning_rate: 0.5,
            epochs: 3000,
            weight_decay: 0.0,
        });
        m.fit(&d, &mut StdRng::seed_from_u64(3));
        let correct = d
            .samples()
            .iter()
            .filter(|s| m.predict(&s.features).label == s.label)
            .count();
        assert!(
            correct as f64 / d.len() as f64 > 0.9,
            "{correct}/{}",
            d.len()
        );
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let d = blobs();
        let mut m = MlpClassifier::new(MlpConfig::default());
        m.fit(&d, &mut StdRng::seed_from_u64(2));
        let p = m.predict(&[4.0, 4.0]);
        assert!(p.confidence > 1.0 / 3.0 && p.confidence <= 1.0);
    }

    #[test]
    fn deterministic_under_a_fixed_seed() {
        let d = blobs();
        let mut m1 = MlpClassifier::new(MlpConfig::default());
        let mut m2 = MlpClassifier::new(MlpConfig::default());
        m1.fit(&d, &mut StdRng::seed_from_u64(9));
        m2.fit(&d, &mut StdRng::seed_from_u64(9));
        for s in d.samples() {
            assert_eq!(m1.predict(&s.features), m2.predict(&s.features));
        }
    }

    #[test]
    fn softmax_sums_to_one_and_orders_by_logit() {
        let p = softmax(&[1.0, 3.0, 2.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[2] && p[2] > p[0]);
    }

    #[test]
    #[should_panic(expected = "hidden width")]
    fn zero_hidden_rejected() {
        let _ = MlpClassifier::new(MlpConfig {
            hidden: 0,
            ..MlpConfig::default()
        });
    }
}
