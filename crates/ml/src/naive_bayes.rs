//! Gaussian naive Bayes baseline (another of the paper's Weka
//! comparisons, §VI).

use crate::dataset::Dataset;
use crate::{Classifier, Prediction};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Variance floor preventing degenerate zero-width Gaussians on constant
/// features (e.g. the paper's binary `I(w ≥ 64)` element).
const VAR_FLOOR: f64 = 1e-6;

/// Gaussian naive Bayes with per-class feature means/variances.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    priors: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl GaussianNaiveBayes {
    /// Creates an untrained model.
    pub fn new() -> Self {
        Self::default()
    }

    fn log_likelihood(&self, class: usize, features: &[f64]) -> f64 {
        let mut ll = self.priors[class].ln();
        for (i, x) in features.iter().enumerate() {
            let m = self.means[class][i];
            let v = self.vars[class][i];
            ll += -0.5 * ((x - m) * (x - m) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, data: &Dataset, _rng: &mut dyn RngCore) {
        assert!(
            !data.is_empty(),
            "cannot fit naive Bayes to an empty dataset"
        );
        let c = data.n_classes();
        let d = data.n_features();
        let counts = data.class_counts();
        self.priors = counts
            .iter()
            .map(|&n| ((n as f64) + 1.0) / (data.len() as f64 + c as f64)) // Laplace
            .collect();
        self.means = vec![vec![0.0; d]; c];
        self.vars = vec![vec![0.0; d]; c];
        for s in data.samples() {
            for (i, v) in s.features.iter().enumerate() {
                self.means[s.label][i] += v;
            }
        }
        #[allow(clippy::needless_range_loop)]
        for k in 0..c {
            if counts[k] > 0 {
                for i in 0..d {
                    self.means[k][i] /= counts[k] as f64;
                }
            }
        }
        for s in data.samples() {
            for (i, v) in s.features.iter().enumerate() {
                let dm = v - self.means[s.label][i];
                self.vars[s.label][i] += dm * dm;
            }
        }
        #[allow(clippy::needless_range_loop)]
        for k in 0..c {
            for i in 0..d {
                self.vars[k][i] = if counts[k] > 1 {
                    (self.vars[k][i] / counts[k] as f64).max(VAR_FLOOR)
                } else {
                    1.0
                };
            }
        }
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        assert!(!self.priors.is_empty(), "predict called before fit");
        let lls: Vec<f64> = (0..self.priors.len())
            .map(|k| self.log_likelihood(k, features))
            .collect();
        let max = lls.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Softmax over log-likelihoods for a posterior-like confidence.
        let exps: Vec<f64> = lls.iter().map(|l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let (label, p) = exps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .unwrap();
        Prediction {
            label,
            confidence: p / sum,
        }
    }

    fn name(&self) -> &'static str {
        "naive-bayes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separated_gaussians_are_learned() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..30 {
            let j = (i % 5) as f64 / 10.0;
            d.push(vec![0.0 + j, 1.0 - j], 0);
            d.push(vec![10.0 + j, 11.0 - j], 1);
        }
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&d, &mut StdRng::seed_from_u64(0));
        let p = nb.predict(&[0.2, 0.9]);
        assert_eq!(p.label, 0);
        assert!(p.confidence > 0.99);
        assert_eq!(nb.predict(&[10.2, 10.9]).label, 1);
    }

    #[test]
    fn constant_features_do_not_blow_up() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..10 {
            d.push(vec![1.0, i as f64], i % 2);
        }
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&d, &mut StdRng::seed_from_u64(0));
        let p = nb.predict(&[1.0, 4.0]);
        assert!(p.confidence.is_finite());
    }

    #[test]
    fn priors_reflect_imbalance() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 1);
        for _ in 0..90 {
            d.push(vec![0.5], 0);
        }
        for _ in 0..10 {
            d.push(vec![0.6], 1);
        }
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&d, &mut StdRng::seed_from_u64(0));
        // An equidistant point goes to the majority class.
        assert_eq!(nb.predict(&[0.55]).label, 0);
    }
}
