//! Feature standardization (z-scoring) shared by the distance- and
//! gradient-based models.
//!
//! CAAI feature vectors mix scales — β lives in [0, 2] while the growth
//! offsets G3/G6 reach hundreds of packets — so kNN, the neural network
//! and the SVM all standardize features first. Trees and forests split on
//! raw thresholds and need no scaling.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Per-feature mean/standard-deviation scaler.
///
/// Constant features (σ ≈ 0) map to 0 so they carry no weight instead of
/// producing infinities.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler to an empty dataset");
        let n = data.len() as f64;
        let d = data.n_features();
        let mut means = vec![0.0; d];
        for s in data.samples() {
            for (i, v) in s.features.iter().enumerate() {
                means[i] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for s in data.samples() {
            for (i, v) in s.features.iter().enumerate() {
                stds[i] += (v - means[i]) * (v - means[i]);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        StandardScaler { means, stds }
    }

    /// Standardizes one feature vector.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(x, (m, s))| if *s > 1e-12 { (x - m) / s } else { 0.0 })
            .collect()
    }

    /// Feature dimensionality the scaler was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        d.push(vec![0.0, 5.0], 0);
        d.push(vec![2.0, 5.0], 0);
        d.push(vec![4.0, 5.0], 1);
        d
    }

    #[test]
    fn transform_centres_and_scales() {
        let s = StandardScaler::fit(&toy());
        let z = s.transform(&[2.0, 5.0]);
        assert!(z[0].abs() < 1e-12, "mean maps to zero, got {}", z[0]);
        let z = s.transform(&[4.0, 5.0]);
        assert!((z[0] - 1.2247).abs() < 1e-3, "one σ above, got {}", z[0]);
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let s = StandardScaler::fit(&toy());
        assert_eq!(s.transform(&[0.0, 123.0])[1], 0.0);
    }

    #[test]
    fn dimensionality_is_reported() {
        assert_eq!(StandardScaler::fit(&toy()).n_features(), 2);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let _ = StandardScaler::fit(&Dataset::new(vec!["a".into()], 1));
    }
}
