//! Support-vector-machine baseline (one of the methods the paper compared
//! against random forest in Weka, §VI — Weka's `SMO`).
//!
//! A linear multi-class SVM trained **one-vs-one** (like Weka's SMO) with
//! the Pegasos stochastic sub-gradient solver (Shalev-Shwartz et al.
//! 2007) on hinge loss with L2 regularization: one binary classifier per
//! class pair, coupled by logistic soft votes per class.
//! One-vs-rest would be cheaper but cannot rank a class sandwiched
//! between its neighbours along one feature direction — exactly the
//! geometry of CAAI's β-ordered classes. Features are standardized with
//! [`StandardScaler`]; multi-class confidence is the softmax of the
//! coupled per-class scores, mirroring how Weka turns pairwise SMO
//! outputs into probability estimates.

use crate::dataset::Dataset;
use crate::scaler::StandardScaler;
use crate::{Classifier, Prediction};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Hyperparameters of the linear SVM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Regularization strength λ of the Pegasos objective
    /// `λ/2·‖w‖² + mean hinge loss`.
    pub lambda: f64,
    /// Training epochs (full passes over the shuffled data).
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-3,
            epochs: 60,
        }
    }
}

/// A linear one-vs-one SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    config: SvmConfig,
    scaler: StandardScaler,
    /// `pairs × (features + 1)` row-major weights (last column is bias),
    /// one row per class pair `(a, b)` with `a < b` in lexicographic
    /// order; the row's positive side is class `a`.
    weights: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

/// Class pairs `(a, b)`, `a < b`, in the weight-row order.
fn class_pairs(n_classes: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..n_classes).flat_map(move |a| (a + 1..n_classes).map(move |b| (a, b)))
}

impl LinearSvm {
    /// Creates an untrained SVM.
    ///
    /// # Panics
    ///
    /// Panics if λ is not positive or `epochs` is zero.
    pub fn new(config: SvmConfig) -> Self {
        assert!(config.lambda > 0.0, "lambda must be positive");
        assert!(config.epochs >= 1, "need at least one epoch");
        LinearSvm {
            config,
            scaler: StandardScaler::default(),
            weights: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// The hyperparameters in force.
    pub fn config(&self) -> SvmConfig {
        self.config
    }

    /// Per-class scores for standardized features: soft pairwise votes.
    /// Each pair contributes `σ(margin)` to its positive class and
    /// `σ(−margin)` to the other — the logistic link Weka fits over SMO
    /// outputs. Summing *raw* margins instead would let an irrelevant
    /// pair's magnitude (a point far on one side of a split it is not
    /// part of) swamp the votes of the pairs that matter.
    fn margins(&self, z: &[f64]) -> Vec<f64> {
        let d = self.n_features;
        let mut scores = vec![0.0; self.n_classes];
        for (p, (a, b)) in class_pairs(self.n_classes).enumerate() {
            let row = &self.weights[p * (d + 1)..(p + 1) * (d + 1)];
            let margin = row[d] + z.iter().zip(row).map(|(x, w)| x * w).sum::<f64>();
            let vote = 1.0 / (1.0 + (-margin).exp());
            scores[a] += vote;
            scores[b] += 1.0 - vote;
        }
        scores
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset, rng: &mut dyn RngCore) {
        assert!(!data.is_empty(), "cannot fit an SVM to an empty dataset");
        let d = data.n_features();
        let c = data.n_classes();
        self.n_features = d;
        self.n_classes = c;
        self.scaler = StandardScaler::fit(data);
        let n_pairs = c * (c.saturating_sub(1)) / 2;
        self.weights = vec![0.0; n_pairs * (d + 1)];

        let inputs: Vec<Vec<f64>> = data
            .samples()
            .iter()
            .map(|s| self.scaler.transform(&s.features))
            .collect();
        let lambda = self.config.lambda;

        // Pegasos per pair: step size 1/(λ·t), one sample sub-gradient per
        // step, drawn from the two classes of the pair only.
        for (p, (a, b)) in class_pairs(c).enumerate() {
            let members: Vec<usize> = data
                .samples()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.label == a || s.label == b)
                .map(|(i, _)| i)
                .collect();
            if members.is_empty() {
                continue;
            }
            let base = p * (d + 1);
            let mut t = 0usize;
            for _ in 0..self.config.epochs {
                for _ in 0..members.len() {
                    let i = members[rng.random_range(0..members.len())];
                    t += 1;
                    let eta = 1.0 / (lambda * t as f64);
                    let z = &inputs[i];
                    let y = if data.samples()[i].label == a {
                        1.0
                    } else {
                        -1.0
                    };
                    let margin = {
                        let row = &self.weights[base..base + d + 1];
                        row[d] + z.iter().zip(row).map(|(x, w)| x * w).sum::<f64>()
                    };
                    // w ← (1 − ηλ)·w  [+ η·y·x when the hinge is active]
                    for w in &mut self.weights[base..base + d] {
                        *w *= 1.0 - eta * lambda;
                    }
                    if y * margin < 1.0 {
                        for (j, x) in z.iter().enumerate() {
                            self.weights[base + j] += eta * y * x;
                        }
                        self.weights[base + d] += eta * y;
                    }
                    // Pegasos's projection step: keep the solution inside
                    // the ‖w‖ ≤ 1/√λ ball. Without it the 1/(λt) step
                    // size makes the first updates enormous and the decay
                    // never recovers, leaving pairwise margins on wildly
                    // different scales.
                    let row = &mut self.weights[base..base + d + 1];
                    let norm = row.iter().map(|w| w * w).sum::<f64>().sqrt();
                    let bound = 1.0 / lambda.sqrt();
                    if norm > bound {
                        let shrink = bound / norm;
                        for w in row {
                            *w *= shrink;
                        }
                    }
                }
            }
        }
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        assert!(!self.weights.is_empty(), "predict called before fit");
        let z = self.scaler.transform(features);
        let margins = self.margins(&z);
        let max = margins.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = margins.iter().map(|&m| (m - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let (label, e) = exps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite margins"))
            .expect("at least one class");
        Prediction {
            label,
            confidence: e / sum,
        }
    }

    fn name(&self) -> &'static str {
        "linear-svm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()], 2);
        for i in 0..30 {
            let j = (i % 5) as f64 / 10.0;
            d.push(vec![0.0 + j, 0.0 - j], 0);
            d.push(vec![4.0 + j, 4.0 - j], 1);
            d.push(vec![8.0 + j, 8.0 - j], 2);
        }
        d
    }

    #[test]
    fn learns_separable_blobs() {
        let d = blobs();
        let mut svm = LinearSvm::new(SvmConfig::default());
        svm.fit(&d, &mut StdRng::seed_from_u64(1));
        let correct = d
            .samples()
            .iter()
            .filter(|s| svm.predict(&s.features).label == s.label)
            .count();
        assert!(
            correct as f64 / d.len() as f64 > 0.95,
            "{correct}/{}",
            d.len()
        );
    }

    #[test]
    fn margins_order_matches_blob_position() {
        let d = blobs();
        let mut svm = LinearSvm::new(SvmConfig::default());
        svm.fit(&d, &mut StdRng::seed_from_u64(2));
        // A point square in blob 1's territory: its margin must dominate.
        let z = svm.scaler.transform(&[4.0, 4.0]);
        let m = svm.margins(&z);
        assert!(m[1] > m[0] && m[1] > m[2], "margins {m:?}");
    }

    #[test]
    fn confidence_is_a_probability() {
        let d = blobs();
        let mut svm = LinearSvm::new(SvmConfig::default());
        svm.fit(&d, &mut StdRng::seed_from_u64(3));
        let p = svm.predict(&[0.0, 0.0]);
        assert!(p.confidence > 1.0 / 3.0 && p.confidence <= 1.0);
    }

    #[test]
    fn deterministic_under_a_fixed_seed() {
        let d = blobs();
        let mut s1 = LinearSvm::new(SvmConfig::default());
        let mut s2 = LinearSvm::new(SvmConfig::default());
        s1.fit(&d, &mut StdRng::seed_from_u64(7));
        s2.fit(&d, &mut StdRng::seed_from_u64(7));
        for s in d.samples() {
            assert_eq!(s1.predict(&s.features), s2.predict(&s.features));
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn non_positive_lambda_rejected() {
        let _ = LinearSvm::new(SvmConfig {
            lambda: 0.0,
            epochs: 10,
        });
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn zero_epochs_rejected() {
        let _ = LinearSvm::new(SvmConfig {
            lambda: 1e-3,
            epochs: 0,
        });
    }
}
