//! Support-vector-machine baseline (one of the methods the paper compared
//! against random forest in Weka, §VI — Weka's `SMO`).
//!
//! A linear multi-class SVM trained one-vs-rest with the Pegasos
//! stochastic sub-gradient solver (Shalev-Shwartz et al. 2007) on hinge
//! loss with L2 regularization. Features are standardized with
//! [`StandardScaler`]; multi-class confidence is the softmax of the
//! per-class decision margins, mirroring how Weka couples pairwise SMO
//! outputs into probability estimates.

use crate::dataset::Dataset;
use crate::scaler::StandardScaler;
use crate::{Classifier, Prediction};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// Hyperparameters of the linear SVM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Regularization strength λ of the Pegasos objective
    /// `λ/2·‖w‖² + mean hinge loss`.
    pub lambda: f64,
    /// Training epochs (full passes over the shuffled data).
    pub epochs: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig { lambda: 1e-3, epochs: 60 }
    }
}

/// A linear one-vs-rest SVM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    config: SvmConfig,
    scaler: StandardScaler,
    /// `classes × (features + 1)` row-major weights (last column is bias).
    weights: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

impl LinearSvm {
    /// Creates an untrained SVM.
    ///
    /// # Panics
    ///
    /// Panics if λ is not positive or `epochs` is zero.
    pub fn new(config: SvmConfig) -> Self {
        assert!(config.lambda > 0.0, "lambda must be positive");
        assert!(config.epochs >= 1, "need at least one epoch");
        LinearSvm {
            config,
            scaler: StandardScaler::default(),
            weights: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// The hyperparameters in force.
    pub fn config(&self) -> SvmConfig {
        self.config
    }

    /// Per-class decision margins `wᵀx + b` for standardized features.
    fn margins(&self, z: &[f64]) -> Vec<f64> {
        let d = self.n_features;
        (0..self.n_classes)
            .map(|c| {
                let row = &self.weights[c * (d + 1)..(c + 1) * (d + 1)];
                row[d] + z.iter().zip(row).map(|(x, w)| x * w).sum::<f64>()
            })
            .collect()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset, rng: &mut dyn RngCore) {
        assert!(!data.is_empty(), "cannot fit an SVM to an empty dataset");
        let d = data.n_features();
        let c = data.n_classes();
        self.n_features = d;
        self.n_classes = c;
        self.scaler = StandardScaler::fit(data);
        self.weights = vec![0.0; c * (d + 1)];

        let inputs: Vec<Vec<f64>> =
            data.samples().iter().map(|s| self.scaler.transform(&s.features)).collect();
        let n = inputs.len();
        let lambda = self.config.lambda;

        // Pegasos: step size 1/(λ·t), one (sample, class) sub-gradient per
        // step, classes trained one-vs-rest over a shared sample stream.
        let mut t = 0usize;
        for _ in 0..self.config.epochs {
            for _ in 0..n {
                let i = rng.random_range(0..n);
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let z = &inputs[i];
                let label = data.samples()[i].label;
                for cls in 0..c {
                    let y = if cls == label { 1.0 } else { -1.0 };
                    let base = cls * (d + 1);
                    let margin = {
                        let row = &self.weights[base..base + d + 1];
                        row[d] + z.iter().zip(row).map(|(x, w)| x * w).sum::<f64>()
                    };
                    // w ← (1 − ηλ)·w  [+ η·y·x when the hinge is active]
                    for w in &mut self.weights[base..base + d] {
                        *w *= 1.0 - eta * lambda;
                    }
                    if y * margin < 1.0 {
                        for (j, x) in z.iter().enumerate() {
                            self.weights[base + j] += eta * y * x;
                        }
                        self.weights[base + d] += eta * y;
                    }
                }
            }
        }
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        assert!(!self.weights.is_empty(), "predict called before fit");
        let z = self.scaler.transform(features);
        let margins = self.margins(&z);
        let max = margins.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = margins.iter().map(|&m| (m - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        let (label, e) = exps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite margins"))
            .expect("at least one class");
        Prediction { label, confidence: e / sum }
    }

    fn name(&self) -> &'static str {
        "linear-svm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into(), "c".into()], 2);
        for i in 0..30 {
            let j = (i % 5) as f64 / 10.0;
            d.push(vec![0.0 + j, 0.0 - j], 0);
            d.push(vec![4.0 + j, 4.0 - j], 1);
            d.push(vec![8.0 + j, 8.0 - j], 2);
        }
        d
    }

    #[test]
    fn learns_separable_blobs() {
        let d = blobs();
        let mut svm = LinearSvm::new(SvmConfig::default());
        svm.fit(&d, &mut StdRng::seed_from_u64(1));
        let correct =
            d.samples().iter().filter(|s| svm.predict(&s.features).label == s.label).count();
        assert!(correct as f64 / d.len() as f64 > 0.95, "{correct}/{}", d.len());
    }

    #[test]
    fn margins_order_matches_blob_position() {
        let d = blobs();
        let mut svm = LinearSvm::new(SvmConfig::default());
        svm.fit(&d, &mut StdRng::seed_from_u64(2));
        // A point square in blob 1's territory: its margin must dominate.
        let z = svm.scaler.transform(&[4.0, 4.0]);
        let m = svm.margins(&z);
        assert!(m[1] > m[0] && m[1] > m[2], "margins {m:?}");
    }

    #[test]
    fn confidence_is_a_probability() {
        let d = blobs();
        let mut svm = LinearSvm::new(SvmConfig::default());
        svm.fit(&d, &mut StdRng::seed_from_u64(3));
        let p = svm.predict(&[0.0, 0.0]);
        assert!(p.confidence > 1.0 / 3.0 && p.confidence <= 1.0);
    }

    #[test]
    fn deterministic_under_a_fixed_seed() {
        let d = blobs();
        let mut s1 = LinearSvm::new(SvmConfig::default());
        let mut s2 = LinearSvm::new(SvmConfig::default());
        s1.fit(&d, &mut StdRng::seed_from_u64(7));
        s2.fit(&d, &mut StdRng::seed_from_u64(7));
        for s in d.samples() {
            assert_eq!(s1.predict(&s.features), s2.predict(&s.features));
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn non_positive_lambda_rejected() {
        let _ = LinearSvm::new(SvmConfig { lambda: 0.0, epochs: 10 });
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn zero_epochs_rejected() {
        let _ = LinearSvm::new(SvmConfig { lambda: 1e-3, epochs: 0 });
    }
}
