//! CART classification trees with Gini impurity and random-subspace
//! splits, grown without pruning — the tree-growing procedure random forest
//! requires (§VI: "Each node of a tree is split using the random subspace
//! method ... There is no pruning when growing a tree").

use crate::dataset::Dataset;
use crate::{Classifier, Prediction};
use rand::seq::index::sample as index_sample;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A trained CART tree (also usable standalone as the paper's
/// decision-tree baseline).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Number of candidate features examined at each split; `0` means all
    /// (plain CART).
    pub mtry: usize,
    /// Minimum samples required to attempt a split.
    pub min_split: usize,
    n_classes: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf {
        label: usize,
        purity: f64,
    },
}

impl DecisionTree {
    /// A plain CART tree (all features considered at each node).
    pub fn new() -> Self {
        DecisionTree {
            nodes: Vec::new(),
            mtry: 0,
            min_split: 2,
            n_classes: 0,
        }
    }

    /// A random-subspace tree examining `mtry` features per node.
    pub fn with_mtry(mtry: usize) -> Self {
        DecisionTree {
            nodes: Vec::new(),
            mtry,
            min_split: 2,
            n_classes: 0,
        }
    }

    /// Number of nodes in the trained tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn gini(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        1.0 - counts
            .iter()
            .map(|&c| (c as f64 / t) * (c as f64 / t))
            .sum::<f64>()
    }

    /// Finds the best (feature, threshold) split for `rows` among the
    /// sampled candidate features. Returns `None` when no split improves.
    fn best_split(
        &self,
        data: &Dataset,
        rows: &[usize],
        rng: &mut dyn RngCore,
    ) -> Option<(usize, f64, f64)> {
        let n_features = data.n_features();
        let candidates: Vec<usize> = if self.mtry == 0 || self.mtry >= n_features {
            (0..n_features).collect()
        } else {
            index_sample(rng, n_features, self.mtry).into_vec()
        };

        let parent_counts = class_counts(data, rows, self.n_classes);
        let parent_gini = Self::gini(&parent_counts, rows.len());
        let mut best: Option<(usize, f64, f64)> = None;

        for &f in &candidates {
            // Sort row indices by the candidate feature and scan split
            // points between distinct values.
            let mut order: Vec<usize> = rows.to_vec();
            order.sort_by(|&a, &b| {
                data.samples()[a].features[f]
                    .partial_cmp(&data.samples()[b].features[f])
                    .expect("finite features")
            });
            let mut left_counts = vec![0usize; self.n_classes];
            let mut right_counts = parent_counts.clone();
            let n = order.len();
            for i in 0..n - 1 {
                let s = &data.samples()[order[i]];
                left_counts[s.label] += 1;
                right_counts[s.label] -= 1;
                let v = s.features[f];
                let v_next = data.samples()[order[i + 1]].features[f];
                if v == v_next {
                    continue;
                }
                let threshold = (v + v_next) / 2.0;
                let nl = i + 1;
                let nr = n - nl;
                let g = (nl as f64 * Self::gini(&left_counts, nl)
                    + nr as f64 * Self::gini(&right_counts, nr))
                    / n as f64;
                let gain = parent_gini - g;
                if gain > 1e-12 {
                    match best {
                        Some((_, _, best_gain)) if best_gain >= gain => {}
                        _ => best = Some((f, threshold, gain)),
                    }
                }
            }
        }
        best
    }

    fn grow(&mut self, data: &Dataset, rows: Vec<usize>, rng: &mut dyn RngCore) -> usize {
        let counts = class_counts(data, &rows, self.n_classes);
        let total = rows.len();
        let (majority, majority_count) = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, &c)| (i, c))
            .unwrap();
        let pure = majority_count == total;
        if pure || total < self.min_split {
            let node = Node::Leaf {
                label: majority,
                purity: majority_count as f64 / total as f64,
            };
            self.nodes.push(node);
            return self.nodes.len() - 1;
        }
        match self.best_split(data, &rows, rng) {
            None => {
                let node = Node::Leaf {
                    label: majority,
                    purity: majority_count as f64 / total as f64,
                };
                self.nodes.push(node);
                self.nodes.len() - 1
            }
            Some((feature, threshold, _gain)) => {
                let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
                    .into_iter()
                    .partition(|&r| data.samples()[r].features[feature] <= threshold);
                // Reserve a slot for this split node, then grow children.
                let idx = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    label: majority,
                    purity: 0.0,
                }); // placeholder
                let left = self.grow(data, left_rows, rng);
                let right = self.grow(data, right_rows, rng);
                self.nodes[idx] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                idx
            }
        }
    }

    /// Fits the tree to the given sample indices of `data`.
    pub fn fit_rows(&mut self, data: &Dataset, rows: Vec<usize>, rng: &mut dyn RngCore) {
        assert!(!rows.is_empty(), "cannot grow a tree from zero samples");
        self.nodes.clear();
        self.n_classes = data.n_classes();
        self.grow(data, rows, rng);
    }
}

fn class_counts(data: &Dataset, rows: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &r in rows {
        counts[data.samples()[r].label] += 1;
    }
    counts
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset, rng: &mut dyn RngCore) {
        self.fit_rows(data, (0..data.len()).collect(), rng);
    }

    fn predict(&self, features: &[f64]) -> Prediction {
        assert!(!self.nodes.is_empty(), "predict called before fit");
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { label, purity } => {
                    return Prediction {
                        label: *label,
                        confidence: *purity,
                    };
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable() -> Dataset {
        let mut d = Dataset::new(vec!["lo".into(), "hi".into()], 2);
        for i in 0..50 {
            d.push(vec![i as f64 / 50.0, 0.3], 0);
            d.push(vec![1.0 + i as f64 / 50.0, 0.7], 1);
        }
        d
    }

    #[test]
    fn learns_a_separable_problem_perfectly() {
        let d = separable();
        let mut t = DecisionTree::new();
        let mut rng = StdRng::seed_from_u64(1);
        t.fit(&d, &mut rng);
        for s in d.samples() {
            assert_eq!(t.predict(&s.features).label, s.label);
        }
    }

    #[test]
    fn pure_leaves_have_full_confidence() {
        let d = separable();
        let mut t = DecisionTree::new();
        let mut rng = StdRng::seed_from_u64(1);
        t.fit(&d, &mut rng);
        let p = t.predict(&[0.1, 0.3]);
        assert_eq!(p.confidence, 1.0);
    }

    #[test]
    fn gini_is_zero_for_pure_and_max_for_even() {
        assert_eq!(DecisionTree::gini(&[10, 0], 10), 0.0);
        assert!((DecisionTree::gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn handles_constant_features() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 2);
        for i in 0..10 {
            d.push(vec![1.0, i as f64], i % 2);
        }
        let mut t = DecisionTree::new();
        let mut rng = StdRng::seed_from_u64(2);
        t.fit(&d, &mut rng);
        // Feature 0 is constant; the tree must split on feature 1 only.
        for s in d.samples() {
            assert_eq!(t.predict(&s.features).label, s.label);
        }
    }

    #[test]
    fn unsplittable_data_yields_majority_leaf() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()], 1);
        d.push(vec![1.0], 0);
        d.push(vec![1.0], 0);
        d.push(vec![1.0], 1);
        let mut t = DecisionTree::new();
        let mut rng = StdRng::seed_from_u64(3);
        t.fit(&d, &mut rng);
        assert_eq!(t.node_count(), 1);
        let p = t.predict(&[1.0]);
        assert_eq!(p.label, 0);
        assert!((p.confidence - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let t = DecisionTree::new();
        let _ = t.predict(&[0.0]);
    }

    #[test]
    fn mtry_one_still_learns() {
        let d = separable();
        let mut t = DecisionTree::with_mtry(1);
        let mut rng = StdRng::seed_from_u64(4);
        t.fit(&d, &mut rng);
        let correct = d
            .samples()
            .iter()
            .filter(|s| t.predict(&s.features).label == s.label)
            .count();
        assert!(correct as f64 / d.len() as f64 > 0.9);
    }
}
