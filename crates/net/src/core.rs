//! Sans-IO protocol cores: the ladder client and the emulated server.
//!
//! Both ends of the probe wire protocol live here as pure state
//! machines — frames in, frames out, no sockets, no clocks. The reactor
//! drives [`LadderCore`] over real sockets;
//! [`EmulatedServer`](crate::emulated::EmulatedServer) drives
//! [`ServerCore`] over loopback listeners; the in-memory tests drive
//! both against each other and pin the result to
//! [`Prober::gather`](caai_core::prober::Prober::gather) byte for
//! byte. One implementation of the §IV ladder logic, three harnesses.
//!
//! [`LadderCore`] is a line-faithful transliteration of
//! `Prober::gather_trace_inner` over a clean path (no loss, duplication
//! or reordering — the loopback wire *is* clean): same round
//! accounting, same stall early-exit, same F-RTO duplicate ACK, same
//! ladder descent rules. Where the simulator indexes arithmetic that a
//! hostile peer could overflow (sequence numbers arrive off the wire
//! here), the mirror saturates instead; on honest inputs the branches
//! are identical.
//!
//! [`ServerCore`] mirrors `ServerUnderTest` with one deliberate
//! difference: every connection gets a *fresh* ssthresh cache instead
//! of a shared one. The prober's `inter_connection_wait` (630 s)
//! strictly exceeds the cache TTL (600 s), so the simulator's shared
//! cache is always expired by the next connection anyway — a fresh
//! cache reproduces the default configuration exactly while keeping
//! emulated connections independent (they may interleave on one
//! listener).

use caai_congestion::AlgorithmId;
use caai_core::{GatherOutcome, InvalidReason, ProberConfig, TracePair, WindowTrace};
use caai_netem::{EnvironmentId, Phase, RttSchedule};
use caai_tcpsim::{AckPacket, ServerConfig, SsthreshCache, TcpServer};
use caai_webmodel::WebServer;
use std::fmt;

use crate::frame::{ClientFrame, ServerFrame, MAX_BURST_SEQS};

/// A peer violated the probe protocol (frame out of state, clock moving
/// backwards, absurd field values). The connection is unusable after
/// one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// What the peer did wrong.
    pub reason: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for ProtocolError {}

fn violation(reason: impl Into<String>) -> ProtocolError {
    ProtocolError {
        reason: reason.into(),
    }
}

/// Enforces the monotone virtual clock, advancing `last` on success.
fn clock(last: &mut f64, now: f64, what: &str) -> Result<f64, ProtocolError> {
    if now < *last {
        return Err(violation(format!(
            "{what} moved the virtual clock backwards ({now} < {last})"
        )));
    }
    *last = now;
    Ok(now)
}

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

/// Everything the emulated server side needs to impersonate one web
/// server: the mirror of `ServerUnderTest`'s construction.
#[derive(Debug, Clone)]
pub struct ServerProfile {
    /// The congestion control algorithm under test.
    pub algorithm: AlgorithmId,
    /// Base sender configuration; `mss` is overridden per connection by
    /// the MSS negotiation.
    pub config: ServerConfig,
    /// Data budget in bytes per connection (page size × honoured
    /// pipelined requests); converted to packets at the granted MSS.
    pub budget_bytes: u64,
    /// Smallest MSS the server will grant (Table II).
    pub min_mss: u32,
}

impl ServerProfile {
    /// An ideal lab server: unlimited data, no quirks, no F-RTO — the
    /// paper's testbed configuration (§VII-A).
    pub fn ideal(algorithm: AlgorithmId) -> Self {
        ServerProfile {
            algorithm,
            config: ServerConfig::ideal(),
            budget_bytes: u64::MAX / 4,
            min_mss: 1,
        }
    }

    /// Impersonates a synthetic census server (same construction as
    /// `ServerUnderTest::from_web_server`).
    pub fn from_web_server(server: &WebServer) -> Self {
        let honoured = server
            .requests
            .honoured(caai_webmodel::http::CAAI_PIPELINE_DEPTH);
        ServerProfile {
            algorithm: server.effective_algorithm(),
            config: server.server_config(100),
            budget_bytes: server.pages.connection_budget_bytes(honoured),
            min_mss: server.mss_policy.min_mss,
        }
    }

    /// The MSS granted when the prober proposes `proposed`.
    pub fn granted_mss(&self, proposed: u32) -> u32 {
        proposed.max(self.min_mss)
    }
}

/// What the server side wants done after handling one client frame.
#[derive(Debug, Default)]
pub struct Reply {
    /// Frames to write back, in order.
    pub frames: Vec<ServerFrame>,
    /// Close the connection after writing them.
    pub close: bool,
}

enum ServerState {
    AwaitHello,
    Open {
        conn: Box<TcpServer>,
        server_cum: u64,
    },
    Closed,
}

/// Sanity cap on `RtoWait::max_waits`: the ladder uses 2, anything past
/// this is a hostile frame trying to spin the RTO loop.
const MAX_RTO_WAITS_CAP: u32 = 1024;

/// The emulated server's protocol state machine: one instance per
/// accepted connection.
pub struct ServerCore {
    profile: ServerProfile,
    state: ServerState,
    /// Last virtual clock seen; the client's clock must be monotone.
    last_now: f64,
}

impl ServerCore {
    /// A fresh connection impersonating `profile`.
    pub fn new(profile: ServerProfile) -> Self {
        ServerCore {
            profile,
            state: ServerState::AwaitHello,
            last_now: f64::NEG_INFINITY,
        }
    }

    /// Handles one decoded client frame.
    pub fn on_frame(&mut self, frame: &ClientFrame) -> Result<Reply, ProtocolError> {
        match (&mut self.state, frame) {
            (ServerState::AwaitHello, ClientFrame::Hello { proposed_mss, now }) => {
                let now = clock(&mut self.last_now, *now, "Hello")?;
                let granted = self.profile.granted_mss(*proposed_mss);
                let config = ServerConfig {
                    mss: granted,
                    ..self.profile.config
                };
                let budget = (self.profile.budget_bytes / u64::from(granted.max(1))).max(1);
                // Fresh cache per connection: see the module docs for why
                // this matches the simulator's expired shared cache.
                let cache = SsthreshCache::new();
                let conn = TcpServer::connect(self.profile.algorithm, config, budget, &cache, now);
                self.state = ServerState::Open {
                    conn: Box::new(conn),
                    server_cum: 0,
                };
                Ok(Reply {
                    frames: vec![ServerFrame::Welcome {
                        granted_mss: granted,
                    }],
                    close: false,
                })
            }
            (ServerState::Open { conn, .. }, ClientFrame::Xmit { now, horizon }) => {
                if *horizon < *now {
                    return Err(violation(format!(
                        "Xmit horizon {horizon} precedes its clock {now}"
                    )));
                }
                let now = clock(&mut self.last_now, *now, "Xmit")?;
                let segs = conn.transmit(now);
                if segs.is_empty() {
                    if conn.finished() {
                        self.state = ServerState::Closed;
                        return Ok(Reply {
                            frames: vec![ServerFrame::Burst {
                                done: true,
                                seqs: vec![],
                            }],
                            close: true,
                        });
                    }
                    // All ACKs of the previous round were lost from the
                    // server's point of view: fire its own RTO when the
                    // deadline falls inside the round.
                    if let Some(deadline) = conn.rto_deadline() {
                        if deadline <= *horizon {
                            conn.fire_rto(deadline.max(now));
                        }
                    }
                    return Ok(Reply {
                        frames: vec![ServerFrame::Burst {
                            done: false,
                            seqs: vec![],
                        }],
                        close: false,
                    });
                }
                debug_assert!(
                    segs.len() <= MAX_BURST_SEQS,
                    "window beyond any real ladder"
                );
                Ok(Reply {
                    frames: vec![ServerFrame::Burst {
                        done: false,
                        seqs: segs.iter().map(|s| s.seq).collect(),
                    }],
                    close: false,
                })
            }
            (ServerState::Open { conn, server_cum }, ClientFrame::Ack { now, cum_ack, rtt }) => {
                let now = clock(&mut self.last_now, *now, "Ack")?;
                // Mirrors the prober-side `deliver_ack` (no defense): a
                // zero-RTT ACK is the F-RTO counter-measure duplicate and
                // always goes through; a cumulative ACK only counts when
                // it advances.
                if *rtt == 0.0 {
                    conn.on_ack(now, AckPacket::duplicate(*cum_ack));
                } else if *cum_ack > *server_cum {
                    *server_cum = *cum_ack;
                    conn.on_ack(
                        now,
                        AckPacket {
                            cum_ack: *cum_ack,
                            rtt: *rtt,
                        },
                    );
                }
                Ok(Reply::default())
            }
            (ServerState::Open { conn, .. }, ClientFrame::RtoWait { now, max_waits }) => {
                if *max_waits > MAX_RTO_WAITS_CAP {
                    return Err(violation(format!(
                        "RtoWait max_waits {max_waits} exceeds the cap of {MAX_RTO_WAITS_CAP}"
                    )));
                }
                let mut t = clock(&mut self.last_now, *now, "RtoWait")?;
                let mut responded = false;
                for _ in 0..=*max_waits {
                    let Some(deadline) = conn.rto_deadline() else {
                        break;
                    };
                    t = t.max(deadline);
                    if conn.fire_rto(t) {
                        responded = true;
                        break;
                    }
                }
                self.last_now = t;
                Ok(Reply {
                    frames: vec![ServerFrame::RtoResult { responded, now: t }],
                    close: false,
                })
            }
            (ServerState::AwaitHello, f) => Err(violation(format!("{f:?} before Hello"))),
            (ServerState::Open { .. }, ClientFrame::Hello { .. }) => {
                Err(violation("second Hello on an open connection"))
            }
            (ServerState::Closed, f) => Err(violation(format!("{f:?} after close"))),
        }
    }
}

// ---------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------

/// What the transport driving a [`LadderCore`] must do next.
#[derive(Debug, PartialEq)]
pub enum Step {
    /// Open a (new) connection to the target, then call
    /// [`LadderCore::on_connected`].
    Connect,
    /// Write `frames`; then either close the connection and call
    /// [`LadderCore::on_closed`] (`close_after`), or wait for the next
    /// server frame and feed it to [`LadderCore::on_frame`].
    Send {
        /// Virtual seconds this round spans — the transport may stretch
        /// this into real time (`--pace`) to approximate live RTT
        /// pacing; zero means proceed immediately. Correctness never
        /// depends on it: the virtual clock rides in the frames.
        pace: f64,
        /// Frames to write, in order.
        frames: Vec<ClientFrame>,
        /// Close after writing instead of awaiting a reply.
        close_after: bool,
    },
    /// The ladder walk is complete.
    Done(Box<GatherOutcome>),
}

/// One finished rung attempt, for observability replay: the fields of
/// `caai-obs`'s `RungAttemptEnded`, recorded because the core itself
/// cannot hold a subscriber (it crosses the reactor thread).
#[derive(Debug, Clone)]
pub struct RungRecord {
    /// Which emulated environment.
    pub env: EnvironmentId,
    /// The `w_max` rung.
    pub wmax: u32,
    /// Rounds gathered (pre + post).
    pub rounds: u32,
    /// Whether the attempt produced a valid trace.
    pub valid: bool,
    /// Whether the Fig. 13 stall early-exit fired.
    pub stalled: bool,
    /// Why the trace is invalid, when it is.
    pub invalid_reason: Option<&'static str>,
}

enum AttemptPhase {
    AwaitWelcome,
    Pre,
    AwaitRto,
    Post,
}

struct Attempt {
    env: EnvironmentId,
    schedule: RttSchedule,
    wmax: u32,
    trace: WindowTrace,
    phase: AttemptPhase,
    prev_seqmax: i64,
    prober_cum: u64,
    best_w: u32,
    stalled: u32,
    stall_exited: bool,
    /// Current 1-based round whose `Xmit` is outstanding.
    round: u32,
    post_round: u32,
    first_post_round: bool,
}

impl Attempt {
    fn new(env: EnvironmentId, wmax: u32) -> Self {
        Attempt {
            env,
            schedule: RttSchedule::new(env),
            wmax,
            trace: WindowTrace {
                env,
                wmax_threshold: wmax,
                mss: 0,
                pre: Vec::new(),
                post: Vec::new(),
                invalid: None,
            },
            phase: AttemptPhase::AwaitWelcome,
            prev_seqmax: -1,
            prober_cum: 0,
            best_w: 0,
            stalled: 0,
            stall_exited: false,
            round: 1,
            post_round: 1,
            first_post_round: true,
        }
    }

    /// §IV-D window measurement, saturating where the simulator can
    /// trust its own arithmetic but a wire peer cannot be trusted.
    fn measure(&mut self, seqs: &[u64]) -> u32 {
        let Some(seqmax) = seqs.iter().copied().max() else {
            return 0;
        };
        let seqmax = seqmax.min(i64::MAX as u64) as i64;
        let w = seqmax.saturating_sub(self.prev_seqmax).max(0);
        if seqmax > self.prev_seqmax {
            self.prev_seqmax = seqmax;
        }
        w.min(u32::MAX as i64) as u32
    }

    /// §IV-C cumulative ACKs "as if there is no packet loss".
    fn build_acks(&mut self, seqs: &[u64], now: f64, rtt: f64) -> Vec<ClientFrame> {
        let mut acks = Vec::with_capacity(seqs.len());
        for &seq in seqs {
            let cum = seq.saturating_add(1).max(self.prober_cum);
            if cum > self.prober_cum {
                self.prober_cum = cum;
                acks.push(ClientFrame::Ack {
                    now,
                    cum_ack: cum,
                    rtt,
                });
            }
        }
        acks
    }
}

/// The ladder walk of `Prober::gather` as a sans-IO state machine.
///
/// Drive it with the [`Step`]s it returns; feed it connection lifecycle
/// events and decoded server frames. [`abort`](LadderCore::abort)
/// reduces any transport failure to a [`GatherOutcome`] whose dominant
/// failure reason is [`InvalidReason::TransportAborted`].
pub struct LadderCore {
    config: ProberConfig,
    ladder_idx: usize,
    now: f64,
    trace_a: Option<WindowTrace>,
    failed: Vec<WindowTrace>,
    rungs: Vec<RungRecord>,
    attempt: Option<Attempt>,
    /// The attempt whose closing `Send` is in flight, awaiting
    /// [`on_closed`](LadderCore::on_closed).
    closing: Option<WindowTrace>,
    /// A server frame is expected (an un-asked-for frame is a protocol
    /// violation).
    awaiting: bool,
    done: bool,
}

impl LadderCore {
    /// A ladder walk with the given prober configuration.
    ///
    /// # Panics
    ///
    /// If the configuration carries a traffic-analysis defense: defenses
    /// transform *simulated* wire bursts and have no real-socket
    /// equivalent here.
    pub fn new(config: ProberConfig) -> Self {
        assert!(
            config.defense.is_none(),
            "the network transport cannot emulate a server-side defense"
        );
        LadderCore {
            config,
            ladder_idx: 0,
            now: 0.0,
            trace_a: None,
            failed: Vec::new(),
            rungs: Vec::new(),
            attempt: None,
            closing: None,
            awaiting: false,
            done: false,
        }
    }

    /// Starts the walk: the first [`Step`] to execute.
    pub fn start(&mut self) -> Step {
        match self.config.wmax_ladder.first() {
            Some(&wmax) => {
                self.attempt = Some(Attempt::new(EnvironmentId::A, wmax));
                Step::Connect
            }
            None => self.finish(),
        }
    }

    /// Rung attempt records for observability replay (one per finished
    /// attempt, in order).
    pub fn rungs(&self) -> &[RungRecord] {
        &self.rungs
    }

    /// The connection requested by [`Step::Connect`] is established.
    pub fn on_connected(&mut self) -> Step {
        debug_assert!(self.attempt.is_some() && !self.awaiting);
        self.awaiting = true;
        Step::Send {
            pace: 0.0,
            frames: vec![ClientFrame::Hello {
                proposed_mss: self.config.proposed_mss,
                now: self.now,
            }],
            close_after: false,
        }
    }

    /// The close requested by a `close_after` [`Step::Send`] completed.
    pub fn on_closed(&mut self) -> Step {
        let trace = self
            .closing
            .take()
            .expect("on_closed without a closing attempt");
        // The inter-connection wait defeats ssthresh caching (§IV-C); it
        // advances the *virtual* clock only — the transport never sleeps
        // 630 real seconds (see `Step::Send::pace`).
        self.now += self.config.inter_connection_wait;
        let wmax = trace.wmax_threshold;
        match trace.env {
            EnvironmentId::A => {
                if trace.is_valid() {
                    self.trace_a = Some(trace);
                    self.attempt = Some(Attempt::new(EnvironmentId::B, wmax));
                    Step::Connect
                } else {
                    let descend = trace.invalid == Some(InvalidReason::NeverExceededThreshold);
                    self.failed.push(trace);
                    if descend {
                        self.descend()
                    } else {
                        self.finish()
                    }
                }
            }
            EnvironmentId::B => {
                if trace.usable_for_classification() {
                    let env_a = self.trace_a.take().expect("env B ran without an A trace");
                    self.done = true;
                    let outcome = GatherOutcome {
                        pair: Some(TracePair {
                            env_a,
                            env_b: trace,
                        }),
                        failed_attempts: std::mem::take(&mut self.failed),
                        defense_overhead: None,
                    };
                    Step::Done(Box::new(outcome))
                } else {
                    let descend = trace.invalid == Some(InvalidReason::NeverExceededThreshold);
                    self.failed
                        .push(self.trace_a.take().expect("env B ran without an A trace"));
                    self.failed.push(trace);
                    if descend {
                        self.descend()
                    } else {
                        self.finish()
                    }
                }
            }
        }
    }

    fn descend(&mut self) -> Step {
        self.ladder_idx += 1;
        match self.config.wmax_ladder.get(self.ladder_idx) {
            Some(&wmax) => {
                self.attempt = Some(Attempt::new(EnvironmentId::A, wmax));
                Step::Connect
            }
            None => self.finish(),
        }
    }

    fn finish(&mut self) -> Step {
        self.done = true;
        Step::Done(Box::new(GatherOutcome {
            pair: None,
            failed_attempts: std::mem::take(&mut self.failed),
            defense_overhead: None,
        }))
    }

    /// Ends the current attempt: records its rung, stashes the trace for
    /// [`on_closed`](Self::on_closed), and emits the closing `Send`.
    fn end_attempt(
        &mut self,
        invalid: Option<InvalidReason>,
        frames: Vec<ClientFrame>,
        pace: f64,
    ) -> Step {
        let mut attempt = self.attempt.take().expect("no attempt to end");
        attempt.trace.invalid = invalid;
        self.awaiting = false;
        self.rungs.push(RungRecord {
            env: attempt.env,
            wmax: attempt.wmax,
            rounds: (attempt.trace.pre.len() + attempt.trace.post.len()) as u32,
            valid: attempt.trace.is_valid(),
            stalled: attempt.stall_exited,
            invalid_reason: attempt.trace.invalid.map(InvalidReason::name),
        });
        self.closing = Some(attempt.trace);
        Step::Send {
            pace,
            frames,
            close_after: true,
        }
    }

    /// The transport failed underneath the walk (connect refused, reset,
    /// IO timeout, decode error) and its retry budget is spent: reduce
    /// everything gathered so far to a terminal outcome.
    pub fn abort(&mut self) -> Step {
        if let Some(attempt) = self.attempt.take() {
            let mut trace = attempt.trace;
            trace.invalid = Some(InvalidReason::TransportAborted);
            self.rungs.push(RungRecord {
                env: attempt.env,
                wmax: attempt.wmax,
                rounds: (trace.pre.len() + trace.post.len()) as u32,
                valid: false,
                stalled: attempt.stall_exited,
                invalid_reason: Some(InvalidReason::name(InvalidReason::TransportAborted)),
            });
            self.failed.push(trace);
        }
        if let Some(trace) = self.closing.take() {
            // The attempt finished but its close was interrupted; the
            // gather is still dead, so the trace joins the failures.
            self.failed.push(trace);
        }
        if let Some(trace_a) = self.trace_a.take() {
            self.failed.push(trace_a);
        }
        self.awaiting = false;
        self.finish()
    }

    /// Whether the walk has produced its [`Step::Done`].
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Handles one decoded server frame.
    pub fn on_frame(&mut self, frame: &ServerFrame) -> Result<Step, ProtocolError> {
        if !self.awaiting || self.attempt.is_none() {
            return Err(violation(format!("unsolicited {frame:?}")));
        }
        let config = self.config.clone();
        let a = self.attempt.as_mut().expect("checked above");
        match (&a.phase, frame) {
            (AttemptPhase::AwaitWelcome, ServerFrame::Welcome { granted_mss }) => {
                a.trace.mss = *granted_mss;
                a.phase = AttemptPhase::Pre;
                a.round = 1;
                let now = self.now;
                let rtt = a.schedule.rtt(Phase::BeforeTimeout, 1);
                Ok(Step::Send {
                    pace: 0.0,
                    frames: vec![ClientFrame::Xmit {
                        now,
                        horizon: now + rtt,
                    }],
                    close_after: false,
                })
            }
            (AttemptPhase::Pre, ServerFrame::Burst { done, seqs }) => {
                let rtt = a.schedule.rtt(Phase::BeforeTimeout, a.round);
                if seqs.is_empty() {
                    if *done {
                        // The server ran out of page before the timeout
                        // could be emulated (§VII-B reason 1/2).
                        return Ok(self.end_attempt(
                            Some(InvalidReason::PageTooShort),
                            vec![],
                            0.0,
                        ));
                    }
                    a.trace.pre.push(0);
                    self.now += rtt;
                    a.round += 1;
                    if a.round > config.max_pre_rounds as u32 {
                        return Ok(self.end_attempt(
                            Some(InvalidReason::NeverExceededThreshold),
                            vec![],
                            rtt,
                        ));
                    }
                    let next_rtt = a.schedule.rtt(Phase::BeforeTimeout, a.round);
                    let now = self.now;
                    return Ok(Step::Send {
                        pace: rtt,
                        frames: vec![ClientFrame::Xmit {
                            now,
                            horizon: now + next_rtt,
                        }],
                        close_after: false,
                    });
                }
                let w = a.measure(seqs);
                a.trace.pre.push(w);
                if w > a.wmax {
                    // Crossed the threshold: withhold this round's ACKs
                    // and emulate the timeout. The virtual clock freezes
                    // exactly as in the simulator.
                    a.phase = AttemptPhase::AwaitRto;
                    let now = self.now;
                    return Ok(Step::Send {
                        pace: 0.0,
                        frames: vec![ClientFrame::RtoWait {
                            now,
                            max_waits: config.max_rto_waits,
                        }],
                        close_after: false,
                    });
                }
                self.now += rtt;
                let ack_now = self.now;
                let mut frames = a.build_acks(seqs, ack_now, rtt);
                // Fig. 13 stall early-exit, checked after the ACKs like
                // the simulator does.
                if w > a.best_w {
                    a.best_w = w;
                    a.stalled = 0;
                } else {
                    a.stalled += 1;
                    if config.stall_rounds > 0 && a.stalled >= config.stall_rounds {
                        a.stall_exited = true;
                        return Ok(self.end_attempt(
                            Some(InvalidReason::NeverExceededThreshold),
                            frames,
                            rtt,
                        ));
                    }
                }
                a.round += 1;
                if a.round > config.max_pre_rounds as u32 {
                    return Ok(self.end_attempt(
                        Some(InvalidReason::NeverExceededThreshold),
                        frames,
                        rtt,
                    ));
                }
                let next_rtt = a.schedule.rtt(Phase::BeforeTimeout, a.round);
                frames.push(ClientFrame::Xmit {
                    now: ack_now,
                    horizon: ack_now + next_rtt,
                });
                Ok(Step::Send {
                    pace: rtt,
                    frames,
                    close_after: false,
                })
            }
            (AttemptPhase::AwaitRto, ServerFrame::RtoResult { responded, now }) => {
                if !now.is_finite() || *now < self.now {
                    return Err(violation(format!(
                        "RtoResult clock {now} precedes the walk's clock {}",
                        self.now
                    )));
                }
                self.now = *now;
                if !*responded {
                    return Ok(self.end_attempt(
                        Some(InvalidReason::NoTimeoutResponse),
                        vec![],
                        0.0,
                    ));
                }
                a.phase = AttemptPhase::Post;
                a.prev_seqmax = i64::MIN;
                a.post_round = 1;
                a.first_post_round = true;
                let rtt = a.schedule.rtt(Phase::AfterTimeout, 1);
                let now = self.now;
                Ok(Step::Send {
                    pace: 0.0,
                    frames: vec![ClientFrame::Xmit {
                        now,
                        horizon: now + rtt,
                    }],
                    close_after: false,
                })
            }
            (AttemptPhase::Post, ServerFrame::Burst { done, seqs }) => {
                let rtt = a.schedule.rtt(Phase::AfterTimeout, a.post_round);
                if seqs.is_empty() {
                    if *done {
                        return Ok(self.end_attempt(
                            Some(InvalidReason::RecoveryTooShort),
                            vec![],
                            0.0,
                        ));
                    }
                    a.trace.post.push(0);
                    self.now += rtt;
                    a.post_round += 1;
                    if a.trace.post.len() >= config.post_timeout_rounds {
                        return Ok(self.end_attempt(None, vec![], rtt));
                    }
                    let next_rtt = a.schedule.rtt(Phase::AfterTimeout, a.post_round);
                    let now = self.now;
                    return Ok(Step::Send {
                        pace: rtt,
                        frames: vec![ClientFrame::Xmit {
                            now,
                            horizon: now + next_rtt,
                        }],
                        close_after: false,
                    });
                }
                if a.prev_seqmax == i64::MIN {
                    // Re-anchor at the first retransmission: the window
                    // restarts from the lowest outstanding sequence.
                    if let Some(first) = seqs.iter().copied().min() {
                        a.prev_seqmax = (first.min(i64::MAX as u64) as i64).saturating_sub(1);
                    }
                }
                let w = a.measure(seqs);
                a.trace.post.push(w);
                self.now += rtt;
                let ack_now = self.now;
                let mut frames = Vec::new();
                if a.first_post_round && config.frto_countermeasure {
                    // §IV-C: one duplicate ACK aborts F-RTO and forces
                    // conventional timeout recovery.
                    frames.push(ClientFrame::Ack {
                        now: ack_now,
                        cum_ack: a.prober_cum,
                        rtt: 0.0,
                    });
                }
                a.first_post_round = false;
                frames.extend(a.build_acks(seqs, ack_now, rtt));
                a.post_round += 1;
                if a.trace.post.len() >= config.post_timeout_rounds {
                    return Ok(self.end_attempt(None, frames, rtt));
                }
                let next_rtt = a.schedule.rtt(Phase::AfterTimeout, a.post_round);
                frames.push(ClientFrame::Xmit {
                    now: ack_now,
                    horizon: ack_now + next_rtt,
                });
                Ok(Step::Send {
                    pace: rtt,
                    frames,
                    close_after: false,
                })
            }
            (_, f) => Err(violation(format!("{f:?} out of phase"))),
        }
    }
}
