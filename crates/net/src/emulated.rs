//! In-repo emulated web servers: real sockets, simulated TCP stacks.
//!
//! Tests (and the CI loopback-census smoke) must never touch the real
//! network, so the "population" a live census probes is this: a
//! loopback listener per server, each accepted connection replaying a
//! [`ServerCore`] — the same tcpsim algorithms the simulator runs —
//! over the wire protocol. Because the protocol carries virtual time,
//! the verdicts a census gathers against these servers are the
//! simulator's verdicts, whatever the real-time pacing.
//!
//! The server side is deliberately boring: one blocking accept thread,
//! one blocking thread per connection. The interesting concurrency
//! lives in the reactor under test, not in its test double. Failure
//! modes for the hardening tests ride on [`Behavior`]: a server that
//! accepts and then stalls (driving the client's IO timeout), and one
//! that resets mid-ladder (driving the RST path).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::core::{Reply, ServerCore, ServerProfile};
use crate::frame::{ClientFrame, FrameDecoder, Wire};
use crate::sys::set_linger_reset;
use crate::targets::Target;

/// How an emulated server treats its clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// Answer the protocol faithfully.
    Normal,
    /// Accept the connection, then never write a byte (a stalled peer:
    /// the client's IO timeout must fire).
    StallAfterAccept,
    /// Answer `n` transmission rounds, then abort the connection with an
    /// RST (`SO_LINGER` zero + close).
    RstAfterBursts(u32),
}

/// One emulated web server listening on loopback.
pub struct EmulatedServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl EmulatedServer {
    /// Binds `127.0.0.1:0` and starts serving `profile` with `behavior`.
    pub fn spawn(profile: ServerProfile, behavior: Behavior) -> std::io::Result<EmulatedServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let profile = profile.clone();
                workers.push(std::thread::spawn(move || {
                    serve_connection(stream, profile, behavior);
                }));
                workers.retain(|w| !w.is_finished());
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(EmulatedServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The address as a census [`Target`].
    pub fn target(&self) -> Target {
        Target {
            host: self.addr.ip().to_string(),
            port: self.addr.port(),
        }
    }

    /// The address as a `host:port` target-list line.
    pub fn target_line(&self) -> String {
        self.addr.to_string()
    }
}

impl Drop for EmulatedServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Kick the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Upper bound a stalled or hostile client can hold a server thread.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

fn serve_connection(mut stream: TcpStream, profile: ServerProfile, behavior: Behavior) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    if behavior == Behavior::StallAfterAccept {
        // Read (and discard) whatever arrives, answer nothing: the
        // client must conclude the peer is dead via its own timeout.
        let mut sink = [0u8; 4096];
        while let Ok(n) = stream.read(&mut sink) {
            if n == 0 {
                return;
            }
        }
        return;
    }
    let rst_after = match behavior {
        Behavior::RstAfterBursts(n) => Some(n),
        _ => None,
    };
    let mut core = ServerCore::new(profile);
    let mut decoder = FrameDecoder::new();
    let mut bursts_answered: u32 = 0;
    let mut buf = [0u8; 16 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => return, // client closed; connection complete
            Ok(n) => n,
            Err(_) => return,
        };
        decoder.push(&buf[..n]);
        loop {
            let frame: ClientFrame = match decoder.next() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => return, // hostile bytes: drop the connection
            };
            let is_xmit = matches!(frame, ClientFrame::Xmit { .. });
            let Reply { frames, close } = match core.on_frame(&frame) {
                Ok(reply) => reply,
                Err(_) => return, // protocol violation: drop
            };
            let mut out = Vec::new();
            for f in &frames {
                f.encode_into(&mut out);
            }
            if !out.is_empty() && stream.write_all(&out).is_err() {
                return;
            }
            if is_xmit {
                bursts_answered += 1;
                if let Some(limit) = rst_after {
                    if bursts_answered >= limit {
                        // Abortive close: RST instead of FIN.
                        let _ = set_linger_reset(stream.as_raw_fd());
                        return;
                    }
                }
            }
            if close {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ServerFrame;
    use caai_congestion::AlgorithmId;

    fn handshake(stream: &mut TcpStream) -> ServerFrame {
        let hello = ClientFrame::Hello {
            proposed_mss: 100,
            now: 0.0,
        };
        let mut bytes = Vec::new();
        hello.encode_into(&mut bytes);
        stream.write_all(&bytes).unwrap();
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 1024];
        loop {
            let n = stream.read(&mut buf).unwrap();
            assert!(n > 0, "server closed during handshake");
            decoder.push(&buf[..n]);
            if let Some(frame) = decoder.next::<ServerFrame>().unwrap() {
                return frame;
            }
        }
    }

    #[test]
    fn emulated_server_answers_the_handshake() {
        let server =
            EmulatedServer::spawn(ServerProfile::ideal(AlgorithmId::Reno), Behavior::Normal)
                .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let frame = handshake(&mut stream);
        assert_eq!(frame, ServerFrame::Welcome { granted_mss: 100 });
    }

    #[test]
    fn stalling_server_accepts_but_never_answers() {
        let server = EmulatedServer::spawn(
            ServerProfile::ideal(AlgorithmId::CubicV1),
            Behavior::StallAfterAccept,
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let hello = ClientFrame::Hello {
            proposed_mss: 100,
            now: 0.0,
        };
        let mut bytes = Vec::new();
        hello.encode_into(&mut bytes);
        stream.write_all(&bytes).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(300)))
            .unwrap();
        let mut buf = [0u8; 16];
        assert!(
            stream.read(&mut buf).is_err(),
            "a stalling server must answer nothing"
        );
    }

    #[test]
    fn hostile_bytes_drop_the_connection() {
        let server =
            EmulatedServer::spawn(ServerProfile::ideal(AlgorithmId::Reno), Behavior::Normal)
                .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(&[0xff; 64]).unwrap();
        let mut buf = [0u8; 16];
        // The server drops; read returns 0 (or a reset error).
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            other => panic!("expected drop, got {other:?}"),
        }
    }
}
