//! The probe wire protocol: virtual-time frames over TCP.
//!
//! CAAI's ladder is defined over *emulated* time — the prober schedules
//! ACKs so the server experiences the RTT the environment prescribes.
//! The loopback transport keeps that property by carrying the virtual
//! clock on the wire: every client frame states `now`, the server's TCP
//! simulation advances to exactly that instant, and the exchange is a
//! lockstep replay of `Prober::gather` regardless of real-socket pacing.
//! That is what makes live-socket verdicts agree with the simulator's
//! by construction, and what keeps a loopback census deterministic.
//!
//! Framing: a `u32` little-endian payload length, then the payload —
//! one tag byte and fixed little-endian fields (`f64` via its bit
//! pattern). [`Burst`](ServerFrame::Burst) carries a `u32` count of
//! `u64` sequence numbers. Hostile bytes are the normal case for a
//! parser that listens on a socket, so decoding is strict
//! (length-capped, finite-float-checked, no trailing bytes) and every
//! rejection names what was wrong, in the skip-and-report diagnostic
//! style of the pcap readers.

use std::fmt;

/// Hard cap on one frame's payload, bytes. The largest legitimate frame
/// is a `Burst` of [`MAX_BURST_SEQS`] sequences (~512 KiB).
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Hard cap on sequences in one `Burst` — far above any real window
/// (the ladder tops out at `w_max` 512), small enough that a hostile
/// length can never balloon an allocation.
pub const MAX_BURST_SEQS: usize = 1 << 16;

/// A frame the prober (client) sends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClientFrame {
    /// Open the probe: propose an MSS, state the virtual clock.
    Hello {
        /// MSS proposed in the (emulated) SYN.
        proposed_mss: u32,
        /// Virtual time of connection establishment.
        now: f64,
    },
    /// Ask for one round's transmission burst.
    Xmit {
        /// Virtual time of the request.
        now: f64,
        /// End of the round (`now + rtt`): the server fires its own RTO
        /// first when the deadline falls inside the round and it has
        /// nothing to send (all ACKs of the previous round were lost).
        horizon: f64,
    },
    /// Deliver one cumulative ACK. `rtt == 0.0` marks the F-RTO
    /// counter-measure duplicate, exactly as in the simulator.
    Ack {
        /// Virtual time of delivery.
        now: f64,
        /// Cumulative acknowledgement, packets.
        cum_ack: u64,
        /// RTT sample carried by the ACK (`0.0` = duplicate).
        rtt: f64,
    },
    /// Withhold ACKs and wait out the server's retransmission timeout
    /// (§IV phase 2).
    RtoWait {
        /// Virtual time the wait starts.
        now: f64,
        /// Re-armed RTOs to wait out before giving up.
        max_waits: u32,
    },
}

/// A frame the emulated server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Handshake reply: the granted MSS.
    Welcome {
        /// MSS the server granted (proposal rounded up to its minimum).
        granted_mss: u32,
    },
    /// One round's burst of data-packet sequence numbers.
    Burst {
        /// The server finished its data and is closing (the wire form
        /// of a server-initiated FIN).
        done: bool,
        /// Packet-unit sequence numbers transmitted this round.
        seqs: Vec<u64>,
    },
    /// Outcome of an `RtoWait`: did the server's stack respond to the
    /// timeout, and at what virtual time.
    RtoResult {
        /// Whether a retransmission fired.
        responded: bool,
        /// Virtual time after the wait.
        now: f64,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_XMIT: u8 = 0x02;
const TAG_ACK: u8 = 0x03;
const TAG_RTO_WAIT: u8 = 0x04;
const TAG_WELCOME: u8 = 0x81;
const TAG_BURST: u8 = 0x82;
const TAG_RTO_RESULT: u8 = 0x83;

/// Why a frame could not be decoded. The connection is dead after one of
/// these — framing offers no resynchronization point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What was wrong, named precisely.
    pub reason: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for DecodeError {}

fn bad(reason: impl Into<String>) -> DecodeError {
    DecodeError {
        reason: reason.into(),
    }
}

/// Anything that can be framed onto the probe wire.
pub trait Wire: Sized {
    /// Appends the frame's *payload* (tag + fields) to `out`.
    fn encode_payload(&self, out: &mut Vec<u8>);

    /// Decodes one payload (as cut out by the length prefix).
    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError>;

    /// Appends the length-prefixed frame to `out`.
    fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0; 4]);
        self.encode_payload(out);
        let len = (out.len() - start - 4) as u32;
        out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(bad(format!(
                "truncated payload: {what} needs {n} bytes, {} left",
                self.bytes.len() - self.at
            )));
        };
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// Virtual-time and RTT fields must be finite: a NaN/∞ clock from a
    /// hostile peer would poison every downstream comparison.
    fn f64(&mut self, what: &str) -> Result<f64, DecodeError> {
        let v = f64::from_bits(self.u64(what)?);
        if !v.is_finite() {
            return Err(bad(format!("non-finite {what}: {v}")));
        }
        Ok(v)
    }

    fn bool(&mut self, what: &str) -> Result<bool, DecodeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(bad(format!("invalid {what} flag byte 0x{b:02x}"))),
        }
    }

    fn finish(self, tag: &str) -> Result<(), DecodeError> {
        if self.at != self.bytes.len() {
            return Err(bad(format!(
                "{} trailing bytes after {tag} frame",
                self.bytes.len() - self.at
            )));
        }
        Ok(())
    }
}

impl Wire for ClientFrame {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match *self {
            ClientFrame::Hello { proposed_mss, now } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&proposed_mss.to_le_bytes());
                out.extend_from_slice(&now.to_bits().to_le_bytes());
            }
            ClientFrame::Xmit { now, horizon } => {
                out.push(TAG_XMIT);
                out.extend_from_slice(&now.to_bits().to_le_bytes());
                out.extend_from_slice(&horizon.to_bits().to_le_bytes());
            }
            ClientFrame::Ack { now, cum_ack, rtt } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&now.to_bits().to_le_bytes());
                out.extend_from_slice(&cum_ack.to_le_bytes());
                out.extend_from_slice(&rtt.to_bits().to_le_bytes());
            }
            ClientFrame::RtoWait { now, max_waits } => {
                out.push(TAG_RTO_WAIT);
                out.extend_from_slice(&now.to_bits().to_le_bytes());
                out.extend_from_slice(&max_waits.to_le_bytes());
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let tag = r.u8("frame tag")?;
        let frame = match tag {
            TAG_HELLO => ClientFrame::Hello {
                proposed_mss: r.u32("proposed_mss")?,
                now: r.f64("hello clock")?,
            },
            TAG_XMIT => ClientFrame::Xmit {
                now: r.f64("xmit clock")?,
                horizon: r.f64("xmit horizon")?,
            },
            TAG_ACK => ClientFrame::Ack {
                now: r.f64("ack clock")?,
                cum_ack: r.u64("cum_ack")?,
                rtt: {
                    // rtt 0.0 is the duplicate marker, so it is exempt
                    // from the finite check only in being legal, not in
                    // being non-finite.
                    r.f64("ack rtt")?
                },
            },
            TAG_RTO_WAIT => ClientFrame::RtoWait {
                now: r.f64("rto-wait clock")?,
                max_waits: r.u32("max_waits")?,
            },
            t => return Err(bad(format!("unknown client frame tag 0x{t:02x}"))),
        };
        r.finish(match frame {
            ClientFrame::Hello { .. } => "Hello",
            ClientFrame::Xmit { .. } => "Xmit",
            ClientFrame::Ack { .. } => "Ack",
            ClientFrame::RtoWait { .. } => "RtoWait",
        })?;
        Ok(frame)
    }
}

impl Wire for ServerFrame {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            ServerFrame::Welcome { granted_mss } => {
                out.push(TAG_WELCOME);
                out.extend_from_slice(&granted_mss.to_le_bytes());
            }
            ServerFrame::Burst { done, seqs } => {
                out.push(TAG_BURST);
                out.push(u8::from(*done));
                out.extend_from_slice(&(seqs.len() as u32).to_le_bytes());
                for seq in seqs {
                    out.extend_from_slice(&seq.to_le_bytes());
                }
            }
            ServerFrame::RtoResult { responded, now } => {
                out.push(TAG_RTO_RESULT);
                out.push(u8::from(*responded));
                out.extend_from_slice(&now.to_bits().to_le_bytes());
            }
        }
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(payload);
        let tag = r.u8("frame tag")?;
        let frame = match tag {
            TAG_WELCOME => ServerFrame::Welcome {
                granted_mss: r.u32("granted_mss")?,
            },
            TAG_BURST => {
                let done = r.bool("burst done")?;
                let count = r.u32("burst count")? as usize;
                if count > MAX_BURST_SEQS {
                    return Err(bad(format!(
                        "burst count {count} exceeds the cap of {MAX_BURST_SEQS}"
                    )));
                }
                let mut seqs = Vec::with_capacity(count);
                for i in 0..count {
                    seqs.push(r.u64(&format!("burst seq {i}"))?);
                }
                ServerFrame::Burst { done, seqs }
            }
            TAG_RTO_RESULT => ServerFrame::RtoResult {
                responded: r.bool("rto responded")?,
                now: r.f64("rto clock")?,
            },
            t => return Err(bad(format!("unknown server frame tag 0x{t:02x}"))),
        };
        r.finish(match frame {
            ServerFrame::Welcome { .. } => "Welcome",
            ServerFrame::Burst { .. } => "Burst",
            ServerFrame::RtoResult { .. } => "RtoResult",
        })?;
        Ok(frame)
    }
}

/// Incremental frame decoder over a byte stream: push arbitrary chunks
/// in, pull whole frames out. One instance per direction per connection.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`, compacted lazily.
    read: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing so the buffer stays bounded by the
        // largest in-flight frame, not the whole connection history.
        if self.read > 0 {
            self.buf.drain(..self.read);
            self.read = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Pulls the next whole frame, `Ok(None)` when more bytes are
    /// needed. After an `Err` the stream is unrecoverable.
    ///
    /// Not an `Iterator`: the item type is chosen per call (`ClientFrame`
    /// on the server side, `ServerFrame` on the client side).
    #[allow(clippy::should_implement_trait)]
    pub fn next<F: Wire>(&mut self) -> Result<Option<F>, DecodeError> {
        let avail = &self.buf[self.read..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len == 0 {
            return Err(bad("zero-length frame"));
        }
        if len > MAX_FRAME_LEN {
            return Err(bad(format!(
                "frame length {len} exceeds the cap of {MAX_FRAME_LEN}"
            )));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let payload = &avail[4..4 + len];
        let frame = F::decode_payload(payload)?;
        self.read += 4 + len;
        Ok(Some(frame))
    }
}

/// Encodes one frame to a fresh byte vector.
pub fn encode<F: Wire>(frame: &F) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    frame.encode_into(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(frame: ClientFrame) {
        let bytes = encode(&frame);
        let mut dec = FrameDecoder::new();
        dec.push(&bytes);
        assert_eq!(dec.next::<ClientFrame>().unwrap(), Some(frame));
        assert_eq!(dec.next::<ClientFrame>().unwrap(), None);
    }

    #[test]
    fn client_frames_roundtrip() {
        roundtrip_client(ClientFrame::Hello {
            proposed_mss: 100,
            now: 0.0,
        });
        roundtrip_client(ClientFrame::Xmit {
            now: 1.5,
            horizon: 2.5,
        });
        roundtrip_client(ClientFrame::Ack {
            now: 3.0,
            cum_ack: 517,
            rtt: 1.0,
        });
        roundtrip_client(ClientFrame::RtoWait {
            now: 9.75,
            max_waits: 2,
        });
    }

    #[test]
    fn server_frames_roundtrip() {
        let frames = [
            ServerFrame::Welcome { granted_mss: 536 },
            ServerFrame::Burst {
                done: false,
                seqs: vec![0, 1, 2, 3],
            },
            ServerFrame::Burst {
                done: true,
                seqs: vec![],
            },
            ServerFrame::RtoResult {
                responded: true,
                now: 33.5,
            },
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode_into(&mut bytes);
        }
        // Feed byte by byte: the decoder must reassemble across splits.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in bytes {
            dec.push(&[b]);
            while let Some(f) = dec.next::<ServerFrame>().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn oversized_length_is_rejected_with_the_cap_named() {
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let err = dec.next::<ServerFrame>().unwrap_err();
        assert!(err.reason.contains("exceeds the cap"), "{err}");
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&0u32.to_le_bytes());
        assert!(dec.next::<ServerFrame>().is_err());
    }

    #[test]
    fn unknown_tag_and_trailing_bytes_are_named() {
        let err = ServerFrame::decode_payload(&[0x7f]).unwrap_err();
        assert!(
            err.reason.contains("unknown server frame tag 0x7f"),
            "{err}"
        );

        let mut payload = Vec::new();
        ServerFrame::Welcome { granted_mss: 1 }.encode_payload(&mut payload);
        payload.push(0xaa);
        let err = ServerFrame::decode_payload(&payload).unwrap_err();
        assert!(err.reason.contains("trailing bytes"), "{err}");
    }

    #[test]
    fn burst_count_must_match_payload() {
        let mut payload = vec![TAG_BURST, 0];
        payload.extend_from_slice(&3u32.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes()); // only one seq
        let err = ServerFrame::decode_payload(&payload).unwrap_err();
        assert!(err.reason.contains("truncated payload"), "{err}");
    }

    #[test]
    fn hostile_burst_count_cannot_balloon_allocation() {
        let mut payload = vec![TAG_BURST, 0];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = ServerFrame::decode_payload(&payload).unwrap_err();
        assert!(err.reason.contains("cap"), "{err}");
    }

    #[test]
    fn non_finite_clock_is_rejected() {
        let mut payload = vec![TAG_XMIT];
        payload.extend_from_slice(&f64::NAN.to_bits().to_le_bytes());
        payload.extend_from_slice(&1.0f64.to_bits().to_le_bytes());
        let err = ClientFrame::decode_payload(&payload).unwrap_err();
        assert!(err.reason.contains("non-finite"), "{err}");
    }

    #[test]
    fn decoder_compacts_its_buffer() {
        let mut dec = FrameDecoder::new();
        for _ in 0..1000 {
            dec.push(&encode(&ServerFrame::Welcome { granted_mss: 9 }));
            assert!(dec.next::<ServerFrame>().unwrap().is_some());
        }
        assert!(
            dec.buf.len() < 64,
            "buffer must not grow: {}",
            dec.buf.len()
        );
    }
}
