//! # caai-net
//!
//! The real-network probe transport: CAAI's §IV ladder over actual TCP
//! sockets, scheduled by a hand-rolled epoll/poll reactor. The
//! simulator answers "what would CAAI conclude about this algorithm?";
//! this crate answers "can the census walk real connections and reach
//! the same conclusions?" — the step from §VI's simulation study
//! toward the paper's Internet-wide measurement.
//!
//! The design splits protocol from plumbing:
//!
//! * [`frame`] — the virtual-time wire protocol. Every client frame
//!   carries the emulated clock, so the exchange is a lockstep replay
//!   of the simulator's schedule regardless of real pacing. Strict,
//!   diagnostic-rich decoding (hostile bytes are the normal case).
//! * [`core`] — sans-IO state machines for both ends:
//!   [`LadderCore`] (the prober's ladder walk, a line-faithful mirror
//!   of `Prober::gather` over a clean path) and [`ServerCore`] (the
//!   tcpsim-backed server). The in-memory equivalence tests drive
//!   them against each other and pin the outcome to the simulator's.
//! * [`sys`] / [`wheel`] / [`limiter`] — the reactor's raw material:
//!   direct syscall bindings (the build is offline; no `libc`, `mio`
//!   or `tokio`), a hashed timer wheel, and global + per-/24 token
//!   buckets.
//! * [`reactor`] — one thread, thousands of nonblocking sessions:
//!   connect/retry/backoff/timeout per target, paced sends, and
//!   reduction of every transport failure to `TransportAborted`.
//! * [`transport`] — [`NetTransport`], the `caai-core`
//!   `ProbeTransport` impl the engine runs a live census through.
//! * [`emulated`] — loopback [`EmulatedServer`]s replaying tcpsim
//!   algorithms over real sockets, so tests and CI never touch the
//!   real network.
//! * [`targets`] — `host:port` target-list ingestion with
//!   skip-and-report diagnostics.
//!
//! All `unsafe` lives in [`sys`].

#![warn(missing_docs)]

pub mod core;
pub mod emulated;
pub mod frame;
pub mod limiter;
pub mod reactor;
pub mod sys;
pub mod targets;
pub mod transport;
pub mod wheel;

pub use crate::core::{
    LadderCore, ProtocolError, Reply, RungRecord, ServerCore, ServerProfile, Step,
};
pub use emulated::{Behavior, EmulatedServer};
pub use frame::{ClientFrame, DecodeError, FrameDecoder, ServerFrame, Wire};
pub use limiter::RateLimiter;
pub use reactor::{NetConfig, SessionResult, SessionStats};
pub use targets::{parse_targets, read_targets, SkippedLine, Target, TargetList};
pub use transport::NetTransport;
