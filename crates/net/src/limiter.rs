//! Probe admission control: global and per-/24 token buckets.
//!
//! A census is a scan, and a polite scanner bounds both its aggregate
//! connection rate and its per-network rate (a /24 is the classic
//! courtesy granularity — one busy subnet must not absorb the whole
//! budget, and no subnet should see a burst). Buckets hold at most one
//! token: probes are paced, never bursted.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// A single-token bucket refilling at `rate` tokens per second.
#[derive(Debug, Clone)]
struct TokenBucket {
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64, now: Instant) -> Self {
        TokenBucket {
            rate,
            tokens: 1.0,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(1.0);
        self.last = now;
    }

    /// Seconds until a token is available (zero = available now).
    fn wait(&mut self, now: Instant) -> f64 {
        self.refill(now);
        if self.tokens >= 1.0 {
            0.0
        } else {
            (1.0 - self.tokens) / self.rate
        }
    }

    fn take(&mut self) {
        self.tokens -= 1.0;
    }
}

/// The combined limiter. A zero (or negative) rate disables that bound.
#[derive(Debug, Default)]
pub struct RateLimiter {
    global: Option<TokenBucket>,
    global_rate: f64,
    per_net_rate: f64,
    nets: HashMap<u32, TokenBucket>,
}

impl RateLimiter {
    /// A limiter with the given global and per-/24 probe rates
    /// (probes per second; `<= 0` = unlimited).
    pub fn new(global_rate: f64, per_net_rate: f64) -> Self {
        RateLimiter {
            global: None,
            global_rate: if global_rate > 0.0 { global_rate } else { 0.0 },
            per_net_rate: if per_net_rate > 0.0 {
                per_net_rate
            } else {
                0.0
            },
            nets: HashMap::new(),
        }
    }

    /// True when no bound is configured (every admit succeeds).
    pub fn is_unlimited(&self) -> bool {
        self.global_rate == 0.0 && self.per_net_rate == 0.0
    }

    /// Asks to open one probe connection to `ip` at `now`. `Ok(())`
    /// admits (and consumes the tokens); `Err(wait)` says when to retry.
    /// Tokens are only consumed when *both* buckets admit, so a stalled
    /// subnet never burns global budget.
    pub fn admit(&mut self, now: Instant, ip: Ipv4Addr) -> Result<(), Duration> {
        let global_wait = if self.global_rate > 0.0 {
            self.global
                .get_or_insert_with(|| TokenBucket::new(self.global_rate, now))
                .wait(now)
        } else {
            0.0
        };
        let net_key = u32::from(ip) >> 8;
        let net_wait = if self.per_net_rate > 0.0 {
            self.nets
                .entry(net_key)
                .or_insert_with(|| TokenBucket::new(self.per_net_rate, now))
                .wait(now)
        } else {
            0.0
        };
        let wait = global_wait.max(net_wait);
        if wait > 0.0 {
            return Err(Duration::from_secs_f64(wait.min(3600.0)));
        }
        if self.global_rate > 0.0 {
            self.global.as_mut().expect("created above").take();
        }
        if self.per_net_rate > 0.0 {
            self.nets.get_mut(&net_key).expect("created above").take();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP_A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const IP_A2: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 99); // same /24
    const IP_B: Ipv4Addr = Ipv4Addr::new(10, 0, 1, 1); // different /24

    #[test]
    fn unlimited_limiter_always_admits() {
        let mut lim = RateLimiter::new(0.0, 0.0);
        assert!(lim.is_unlimited());
        let now = Instant::now();
        for _ in 0..1000 {
            assert!(lim.admit(now, IP_A).is_ok());
        }
    }

    #[test]
    fn global_rate_paces_all_targets() {
        let now = Instant::now();
        let mut lim = RateLimiter::new(10.0, 0.0);
        assert!(lim.admit(now, IP_A).is_ok());
        let wait = lim.admit(now, IP_B).unwrap_err();
        // 10/s: the next token is ~100 ms out.
        assert!(wait > Duration::from_millis(50) && wait <= Duration::from_millis(110));
        assert!(lim.admit(now + Duration::from_millis(150), IP_B).is_ok());
    }

    #[test]
    fn per_net_rate_isolates_subnets() {
        let now = Instant::now();
        let mut lim = RateLimiter::new(0.0, 1.0);
        assert!(lim.admit(now, IP_A).is_ok());
        assert!(lim.admit(now, IP_A2).is_err(), "same /24 is paced");
        assert!(lim.admit(now, IP_B).is_ok(), "another /24 is unaffected");
    }

    #[test]
    fn a_blocked_subnet_does_not_burn_global_tokens() {
        let now = Instant::now();
        let mut lim = RateLimiter::new(100.0, 0.5);
        assert!(lim.admit(now, IP_A).is_ok());
        // 20 ms later the global bucket (100/s) has refilled, but A's
        // /24 bucket (0.5/s) has not: A2 is blocked by its subnet — and
        // that refusal must not burn the refilled global token, which B
        // then spends at the very same instant.
        let later = now + Duration::from_millis(20);
        assert!(lim.admit(later, IP_A2).is_err());
        assert!(lim.admit(later, IP_B).is_ok());
    }
}
