//! The socket reactor: thousands of probe sessions on one thread.
//!
//! One dedicated thread owns every socket, a readiness poller
//! ([`crate::sys::Poller`]), and a hashed [`TimerWheel`]. Probe
//! sessions are tiny state machines ([`LadderCore`] plus a write
//! buffer), so the memory per concurrent session is a few KiB and the
//! per-event work is bounded — the reactor sustains hundreds to
//! thousands of in-flight sessions without threads or allocator churn.
//!
//! Admission control happens at the mouth: submitted probes queue in
//! FIFO order and enter the reactor only when (a) a session slot is
//! free (`max_sessions`) and (b) the [`RateLimiter`] grants a token
//! for the target's address. Transport failures (refused, reset, EOF
//! mid-ladder, IO timeout, protocol violation) burn a retry with
//! exponential backoff and restart the *whole* ladder on a fresh
//! connection — a half-gathered walk is worthless — until the budget
//! is spent and [`LadderCore::abort`] reduces the session to a
//! `TransportAborted` outcome. Sessions never panic the reactor;
//! every failure ends in a result on the session's reply channel.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use caai_core::{GatherOutcome, InvalidReason, ProberConfig};
use caai_obs::{
    span_begin, span_begin_async, RateLimiterStalled, ReactorTicked, SpanKind, SpanToken,
    Subscriber,
};

use crate::core::{LadderCore, RungRecord, Step};
use crate::frame::{encode, FrameDecoder, ServerFrame};
use crate::limiter::RateLimiter;
use crate::sys::{self, Interest, OwnedFd, Poller, Readiness, Waker};
use crate::wheel::{Timer, TimerKind, TimerWheel};

/// Transport tuning for a live census.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// The §IV ladder parameters (must carry no defense).
    pub prober: ProberConfig,
    /// How long a nonblocking connect may take.
    pub connect_timeout: Duration,
    /// How long to wait for the peer's next frame.
    pub io_timeout: Duration,
    /// Transport-level retries per target (each restarts the ladder).
    pub retries: u32,
    /// Base backoff before a retry; doubles per retry already burned.
    pub backoff: Duration,
    /// Real seconds per virtual second of round pacing. Zero (the
    /// default) runs the ladder as fast as the peer answers — correct
    /// against the emulated server, whose clock is the frames'. Against
    /// hypothetical real stacks a fraction of 1.0 approximates RTT
    /// pacing. Never applied to the 630 s inter-connection wait.
    pub pacing: f64,
    /// Global probe admissions per second (`<= 0` = unlimited).
    pub rate: f64,
    /// Per-/24 probe admissions per second (`<= 0` = unlimited).
    pub rate_per_net: f64,
    /// Concurrent session cap; further probes queue FIFO.
    pub max_sessions: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            prober: ProberConfig::default(),
            connect_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(10),
            retries: 1,
            backoff: Duration::from_millis(100),
            pacing: 0.0,
            rate: 0.0,
            rate_per_net: 0.0,
            max_sessions: 1024,
        }
    }
}

/// Per-session transport accounting, reported with the outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// TCP connections opened (ladder rungs × environments, plus retries).
    pub connections: u32,
    /// Transport retries burned.
    pub retries: u32,
    /// Connect/IO timeouts observed.
    pub timeouts: u32,
    /// The session ended via [`LadderCore::abort`].
    pub aborted: bool,
}

/// What a probe session resolves to.
#[derive(Debug)]
pub struct SessionResult {
    /// The gather outcome, reduced exactly as the simulator reduces its
    /// own (`TransportAborted` failures included).
    pub outcome: GatherOutcome,
    /// Rung attempt records for observability replay.
    pub rungs: Vec<RungRecord>,
    /// Transport accounting.
    pub stats: SessionStats,
}

/// Commands the reactor accepts from other threads.
pub enum Command {
    /// Run one full ladder walk against `ip:port`.
    Probe {
        /// IPv4 target address.
        ip: Ipv4Addr,
        /// TCP port.
        port: u16,
        /// Where the result goes.
        reply: mpsc::Sender<SessionResult>,
    },
    /// Stop the reactor; in-flight sessions are dropped (their reply
    /// channels close, which callers reduce to aborted records).
    Shutdown,
}

/// Timer token reserved for the rate-limiter retry tick.
const RATE_TOKEN: u64 = 0;
/// Longest real delay one paced round may stretch to.
const MAX_PACE_DELAY: f64 = 60.0;

struct Conn {
    fd: OwnedFd,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_at: usize,
    close_after_flush: bool,
    connected: bool,
    registered: bool,
    interest: Interest,
}

enum SessState {
    /// Waiting for the nonblocking connect to resolve.
    Connecting,
    /// Connected; frames flowing.
    Running,
    /// Between retry attempts.
    BackingOff,
}

struct Session {
    target: (Ipv4Addr, u16),
    reply: mpsc::Sender<SessionResult>,
    core: LadderCore,
    conn: Option<Conn>,
    state: SessState,
    stats: SessionStats,
    retries_left: u32,
    /// Armed deadlines, for staleness checks against fired timers.
    io_deadline: Option<Instant>,
    send_gate: Option<Instant>,
    backoff_at: Option<Instant>,
    /// Tracing spans (all `SpanToken::NONE` when tracing is off). The
    /// session span covers first connect to verdict hand-off; the
    /// others are the currently open phase within it. They travel with
    /// the session across token re-keying.
    span: SpanToken,
    connect_span: SpanToken,
    retry_span: SpanToken,
    roundtrip_span: SpanToken,
    rung_span: SpanToken,
    /// Rung records already accounted (closes `rung_span` on growth).
    rungs_seen: usize,
}

struct PendingProbe {
    ip: Ipv4Addr,
    port: u16,
    reply: mpsc::Sender<SessionResult>,
}

/// The reactor. Constructed and run on its own thread by
/// [`NetTransport`](crate::transport::NetTransport).
pub struct Reactor<S: Subscriber> {
    config: NetConfig,
    obs: Arc<S>,
    poller: Poller,
    wheel: TimerWheel,
    sessions: HashMap<u64, Session>,
    pending: VecDeque<PendingProbe>,
    limiter: RateLimiter,
    next_token: u64,
    rate_retry_armed: bool,
}

impl<S: Subscriber> Reactor<S> {
    /// Builds the reactor and the command handle for it. The returned
    /// [`Waker`] must be poked after every command send.
    pub fn new(config: NetConfig, obs: Arc<S>) -> std::io::Result<(Self, Waker)> {
        assert!(config.max_sessions > 0, "max_sessions must be positive");
        let poller = Poller::new()?;
        let waker = poller.waker();
        let limiter = RateLimiter::new(config.rate, config.rate_per_net);
        Ok((
            Reactor {
                config,
                obs,
                poller,
                wheel: TimerWheel::new(Instant::now()),
                sessions: HashMap::new(),
                pending: VecDeque::new(),
                limiter,
                next_token: 1,
                rate_retry_armed: false,
            },
            waker,
        ))
    }

    /// The event loop: runs until [`Command::Shutdown`] or the command
    /// channel closes.
    pub fn run(mut self, commands: mpsc::Receiver<Command>) {
        let mut ready: Vec<Readiness> = Vec::new();
        let mut fired: Vec<Timer> = Vec::new();
        let mut disconnected = false;
        loop {
            if disconnected && self.sessions.is_empty() && self.pending.is_empty() {
                return;
            }
            let timeout_ms = match self.wheel.next_deadline() {
                Some(deadline) => {
                    let now = Instant::now();
                    deadline
                        .saturating_duration_since(now)
                        .as_millis()
                        .min(60_000) as i32
                }
                None => -1,
            };
            if self.poller.wait(timeout_ms, &mut ready).is_err() {
                break;
            }
            let tick_start = if S::ENABLED {
                Some(Instant::now())
            } else {
                None
            };
            let tick_span = span_begin(
                &*self.obs,
                SpanKind::ReactorTick,
                self.sessions.len() as i64,
                0,
            );

            // Commands first: a shutdown must beat any amount of IO.
            loop {
                match commands.try_recv() {
                    Ok(Command::Probe { ip, port, reply }) => {
                        self.pending.push_back(PendingProbe { ip, port, reply });
                    }
                    Ok(Command::Shutdown) => return,
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        disconnected = true;
                        break;
                    }
                }
            }

            let dispatched = ready.len() as u32;
            for ev in ready.drain(..) {
                self.dispatch_io(ev);
            }

            let now = Instant::now();
            fired.clear();
            self.wheel.expire(now, &mut fired);
            for timer in fired.drain(..) {
                self.dispatch_timer(timer);
            }

            self.pump_pending();

            tick_span.end(&*self.obs);
            if let Some(start) = tick_start {
                self.obs.on_reactor_ticked(&ReactorTicked {
                    ready: dispatched,
                    active_sessions: self.sessions.len() as u64,
                    latency_us: start.elapsed().as_micros() as u64,
                });
            }
        }
    }

    // -- admission ---------------------------------------------------

    fn pump_pending(&mut self) {
        while self.sessions.len() < self.config.max_sessions {
            let Some(front) = self.pending.front() else {
                return;
            };
            let now = Instant::now();
            match self.limiter.admit(now, front.ip) {
                Ok(()) => {
                    let probe = self.pending.pop_front().expect("front just observed");
                    self.start_session(probe);
                }
                Err(wait) => {
                    self.obs.on_rate_limiter_stalled(&RateLimiterStalled {
                        wait_us: wait.as_micros() as u64,
                    });
                    if !self.rate_retry_armed {
                        self.rate_retry_armed = true;
                        self.wheel.insert(Timer {
                            token: RATE_TOKEN,
                            kind: TimerKind::RatePermit,
                            deadline: now + wait,
                        });
                    }
                    return;
                }
            }
        }
    }

    fn start_session(&mut self, probe: PendingProbe) {
        let mut core = LadderCore::new(self.config.prober.clone());
        let step = core.start();
        let token = self.alloc_token();
        let span = span_begin_async(
            &*self.obs,
            SpanKind::NetSession,
            0,
            i64::from(u32::from(probe.ip)),
            i64::from(probe.port),
        );
        let session = Session {
            target: (probe.ip, probe.port),
            reply: probe.reply,
            core,
            conn: None,
            state: SessState::Connecting,
            stats: SessionStats::default(),
            retries_left: self.config.retries,
            io_deadline: None,
            send_gate: None,
            backoff_at: None,
            span,
            connect_span: SpanToken::NONE,
            retry_span: SpanToken::NONE,
            roundtrip_span: SpanToken::NONE,
            rung_span: SpanToken::NONE,
            rungs_seen: 0,
        };
        self.sessions.insert(token, session);
        self.apply_step(token, step);
    }

    /// Closes the session's open rung span when the core has recorded a
    /// new rung attempt since the last check. Cheap and idempotent;
    /// called after any step that can conclude a rung.
    fn sync_rung_span(&mut self, token: u64) {
        if !S::ENABLED {
            return;
        }
        let obs = Arc::clone(&self.obs);
        let Some(session) = self.sessions.get_mut(&token) else {
            return;
        };
        let n = session.core.rungs().len();
        if n > session.rungs_seen {
            session.rungs_seen = n;
            std::mem::replace(&mut session.rung_span, SpanToken::NONE).end(&*obs);
        }
    }

    fn alloc_token(&mut self) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        token
    }

    // -- step execution ----------------------------------------------

    /// Executes one [`Step`] for the session at `token`. The session may
    /// move to a new token (reconnect) or finish (removal) underneath.
    fn apply_step(&mut self, token: u64, step: Step) {
        match step {
            Step::Connect => self.open_connection(token),
            Step::Send {
                pace,
                frames,
                close_after,
            } => {
                let Some(session) = self.sessions.get_mut(&token) else {
                    return;
                };
                let Some(conn) = session.conn.as_mut() else {
                    return;
                };
                for frame in &frames {
                    conn.out.extend_from_slice(&encode(frame));
                }
                conn.close_after_flush = close_after;
                let delay = (pace * self.config.pacing).clamp(0.0, MAX_PACE_DELAY);
                let delay = if delay.is_finite() { delay } else { 0.0 };
                if delay > 0.0 {
                    let gate = Instant::now() + Duration::from_secs_f64(delay);
                    session.send_gate = Some(gate);
                    session.io_deadline = None;
                    self.wheel.insert(Timer {
                        token,
                        kind: TimerKind::SendDue,
                        deadline: gate,
                    });
                } else {
                    session.send_gate = None;
                    self.flush(token);
                }
            }
            Step::Done(outcome) => self.finish_session(token, *outcome),
        }
    }

    fn open_connection(&mut self, token: u64) {
        // Re-key: a fresh token per connection makes every event and
        // timer of the old connection stale by construction.
        let Some(mut session) = self.sessions.remove(&token) else {
            return;
        };
        let new_token = self.alloc_token();
        session.io_deadline = None;
        session.send_gate = None;
        session.backoff_at = None;
        std::mem::replace(&mut session.retry_span, SpanToken::NONE).end(&*self.obs);
        session.connect_span = span_begin_async(
            &*self.obs,
            SpanKind::NetConnect,
            session.span.id(),
            i64::from(session.stats.connections) + 1,
            0,
        );
        let (ip, port) = session.target;
        match sys::connect_nonblocking(ip, port) {
            Ok((fd, done)) => {
                session.conn = Some(Conn {
                    fd,
                    decoder: FrameDecoder::new(),
                    out: Vec::new(),
                    out_at: 0,
                    close_after_flush: false,
                    connected: false,
                    registered: false,
                    interest: Interest::Write,
                });
                session.state = SessState::Connecting;
                let deadline = Instant::now() + self.config.connect_timeout;
                session.io_deadline = Some(deadline);
                self.wheel.insert(Timer {
                    token: new_token,
                    kind: TimerKind::IoDeadline,
                    deadline,
                });
                self.sessions.insert(new_token, session);
                if done {
                    self.connect_finished(new_token);
                } else {
                    self.set_interest(new_token, Interest::Write);
                }
            }
            Err(_) => {
                self.sessions.insert(new_token, session);
                self.conn_failed(new_token, false);
            }
        }
    }

    fn set_interest(&mut self, token: u64, interest: Interest) {
        let Some(session) = self.sessions.get_mut(&token) else {
            return;
        };
        let Some(conn) = session.conn.as_mut() else {
            return;
        };
        let fd = conn.fd.raw();
        let result = if !conn.registered {
            conn.registered = true;
            conn.interest = interest;
            self.poller.register(fd, token, interest)
        } else if conn.interest != interest {
            conn.interest = interest;
            self.poller.rearm(fd, token, interest)
        } else {
            Ok(())
        };
        if result.is_err() {
            self.conn_failed(token, false);
        }
    }

    fn connect_finished(&mut self, token: u64) {
        let obs = Arc::clone(&self.obs);
        let Some(session) = self.sessions.get_mut(&token) else {
            return;
        };
        let Some(conn) = session.conn.as_mut() else {
            return;
        };
        if let Err(_e) = sys::take_socket_error(&conn.fd) {
            self.conn_failed(token, false);
            return;
        }
        conn.connected = true;
        session.state = SessState::Running;
        session.stats.connections += 1;
        session.io_deadline = None;
        std::mem::replace(&mut session.connect_span, SpanToken::NONE).end(&*obs);
        // A fresh connection opens the next rung attempt over the wire.
        session.rung_span = span_begin_async(
            &*obs,
            SpanKind::NetRung,
            session.span.id(),
            session.rungs_seen as i64,
            0,
        );
        let step = session.core.on_connected();
        self.apply_step(token, step);
        self.sync_rung_span(token);
    }

    /// Drains the session's write buffer. On completion either closes
    /// (`close_after_flush`) or turns to await the reply.
    fn flush(&mut self, token: u64) {
        let Some(session) = self.sessions.get_mut(&token) else {
            return;
        };
        let Some(conn) = session.conn.as_mut() else {
            return;
        };
        while conn.out_at < conn.out.len() {
            match sys::write_nonblocking(&conn.fd, &conn.out[conn.out_at..]) {
                Ok(Some(n)) => conn.out_at += n,
                Ok(None) => {
                    self.set_interest(token, Interest::ReadWrite);
                    return;
                }
                Err(_) => {
                    self.conn_failed(token, false);
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_at = 0;
        if conn.close_after_flush {
            self.teardown_conn(token);
            let Some(session) = self.sessions.get_mut(&token) else {
                return;
            };
            let step = session.core.on_closed();
            self.apply_step(token, step);
            self.sync_rung_span(token);
        } else {
            // Request on the wire, reply awaited: the frame round-trip
            // starts here and ends at the next decoded frame.
            if S::ENABLED && session.roundtrip_span.id() == 0 {
                let obs = Arc::clone(&self.obs);
                session.roundtrip_span =
                    span_begin_async(&*obs, SpanKind::NetRoundtrip, session.span.id(), 0, 0);
            }
            let deadline = Instant::now() + self.config.io_timeout;
            session.io_deadline = Some(deadline);
            self.wheel.insert(Timer {
                token,
                kind: TimerKind::IoDeadline,
                deadline,
            });
            self.set_interest(token, Interest::Read);
        }
    }

    fn teardown_conn(&mut self, token: u64) {
        if let Some(session) = self.sessions.get_mut(&token) {
            if let Some(conn) = session.conn.take() {
                if conn.registered {
                    let _ = self.poller.deregister(conn.fd.raw());
                }
            }
            session.io_deadline = None;
            session.send_gate = None;
        }
    }

    // -- IO dispatch --------------------------------------------------

    fn dispatch_io(&mut self, ev: Readiness) {
        let token = ev.token;
        let Some(session) = self.sessions.get_mut(&token) else {
            return; // stale event for a closed connection
        };
        let Some(conn) = session.conn.as_mut() else {
            return;
        };
        if !conn.connected {
            if ev.writable || ev.error {
                self.connect_finished(token);
            }
            return;
        }
        if ev.error {
            // Query the socket for the concrete error; either way the
            // connection is gone.
            let _ = sys::take_socket_error(&conn.fd);
            self.conn_failed(token, false);
            return;
        }
        if ev.writable && conn.out_at < conn.out.len() && session.send_gate.is_none() {
            self.flush(token);
        }
        if ev.readable {
            self.drain_readable(token);
        }
    }

    fn drain_readable(&mut self, token: u64) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(session) = self.sessions.get_mut(&token) else {
                return;
            };
            let Some(conn) = session.conn.as_mut() else {
                return;
            };
            match sys::read_nonblocking(&conn.fd, &mut buf) {
                Ok(Some(0)) => {
                    // EOF: the ladder initiates every close itself, so a
                    // peer-side close mid-walk is a transport failure.
                    self.conn_failed(token, false);
                    return;
                }
                Ok(Some(n)) => {
                    conn.decoder.push(&buf[..n]);
                    if !self.decode_frames(token) {
                        return;
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.conn_failed(token, false);
                    return;
                }
            }
        }
    }

    /// Feeds every buffered frame to the core. Returns false when the
    /// session's current connection ended (error, reconnect, finish).
    fn decode_frames(&mut self, token: u64) -> bool {
        loop {
            let Some(session) = self.sessions.get_mut(&token) else {
                return false;
            };
            let Some(conn) = session.conn.as_mut() else {
                return false;
            };
            match conn.decoder.next::<ServerFrame>() {
                Ok(Some(frame)) => {
                    session.io_deadline = None;
                    if S::ENABLED {
                        let obs = Arc::clone(&self.obs);
                        std::mem::replace(&mut session.roundtrip_span, SpanToken::NONE).end(&*obs);
                    }
                    match session.core.on_frame(&frame) {
                        Ok(step) => {
                            self.apply_step(token, step);
                            self.sync_rung_span(token);
                        }
                        Err(_proto) => {
                            self.conn_failed(token, false);
                            return false;
                        }
                    }
                }
                Ok(None) => return true,
                Err(_decode) => {
                    self.conn_failed(token, false);
                    return false;
                }
            }
        }
    }

    // -- timers -------------------------------------------------------

    fn dispatch_timer(&mut self, timer: Timer) {
        if timer.token == RATE_TOKEN {
            self.rate_retry_armed = false;
            self.pump_pending();
            return;
        }
        let Some(session) = self.sessions.get_mut(&timer.token) else {
            return; // stale: the session finished or re-keyed
        };
        match timer.kind {
            TimerKind::IoDeadline => {
                if session.io_deadline == Some(timer.deadline) {
                    session.stats.timeouts += 1;
                    self.conn_failed(timer.token, true);
                }
            }
            TimerKind::SendDue => {
                if session.send_gate == Some(timer.deadline) {
                    session.send_gate = None;
                    self.flush(timer.token);
                }
            }
            TimerKind::Backoff => {
                if session.backoff_at == Some(timer.deadline) {
                    session.backoff_at = None;
                    self.open_connection(timer.token);
                }
            }
            TimerKind::RatePermit => {}
        }
    }

    // -- failure & completion ----------------------------------------

    /// A transport-level failure on the session's current connection:
    /// burn a retry (with backoff) or abort the walk.
    fn conn_failed(&mut self, token: u64, _timed_out: bool) {
        self.teardown_conn(token);
        let obs = Arc::clone(&self.obs);
        let Some(session) = self.sessions.get_mut(&token) else {
            return;
        };
        // Whatever phase was open on this connection, it is over.
        std::mem::replace(&mut session.connect_span, SpanToken::NONE).end(&*obs);
        std::mem::replace(&mut session.roundtrip_span, SpanToken::NONE).end(&*obs);
        std::mem::replace(&mut session.rung_span, SpanToken::NONE).end(&*obs);
        if session.retries_left > 0 {
            session.retries_left -= 1;
            session.stats.retries += 1;
            // The whole walk restarts: a partial ladder cannot be resumed
            // against a server whose TCP state is gone.
            session.core = LadderCore::new(self.config.prober.clone());
            let _ = session.core.start();
            session.state = SessState::BackingOff;
            let shift = session.stats.retries.saturating_sub(1).min(16);
            let backoff = self.config.backoff * (1u32 << shift);
            session.retry_span = span_begin_async(
                &*obs,
                SpanKind::NetRetry,
                session.span.id(),
                i64::from(session.stats.retries),
                backoff.as_millis() as i64,
            );
            let deadline = Instant::now() + backoff;
            session.backoff_at = Some(deadline);
            self.wheel.insert(Timer {
                token,
                kind: TimerKind::Backoff,
                deadline,
            });
        } else {
            session.stats.aborted = true;
            let step = session.core.abort();
            self.apply_step(token, step);
        }
    }

    fn finish_session(&mut self, token: u64, outcome: GatherOutcome) {
        self.teardown_conn(token);
        let Some(session) = self.sessions.remove(&token) else {
            return;
        };
        session.connect_span.end(&*self.obs);
        session.roundtrip_span.end(&*self.obs);
        session.retry_span.end(&*self.obs);
        session.rung_span.end(&*self.obs);
        session.span.end(&*self.obs);
        let aborted = session.stats.aborted
            || outcome.failure_reason() == Some(InvalidReason::TransportAborted);
        let mut stats = session.stats;
        stats.aborted = aborted;
        let result = SessionResult {
            outcome,
            rungs: session.core.rungs().to_vec(),
            stats,
        };
        // A dropped receiver (caller gave up) is not the reactor's
        // problem; the session is done either way.
        let _ = session.reply.send(result);
        self.pump_pending();
    }
}
