//! Raw syscall bindings for the reactor.
//!
//! The build environment is offline: no `libc`, `mio`, or `tokio`
//! crates. The reactor needs exactly eight syscalls — socket, connect,
//! read, write, close, setsockopt/getsockopt, and a readiness
//! multiplexer — so they are declared here directly against the C
//! ABI. Linux gets `epoll` + `eventfd`; other unixes fall back to
//! `poll(2)` + a self-pipe. All `unsafe` in the crate is confined to
//! this module; everything it exports is a safe wrapper over an owned
//! file descriptor.

#![allow(clippy::missing_safety_doc)]

use std::io;
use std::net::Ipv4Addr;

/// IPv4 address family.
pub const AF_INET: i32 = 2;
const SOCK_STREAM: i32 = 1;
const SOCK_NONBLOCK: i32 = 0o4000;
const SOCK_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_ERROR: i32 = 4;
const SO_LINGER: i32 = 13;

/// Nonblocking connect in flight.
pub const EINPROGRESS: i32 = 115;
/// Interrupted by a signal; retry.
pub const EINTR: i32 = 4;
/// Operation would block.
pub const EAGAIN: i32 = 11;

#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

#[repr(C)]
struct Linger {
    l_onoff: i32,
    l_linger: i32,
}

extern "C" {
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn connect(fd: i32, addr: *const SockAddrIn, len: u32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getsockopt(fd: i32, level: i32, name: i32, value: *mut i32, len: *mut u32) -> i32;
    fn setsockopt(fd: i32, level: i32, name: i32, value: *const Linger, len: u32) -> i32;
    fn __errno_location() -> *mut i32;
}

/// The calling thread's errno.
pub fn errno() -> i32 {
    unsafe { *__errno_location() }
}

fn io_err(what: &str) -> io::Error {
    io::Error::new(
        io::Error::from_raw_os_error(errno()).kind(),
        format!("{what}: os error {}", errno()),
    )
}

/// A file descriptor closed on drop.
#[derive(Debug)]
pub struct OwnedFd(i32);

impl OwnedFd {
    /// The raw descriptor (borrowed; the wrapper still owns it).
    pub fn raw(&self) -> i32 {
        self.0
    }
}

impl Drop for OwnedFd {
    fn drop(&mut self) {
        unsafe {
            close(self.0);
        }
    }
}

/// Opens a nonblocking IPv4 TCP socket and starts connecting to
/// `addr:port`. Returns the socket and whether the connect already
/// completed (loopback often does); otherwise completion is signalled
/// by writability, with [`take_socket_error`] holding the verdict.
pub fn connect_nonblocking(addr: Ipv4Addr, port: u16) -> io::Result<(OwnedFd, bool)> {
    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io_err("socket"));
    }
    let fd = OwnedFd(fd);
    let sa = SockAddrIn {
        sin_family: AF_INET as u16,
        sin_port: port.to_be(),
        sin_addr: u32::from(addr).to_be(),
        sin_zero: [0; 8],
    };
    let rc = unsafe { connect(fd.raw(), &sa, std::mem::size_of::<SockAddrIn>() as u32) };
    if rc == 0 {
        return Ok((fd, true));
    }
    match errno() {
        EINPROGRESS | EINTR => Ok((fd, false)),
        _ => Err(io_err("connect")),
    }
}

/// Reads the socket's pending error (`SO_ERROR`), clearing it: `Ok(())`
/// when the nonblocking connect succeeded.
pub fn take_socket_error(fd: &OwnedFd) -> io::Result<()> {
    let mut err: i32 = 0;
    let mut len = std::mem::size_of::<i32>() as u32;
    let rc = unsafe { getsockopt(fd.raw(), SOL_SOCKET, SO_ERROR, &mut err, &mut len) };
    if rc < 0 {
        return Err(io_err("getsockopt(SO_ERROR)"));
    }
    if err != 0 {
        return Err(io::Error::from_raw_os_error(err));
    }
    Ok(())
}

/// Arms an abortive close: dropping the socket after this sends RST
/// instead of FIN. Used by the emulated server's reset behavior.
pub fn set_linger_reset(fd: i32) -> io::Result<()> {
    let lg = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_LINGER,
            &lg,
            std::mem::size_of::<Linger>() as u32,
        )
    };
    if rc < 0 {
        return Err(io_err("setsockopt(SO_LINGER)"));
    }
    Ok(())
}

/// Nonblocking read. `Ok(None)` = would block, `Ok(Some(0))` = EOF.
pub fn read_nonblocking(fd: &OwnedFd, buf: &mut [u8]) -> io::Result<Option<usize>> {
    loop {
        let n = unsafe { read(fd.raw(), buf.as_mut_ptr(), buf.len()) };
        if n >= 0 {
            return Ok(Some(n as usize));
        }
        match errno() {
            EINTR => continue,
            EAGAIN => return Ok(None),
            _ => return Err(io_err("read")),
        }
    }
}

/// Nonblocking write. `Ok(None)` = would block.
pub fn write_nonblocking(fd: &OwnedFd, buf: &[u8]) -> io::Result<Option<usize>> {
    loop {
        let n = unsafe { write(fd.raw(), buf.as_ptr(), buf.len()) };
        if n >= 0 {
            return Ok(Some(n as usize));
        }
        match errno() {
            EINTR => continue,
            EAGAIN => return Ok(None),
            _ => return Err(io_err("write")),
        }
    }
}

/// Readiness reported by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    /// The token registered with the descriptor.
    pub token: u64,
    /// Readable (or peer closed — a read will report it).
    pub readable: bool,
    /// Writable (includes connect completion).
    pub writable: bool,
    /// Error/hangup; the owner must query the socket to learn which.
    pub error: bool,
}

/// What readiness to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only.
    Read,
    /// Writable only (a pending connect).
    Write,
    /// Both.
    ReadWrite,
}

// ------------------------------------------------------------------
// Linux: epoll + eventfd
// ------------------------------------------------------------------
#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const EFD_CLOEXEC: i32 = 0o2000000;

    // x86-64 packs this struct in the kernel ABI.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    fn interest_bits(interest: Interest) -> u32 {
        (match interest {
            Interest::Read => EPOLLIN,
            Interest::Write => EPOLLOUT,
            Interest::ReadWrite => EPOLLIN | EPOLLOUT,
        }) | EPOLLRDHUP
    }

    /// The epoll-backed readiness multiplexer.
    pub struct Poller {
        ep: OwnedFd,
        wake_fd: OwnedFd,
        events: Vec<EpollEvent>,
    }

    /// Token the poller reserves for its own wakeup descriptor.
    pub const WAKE_TOKEN: u64 = u64::MAX;

    impl Poller {
        /// A fresh epoll instance with its wakeup eventfd registered.
        pub fn new() -> io::Result<Poller> {
            let ep = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if ep < 0 {
                return Err(io_err("epoll_create1"));
            }
            let ep = OwnedFd(ep);
            let wake = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
            if wake < 0 {
                return Err(io_err("eventfd"));
            }
            let wake_fd = OwnedFd(wake);
            let poller = Poller {
                ep,
                wake_fd,
                events: vec![EpollEvent { events: 0, data: 0 }; 256],
            };
            poller.ctl(EPOLL_CTL_ADD, poller.wake_fd.raw(), EPOLLIN, WAKE_TOKEN)?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.ep.raw(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io_err("epoll_ctl"));
            }
            Ok(())
        }

        /// Starts watching `fd` for `interest`, reporting it as `token`.
        pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest_bits(interest), token)
        }

        /// Changes what a registered descriptor is watched for.
        pub fn rearm(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_bits(interest), token)
        }

        /// Stops watching `fd` (harmless if the fd is already closed).
        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// A handle other threads use to interrupt [`wait`](Self::wait).
        pub fn waker(&self) -> Waker {
            Waker {
                fd: self.wake_fd.raw(),
            }
        }

        /// Blocks up to `timeout_ms` (`-1` = forever) for readiness,
        /// filling `out`. Wakeups and `EINTR` return an empty set.
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Readiness>) -> io::Result<()> {
            out.clear();
            let n = unsafe {
                epoll_wait(
                    self.ep.raw(),
                    self.events.as_mut_ptr(),
                    self.events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                if errno() == EINTR {
                    return Ok(());
                }
                return Err(io_err("epoll_wait"));
            }
            for ev in &self.events[..n as usize] {
                let bits = ev.events;
                if ev.data == WAKE_TOKEN {
                    // Drain the eventfd counter; readiness is the signal.
                    let mut buf = [0u8; 8];
                    let _ = read_nonblocking(&self.wake_fd, &mut buf);
                    continue;
                }
                out.push(Readiness {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    /// Cross-thread wakeup for a sleeping poller.
    #[derive(Debug, Clone, Copy)]
    pub struct Waker {
        fd: i32,
    }

    impl Waker {
        /// Interrupts the poller's current (or next) wait.
        pub fn wake(&self) {
            let one: u64 = 1;
            unsafe {
                write(self.fd, one.to_ne_bytes().as_ptr(), 8);
            }
        }
    }
}

// ------------------------------------------------------------------
// Other unixes: poll(2) + self-pipe
// ------------------------------------------------------------------
#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::*;

    const POLLIN: i16 = 0x1;
    const POLLOUT: i16 = 0x4;
    const POLLERR: i16 = 0x8;
    const POLLHUP: i16 = 0x10;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    }

    /// The poll(2)-backed fallback multiplexer.
    pub struct Poller {
        entries: Vec<(i32, u64, Interest)>,
        pipe_r: OwnedFd,
        pipe_w: OwnedFd,
    }

    impl Poller {
        /// A fresh poll set with its wakeup self-pipe armed.
        pub fn new() -> io::Result<Poller> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io_err("pipe"));
            }
            const F_SETFL: i32 = 4;
            const O_NONBLOCK: i32 = 0o4000;
            unsafe {
                fcntl(fds[0], F_SETFL, O_NONBLOCK);
                fcntl(fds[1], F_SETFL, O_NONBLOCK);
            }
            Ok(Poller {
                entries: Vec::new(),
                pipe_r: OwnedFd(fds[0]),
                pipe_w: OwnedFd(fds[1]),
            })
        }

        /// Starts watching `fd` for `interest`, reporting it as `token`.
        pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.entries.push((fd, token, interest));
            Ok(())
        }

        /// Changes what a registered descriptor is watched for.
        pub fn rearm(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            if let Some(e) = self.entries.iter_mut().find(|e| e.0 == fd) {
                *e = (fd, token, interest);
            }
            Ok(())
        }

        /// Stops watching `fd`.
        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            self.entries.retain(|e| e.0 != fd);
            Ok(())
        }

        /// A handle other threads use to interrupt [`wait`](Self::wait).
        pub fn waker(&self) -> Waker {
            Waker {
                fd: self.pipe_w.raw(),
            }
        }

        /// Blocks up to `timeout_ms` (`-1` = forever) for readiness,
        /// filling `out`. Wakeups and `EINTR` return an empty set.
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Readiness>) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = Vec::with_capacity(self.entries.len() + 1);
            fds.push(PollFd {
                fd: self.pipe_r.raw(),
                events: POLLIN,
                revents: 0,
            });
            for &(fd, _, interest) in &self.entries {
                let events = match interest {
                    Interest::Read => POLLIN,
                    Interest::Write => POLLOUT,
                    Interest::ReadWrite => POLLIN | POLLOUT,
                };
                fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
            }
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
            if n < 0 {
                if errno() == EINTR {
                    return Ok(());
                }
                return Err(io_err("poll"));
            }
            if fds[0].revents & POLLIN != 0 {
                let mut buf = [0u8; 64];
                let _ = read_nonblocking(&self.pipe_r, &mut buf);
            }
            for (slot, &(_, token, _)) in fds[1..].iter().zip(&self.entries) {
                if slot.revents == 0 {
                    continue;
                }
                out.push(Readiness {
                    token,
                    readable: slot.revents & (POLLIN | POLLHUP) != 0,
                    writable: slot.revents & POLLOUT != 0,
                    error: slot.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    /// Cross-thread wakeup for a sleeping poller.
    #[derive(Debug, Clone, Copy)]
    pub struct Waker {
        fd: i32,
    }

    impl Waker {
        /// Interrupts the poller's current (or next) wait.
        pub fn wake(&self) {
            unsafe {
                write(self.fd, [1u8].as_ptr(), 1);
            }
        }
    }
}

pub use imp::{Poller, Waker};

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn nonblocking_connect_completes_via_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let (fd, done) = connect_nonblocking(Ipv4Addr::LOCALHOST, port).unwrap();
        let mut poller = Poller::new().unwrap();
        if !done {
            poller.register(fd.raw(), 7, Interest::Write).unwrap();
            let mut ready = Vec::new();
            for _ in 0..100 {
                poller.wait(100, &mut ready).unwrap();
                if !ready.is_empty() {
                    break;
                }
            }
            assert_eq!(ready[0].token, 7);
            assert!(ready[0].writable || ready[0].error);
        }
        take_socket_error(&fd).unwrap();
        let (peer, _) = listener.accept().unwrap();
        drop(peer);
    }

    #[test]
    fn waker_interrupts_a_sleeping_poller() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            waker.wake();
        });
        let start = std::time::Instant::now();
        let mut ready = Vec::new();
        poller.wait(10_000, &mut ready).unwrap();
        assert!(
            start.elapsed().as_secs() < 5,
            "waker must cut the sleep short"
        );
        handle.join().unwrap();
    }

    #[test]
    fn connect_to_a_dead_port_reports_an_error() {
        // Bind-then-drop: the port is (almost surely) unbound now.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let (fd, done) = connect_nonblocking(Ipv4Addr::LOCALHOST, port).unwrap();
        if !done {
            let mut poller = Poller::new().unwrap();
            poller.register(fd.raw(), 1, Interest::Write).unwrap();
            let mut ready = Vec::new();
            for _ in 0..100 {
                poller.wait(100, &mut ready).unwrap();
                if !ready.is_empty() {
                    break;
                }
            }
        }
        assert!(
            take_socket_error(&fd).is_err(),
            "refused connect must surface"
        );
    }
}
