//! Target-list ingestion: one `host[:port]` per line, skip-and-report.
//!
//! A census target list is operator-authored and often machine-appended;
//! single corrupt lines must not abort a run that took hours to set up.
//! The parser therefore never fails as a whole — every unusable line is
//! skipped and reported with its exact 1-based line number and a reason
//! naming what was wrong, the same contract the pcap readers follow.

use std::fmt;
use std::io::Read;
use std::path::Path;

/// One census target: a host (IPv4 literal or hostname) and a port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Target {
    /// Hostname or IPv4 literal, lowercased for comparison stability.
    pub host: String,
    /// TCP port, defaulting to 80 when the line omits it.
    pub port: u16,
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

/// A line the parser could not use, with its exact location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedLine {
    /// 1-based line number in the input.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

/// The result of parsing a target list: what survived, what was skipped
/// (with reasons), and how many duplicates were collapsed.
#[derive(Debug, Clone, Default)]
pub struct TargetList {
    /// Usable targets, in first-appearance order, duplicates removed.
    pub targets: Vec<Target>,
    /// Unusable lines with 1-based indices and reasons.
    pub skipped: Vec<SkippedLine>,
    /// Duplicate lines collapsed (the first occurrence is kept).
    pub duplicates: usize,
}

/// Default probe port when a line names only a host.
pub const DEFAULT_PORT: u16 = 80;

fn parse_line(raw: &str) -> Result<Option<Target>, String> {
    // Strip a trailing comment, then whitespace. A lone comment or a
    // blank line is silent — only *malformed content* gets reported.
    let content = raw.split('#').next().unwrap_or("").trim();
    if content.is_empty() {
        return Ok(None);
    }
    if content.starts_with('[') || content.matches(':').count() > 1 {
        return Err("IPv6 targets are not supported (the reactor speaks IPv4 only)".into());
    }
    let (host, port) = match content.rsplit_once(':') {
        Some((host, port_str)) => {
            let port: u16 = port_str
                .parse()
                .map_err(|_| format!("invalid port {port_str:?}: expected 1-65535"))?;
            if port == 0 {
                return Err("invalid port \"0\": expected 1-65535".into());
            }
            (host.trim(), port)
        }
        None => (content, DEFAULT_PORT),
    };
    if host.is_empty() {
        return Err("missing host before the port".into());
    }
    if let Some(offender) = host
        .chars()
        .find(|c| !(c.is_ascii_alphanumeric() || *c == '.' || *c == '-'))
    {
        return Err(format!(
            "invalid character {offender:?} in host {host:?} (hostnames and IPv4 literals only)"
        ));
    }
    Ok(Some(Target {
        host: host.to_ascii_lowercase(),
        port,
    }))
}

/// Parses a whole target list. Infallible at the list level: corrupt
/// lines land in [`TargetList::skipped`], duplicates are collapsed and
/// counted.
pub fn parse_targets(input: &str) -> TargetList {
    let mut list = TargetList::default();
    let mut seen = std::collections::HashSet::new();
    for (idx, raw) in input.lines().enumerate() {
        match parse_line(raw) {
            Ok(None) => {}
            Ok(Some(target)) => {
                if seen.insert(target.clone()) {
                    list.targets.push(target);
                } else {
                    list.duplicates += 1;
                }
            }
            Err(reason) => list.skipped.push(SkippedLine {
                line: idx + 1,
                reason,
            }),
        }
    }
    list
}

/// Reads and parses a target list from a file. IO failure is the only
/// hard error — a missing file means there is nothing to census.
pub fn read_targets(path: &Path) -> Result<TargetList, String> {
    let mut text = String::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(parse_targets(&text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hosts_ports_comments_and_blanks() {
        let list = parse_targets(
            "# census fleet\n\
             127.0.0.1:8080\n\
             \n\
             example.com          # default port\n\
             Example.COM:80       # same thing, different case\n\
             10.0.0.1:443\n",
        );
        assert_eq!(
            list.targets,
            vec![
                Target {
                    host: "127.0.0.1".into(),
                    port: 8080
                },
                Target {
                    host: "example.com".into(),
                    port: 80
                },
                Target {
                    host: "10.0.0.1".into(),
                    port: 443
                },
            ]
        );
        assert_eq!(list.duplicates, 1);
        assert!(list.skipped.is_empty());
    }

    #[test]
    fn corrupt_lines_are_skipped_with_exact_indices() {
        let list = parse_targets(
            "good.example:81\n\
             bad port.example:99999\n\
             :443\n\
             weird/chars.example\n\
             [::1]:80\n\
             other.example:0\n",
        );
        assert_eq!(list.targets.len(), 1);
        let lines: Vec<usize> = list.skipped.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5, 6]);
        assert!(list.skipped[0].reason.contains("invalid port"));
        assert!(list.skipped[1].reason.contains("missing host"));
        assert!(
            list.skipped[2].reason.contains('/'),
            "{}",
            list.skipped[2].reason
        );
        assert!(list.skipped[3].reason.contains("IPv6"));
        assert!(list.skipped[4].reason.contains("1-65535"));
    }

    #[test]
    fn empty_input_is_empty_not_an_error() {
        let list = parse_targets("\n# only comments\n\n");
        assert!(list.targets.is_empty());
        assert!(list.skipped.is_empty());
        assert_eq!(list.duplicates, 0);
    }
}
