//! [`NetTransport`]: the census engine's real-socket probe source.
//!
//! Implements `caai-core`'s [`ProbeTransport`] seam: the engine asks
//! for dense ids `0..population`, the transport maps each id to a
//! resolved target, runs the ladder through the reactor, and reduces
//! the outcome with the *same* verdict pipeline the simulator uses
//! ([`verdict_for_outcome`]). Unresolvable targets and dead reactors
//! never panic and never block: they reduce to
//! `Invalid(TransportAborted)` records, the census's skip-and-report
//! idiom at the transport layer.
//!
//! Observability: rung attempts and gather completions recorded by the
//! session's [`LadderCore`](crate::core::LadderCore) are replayed into
//! the per-probe subscriber on the *calling* worker thread (the
//! reactor thread only emits its own `ReactorTicked` /
//! `RateLimiterStalled` events into the transport-wide subscriber), so
//! `--metrics` floors hold identically for simulated and live runs.

use std::net::{Ipv4Addr, ToSocketAddrs};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use caai_core::census::{verdict_for_outcome, CensusRecord};
use caai_core::{CaaiClassifier, GatherOutcome, InvalidReason, ProbeTransport, WindowTrace};
use caai_netem::EnvironmentId;
use caai_obs::{
    span_begin, Environment, GatherFinished, NetSessionEnded, RungAttemptEnded, RungAttemptStarted,
    SpanKind, Subscriber,
};

use crate::reactor::{Command, NetConfig, Reactor, SessionResult, SessionStats};
use crate::sys::Waker;
use crate::targets::Target;

fn obs_environment(env: EnvironmentId) -> Environment {
    match env {
        EnvironmentId::A => Environment::A,
        EnvironmentId::B => Environment::B,
    }
}

/// A live-socket [`ProbeTransport`] over a resolved target list.
///
/// `R` is the *reactor's* subscriber (shared, `Sync`); each `probe`
/// call additionally gets the engine worker's own subscriber, like
/// every other instrumentation point in the workspace.
pub struct NetTransport<R: Subscriber + Send + Sync + 'static> {
    /// Per-id resolution: ready targets or the reason they will abort.
    resolved: Vec<Result<(Ipv4Addr, u16), String>>,
    targets: Vec<Target>,
    classifier: CaaiClassifier,
    first_rung: u32,
    sender: Mutex<mpsc::Sender<Command>>,
    waker: Waker,
    reactor_thread: Option<JoinHandle<()>>,
    _obs: Arc<R>,
}

impl<R: Subscriber + Send + Sync + 'static> NetTransport<R> {
    /// Resolves `targets`, starts the reactor thread, and returns the
    /// transport. Resolution happens once, up front: a census must not
    /// re-resolve (and possibly re-route) mid-run. Unresolvable targets
    /// are kept — they probe as instant `TransportAborted` records.
    pub fn new(
        targets: Vec<Target>,
        classifier: CaaiClassifier,
        config: NetConfig,
        obs: Arc<R>,
    ) -> std::io::Result<Self> {
        let resolved = targets.iter().map(resolve).collect();
        let first_rung = config.prober.wmax_ladder.first().copied().unwrap_or(512);
        let (reactor, waker) = Reactor::new(config, Arc::clone(&obs))?;
        let (tx, rx) = mpsc::channel();
        let reactor_thread = std::thread::Builder::new()
            .name("caai-net-reactor".into())
            .spawn(move || reactor.run(rx))?;
        Ok(NetTransport {
            resolved,
            targets,
            classifier,
            first_rung,
            sender: Mutex::new(tx),
            waker,
            reactor_thread: Some(reactor_thread),
            _obs: obs,
        })
    }

    /// Targets that failed DNS/address resolution: `(id, target, why)`.
    /// The CLI reports these up front, skip-and-report style.
    pub fn resolution_failures(&self) -> Vec<(u32, &Target, &str)> {
        self.resolved
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                Ok(_) => None,
                Err(why) => Some((i as u32, &self.targets[i], why.as_str())),
            })
            .collect()
    }

    /// Submits a probe without blocking: the result arrives on the
    /// returned channel. Used by the concurrency tests and benches to
    /// load the reactor beyond one in-flight session per caller.
    pub fn probe_async(&self, id: u32) -> mpsc::Receiver<SessionResult> {
        let (tx, rx) = mpsc::channel();
        match self.resolved.get(id as usize) {
            Some(Ok((ip, port))) => {
                let sent =
                    self.sender
                        .lock()
                        .expect("reactor sender poisoned")
                        .send(Command::Probe {
                            ip: *ip,
                            port: *port,
                            reply: tx,
                        });
                if sent.is_ok() {
                    self.waker.wake();
                }
                // On send failure the reactor is gone; dropping `tx`
                // closes the channel and the caller reduces to aborted.
            }
            _ => {
                let _ = tx.send(self.aborted_result());
            }
        }
        rx
    }

    /// The outcome of a probe that never reached the wire.
    fn aborted_result(&self) -> SessionResult {
        SessionResult {
            outcome: GatherOutcome {
                pair: None,
                failed_attempts: vec![WindowTrace {
                    env: EnvironmentId::A,
                    wmax_threshold: self.first_rung,
                    mss: 0,
                    pre: Vec::new(),
                    post: Vec::new(),
                    invalid: Some(InvalidReason::TransportAborted),
                }],
                defense_overhead: None,
            },
            rungs: Vec::new(),
            stats: SessionStats {
                aborted: true,
                ..SessionStats::default()
            },
        }
    }
}

impl<R: Subscriber + Send + Sync + 'static> ProbeTransport for NetTransport<R> {
    fn population(&self) -> u64 {
        self.resolved.len() as u64
    }

    fn probe<S: Subscriber>(&self, id: u32, _seed: u64, obs: &S) -> CensusRecord {
        // The worker-side gather span: submission to result, queueing in
        // the reactor included (that wait IS this server's wall cost).
        let gather_span = span_begin(obs, SpanKind::Gather, i64::from(id), 0);
        let result = match self.probe_async(id).recv() {
            Ok(result) => result,
            // Reactor died mid-probe: reduce, don't panic.
            Err(_) => self.aborted_result(),
        };
        gather_span.end(obs);
        // Replay the session's rung history into the worker's
        // subscriber, mirroring what the simulator emits inline.
        for rung in &result.rungs {
            obs.on_rung_attempt_started(&RungAttemptStarted {
                environment: obs_environment(rung.env),
                wmax: rung.wmax,
            });
            obs.on_rung_attempt_ended(&RungAttemptEnded {
                environment: obs_environment(rung.env),
                wmax: rung.wmax,
                rounds: rung.rounds,
                valid: rung.valid,
                stalled: rung.stalled,
                invalid_reason: rung.invalid_reason,
            });
        }
        obs.on_gather_finished(&GatherFinished {
            usable: result.outcome.pair.is_some(),
            failed_attempts: result.outcome.failed_attempts.len() as u32,
            wmax: result.outcome.pair.as_ref().map(|p| p.wmax_threshold()),
        });
        obs.on_net_session_ended(&NetSessionEnded {
            connections: result.stats.connections,
            retries: result.stats.retries,
            timed_out: result.stats.timeouts,
            aborted: result.stats.aborted,
        });
        let classify_span = span_begin(obs, SpanKind::Classify, i64::from(id), 0);
        let (verdict, _) = verdict_for_outcome(&result.outcome, &self.classifier);
        classify_span.end(obs);
        CensusRecord {
            server_id: id,
            truth: None,
            verdict,
        }
    }
}

impl<R: Subscriber + Send + Sync + 'static> Drop for NetTransport<R> {
    fn drop(&mut self) {
        if let Ok(sender) = self.sender.lock() {
            let _ = sender.send(Command::Shutdown);
        }
        self.waker.wake();
        if let Some(t) = self.reactor_thread.take() {
            let _ = t.join();
        }
    }
}

/// Resolves one target to an IPv4 socket address. Hostnames go through
/// the system resolver; literals parse directly (no lookup, no
/// surprises on offline machines).
fn resolve(target: &Target) -> Result<(Ipv4Addr, u16), String> {
    if let Ok(ip) = target.host.parse::<Ipv4Addr>() {
        return Ok((ip, target.port));
    }
    let addrs = (target.host.as_str(), target.port)
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {:?}: {e}", target.host))?;
    for addr in addrs {
        if let std::net::SocketAddr::V4(v4) = addr {
            return Ok((*v4.ip(), v4.port()));
        }
    }
    Err(format!(
        "{:?} resolves to no IPv4 address (the reactor speaks IPv4 only)",
        target.host
    ))
}
