//! A hashed timer wheel for the reactor.
//!
//! Thousands of concurrent probe sessions each keep one or two timers
//! alive (an IO deadline, a paced send). A binary heap would pay
//! `O(log n)` per insert *and* per cancellation; the wheel pays `O(1)`
//! per insert and makes cancellation free by never cancelling — a
//! fired timer carries its deadline, and a session that re-armed since
//! simply ignores the stale firing (the deadline it stores no longer
//! matches). Slots are 4 ms wide and the ring spans ~1 s; longer
//! timers (connect timeouts, backoffs) wait in an overflow map that
//! cascades into the ring as the cursor advances.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// What a timer firing means to the session it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// The peer had this long to produce progress; the session times out.
    IoDeadline,
    /// A paced send (`--pace`) is due.
    SendDue,
    /// A retry backoff elapsed; reconnect now.
    Backoff,
    /// The rate limiter predicted a token would be available now.
    RatePermit,
}

/// One armed timer.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    /// Session token the firing is delivered to.
    pub token: u64,
    /// What the firing means.
    pub kind: TimerKind,
    /// The armed deadline, echoed back so the session can detect stale
    /// firings after re-arming.
    pub deadline: Instant,
}

const SLOT_MS: u64 = 4;
const SLOTS: usize = 256;

/// The wheel. All operations take `now` explicitly so tests can drive
/// virtual schedules.
#[derive(Debug)]
pub struct TimerWheel {
    start: Instant,
    /// Ring of slots; absolute slot `s` lives at `s % SLOTS`.
    ring: Vec<Vec<Timer>>,
    /// Absolute index of the next slot to fire.
    cursor: u64,
    /// Timers beyond the ring's horizon, keyed by absolute slot.
    overflow: BTreeMap<u64, Vec<Timer>>,
    len: usize,
}

impl TimerWheel {
    /// An empty wheel anchored at `now`.
    pub fn new(now: Instant) -> Self {
        TimerWheel {
            start: now,
            ring: (0..SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            overflow: BTreeMap::new(),
            len: 0,
        }
    }

    fn slot_of(&self, deadline: Instant) -> u64 {
        let ms = deadline.saturating_duration_since(self.start).as_millis() as u64;
        // Round up: a timer must never fire early.
        ms.div_ceil(SLOT_MS)
    }

    fn slot_time(&self, slot: u64) -> Instant {
        self.start + Duration::from_millis(slot * SLOT_MS)
    }

    /// Arms a timer. Deadlines in the past fire on the next expire call.
    pub fn insert(&mut self, timer: Timer) {
        let slot = self.slot_of(timer.deadline).max(self.cursor);
        self.len += 1;
        if slot < self.cursor + SLOTS as u64 {
            self.ring[(slot % SLOTS as u64) as usize].push(timer);
        } else {
            self.overflow.entry(slot).or_default().push(timer);
        }
    }

    /// Armed timers (stale ones included — they fire and get ignored).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The earliest pending deadline, for sizing the poll timeout.
    pub fn next_deadline(&self) -> Option<Instant> {
        if self.len == 0 {
            return None;
        }
        for offset in 0..SLOTS as u64 {
            let slot = self.cursor + offset;
            if !self.ring[(slot % SLOTS as u64) as usize].is_empty() {
                let ring_time = self.slot_time(slot);
                // An overflow slot can still precede a late ring entry.
                return match self.overflow.keys().next() {
                    Some(&o) if o < slot => Some(self.slot_time(o)),
                    _ => Some(ring_time),
                };
            }
        }
        self.overflow.keys().next().map(|&s| self.slot_time(s))
    }

    /// Fires everything due at `now`, appending to `out`.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<Timer>) {
        while self.len > 0 && self.slot_time(self.cursor) <= now {
            let slot = self.cursor;
            let fired = std::mem::take(&mut self.ring[(slot % SLOTS as u64) as usize]);
            self.len -= fired.len();
            out.extend(fired);
            self.cursor += 1;
            // Cascade: the slot one ring-length out is now addressable.
            let horizon = self.cursor + SLOTS as u64 - 1;
            if let Some(timers) = self.overflow.remove(&horizon) {
                self.ring[(horizon % SLOTS as u64) as usize] = timers;
            }
            // Any overflow entries that were *behind* the horizon (can
            // happen after a long stall) fire immediately.
            while let Some(&first) = self.overflow.keys().next() {
                if first > horizon {
                    break;
                }
                let timers = self.overflow.remove(&first).expect("key just observed");
                if first <= slot {
                    self.len -= timers.len();
                    out.extend(timers);
                } else {
                    let cell = &mut self.ring[(first % SLOTS as u64) as usize];
                    cell.extend(timers);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(token: u64, deadline: Instant) -> Timer {
        Timer {
            token,
            kind: TimerKind::IoDeadline,
            deadline,
        }
    }

    #[test]
    fn timers_fire_in_slot_order_and_never_early() {
        let base = Instant::now();
        let mut wheel = TimerWheel::new(base);
        wheel.insert(t(1, base + Duration::from_millis(10)));
        wheel.insert(t(2, base + Duration::from_millis(500)));
        wheel.insert(t(3, base + Duration::from_millis(5_000))); // overflow

        let mut fired = Vec::new();
        wheel.expire(base + Duration::from_millis(5), &mut fired);
        assert!(fired.is_empty(), "nothing due yet");

        wheel.expire(base + Duration::from_millis(20), &mut fired);
        assert_eq!(fired.iter().map(|x| x.token).collect::<Vec<_>>(), [1]);

        fired.clear();
        wheel.expire(base + Duration::from_millis(6_000), &mut fired);
        let mut tokens: Vec<u64> = fired.iter().map(|x| x.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, [2, 3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_deadline_tracks_the_earliest_timer() {
        let base = Instant::now();
        let mut wheel = TimerWheel::new(base);
        assert_eq!(wheel.next_deadline(), None);
        wheel.insert(t(1, base + Duration::from_secs(10)));
        let far = wheel.next_deadline().unwrap();
        wheel.insert(t(2, base + Duration::from_millis(8)));
        assert!(wheel.next_deadline().unwrap() < far);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_expire() {
        let base = Instant::now();
        let mut wheel = TimerWheel::new(base + Duration::from_secs(1));
        wheel.insert(t(9, base)); // already overdue
        let mut fired = Vec::new();
        wheel.expire(base + Duration::from_secs(1), &mut fired);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn cascade_survives_a_long_stall() {
        let base = Instant::now();
        let mut wheel = TimerWheel::new(base);
        for i in 0..100 {
            wheel.insert(t(i, base + Duration::from_millis(1_500 + i * 13)));
        }
        // One giant stall straight past everything.
        let mut fired = Vec::new();
        wheel.expire(base + Duration::from_secs(60), &mut fired);
        assert_eq!(fired.len(), 100);
        assert!(wheel.is_empty());
    }
}
