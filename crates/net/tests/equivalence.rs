//! The correctness pin for the whole crate: the sans-IO
//! [`LadderCore`]/[`ServerCore`] pair, driven against each other
//! through the wire protocol (encode → decode on both directions, so
//! framing is under test too), must produce *exactly* the
//! `GatherOutcome` the simulator's `Prober::gather` produces over a
//! clean path. Every reactor/loopback behavior downstream reduces to
//! this equivalence: if these cores agree with the simulator, a live
//! census agrees with a simulated one.

use caai_congestion::{AlgorithmId, ALL_IDENTIFIED};
use caai_core::prober::{GatherOutcome, Prober, ProberConfig};
use caai_core::ServerUnderTest;
use caai_net::frame::{ClientFrame, FrameDecoder, ServerFrame, Wire};
use caai_net::{LadderCore, Reply, ServerCore, ServerProfile, Step};
use caai_netem::PathConfig;
use caai_webmodel::PopulationConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Round-trips a frame through its wire encoding, so the driver also
/// exercises the framing layer both directions.
fn wire_roundtrip<F: Wire + PartialEq + std::fmt::Debug>(frame: &F) -> F {
    let mut bytes = Vec::new();
    frame.encode_into(&mut bytes);
    let mut decoder = FrameDecoder::new();
    decoder.push(&bytes);
    let decoded = decoder
        .next::<F>()
        .expect("self-encoded frame must decode")
        .expect("one frame in, one frame out");
    assert!(decoder.next::<F>().unwrap().is_none(), "no trailing frame");
    decoded
}

/// Drives the client ladder against a fresh [`ServerCore`] per
/// connection — exactly what the reactor does over sockets, minus the
/// sockets.
fn drive(config: ProberConfig, profile: &ServerProfile) -> GatherOutcome {
    let mut client = LadderCore::new(config);
    let mut server: Option<ServerCore> = None;
    let mut step = client.start();
    for _ in 0..1_000_000 {
        match step {
            Step::Connect => {
                server = Some(ServerCore::new(profile.clone()));
                step = client.on_connected();
            }
            Step::Send {
                frames,
                close_after,
                ..
            } => {
                let srv = server.as_mut().expect("send with no open connection");
                let mut replies: Vec<ServerFrame> = Vec::new();
                for frame in &frames {
                    let decoded: ClientFrame = wire_roundtrip(frame);
                    let Reply { frames, .. } = srv
                        .on_frame(&decoded)
                        .expect("an honest client never violates the protocol");
                    replies.extend(frames);
                }
                if close_after {
                    assert!(replies.is_empty(), "a closing send expects no reply");
                    server = None;
                    step = client.on_closed();
                } else {
                    assert_eq!(replies.len(), 1, "one reply-bearing frame per round");
                    let reply = wire_roundtrip(&replies[0]);
                    step = client
                        .on_frame(&reply)
                        .expect("an honest server never violates the protocol");
                }
            }
            Step::Done(outcome) => return *outcome,
        }
    }
    panic!("ladder never finished");
}

fn simulated(config: ProberConfig, server: &ServerUnderTest, seed: u64) -> GatherOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    Prober::new(config).gather(server, &PathConfig::clean(), &mut rng)
}

#[test]
fn ideal_servers_match_the_simulator_for_all_fourteen_algorithms() {
    for algorithm in ALL_IDENTIFIED {
        let wire = drive(ProberConfig::default(), &ServerProfile::ideal(algorithm));
        let sim = simulated(
            ProberConfig::default(),
            &ServerUnderTest::ideal(algorithm),
            7,
        );
        assert_eq!(
            wire, sim,
            "{algorithm:?}: wire-protocol outcome diverged from the simulator"
        );
        assert!(
            wire.pair.is_some(),
            "{algorithm:?}: an ideal server must yield a usable pair"
        );
    }
}

#[test]
fn sampled_web_servers_match_the_simulator() {
    // A slice of the synthetic census population: short pages, F-RTO,
    // ssthresh caching, MSS floors — the messy cases, not just the lab.
    let population = PopulationConfig {
        size: 40,
        frto_rate: 0.5,
        ssthresh_caching_rate: 0.5,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let mut usable = 0u32;
    for web in population.generate(&mut rng) {
        let wire = drive(
            ProberConfig::default(),
            &ServerProfile::from_web_server(&web),
        );
        let sim = simulated(
            ProberConfig::default(),
            &ServerUnderTest::from_web_server(&web),
            web.id as u64,
        );
        assert_eq!(
            wire, sim,
            "server {}: wire-protocol outcome diverged from the simulator",
            web.id
        );
        usable += u32::from(wire.pair.is_some());
    }
    assert!(usable > 0, "the sample must contain some usable servers");
}

#[test]
fn the_drive_is_deterministic() {
    let a = drive(
        ProberConfig::default(),
        &ServerProfile::ideal(AlgorithmId::CubicV2),
    );
    let b = drive(
        ProberConfig::default(),
        &ServerProfile::ideal(AlgorithmId::CubicV2),
    );
    assert_eq!(a, b);
}
