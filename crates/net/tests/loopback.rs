//! Reactor-over-real-sockets integration: [`NetTransport`] probing
//! [`EmulatedServer`]s on loopback. These tests never leave 127.0.0.1.
//!
//! The equivalence suite pins the sans-IO cores to the simulator; this
//! suite pins the *plumbing* — nonblocking connects, the timer wheel,
//! retries, the rate limiter, concurrency at the acceptance floor of
//! 256 sessions, and the reduction of every transport failure to
//! `TransportAborted` instead of a panic or a hang.

use std::sync::Arc;
use std::time::Duration;

use caai_congestion::AlgorithmId;
use caai_core::census::verdict_for_outcome;
use caai_core::classify::CaaiClassifier;
use caai_core::prober::{Prober, ProberConfig};
use caai_core::training::{build_training_set, TrainingConfig};
use caai_core::{InvalidReason, ProbeTransport, ServerUnderTest};
use caai_net::reactor::NetConfig;
use caai_net::{Behavior, EmulatedServer, NetTransport, ServerProfile, Target};
use caai_netem::rng::seeded;
use caai_netem::{ConditionDb, PathConfig};
use caai_obs::MetricsSubscriber;

fn classifier() -> CaaiClassifier {
    static CLASSIFIER: std::sync::OnceLock<CaaiClassifier> = std::sync::OnceLock::new();
    CLASSIFIER
        .get_or_init(|| {
            let mut rng = seeded(11);
            let data = build_training_set(
                &TrainingConfig::quick(2),
                &ConditionDb::paper_2011(),
                &mut rng,
            );
            CaaiClassifier::train(&data, &mut rng)
        })
        .clone()
}

fn fast_config() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_secs(5),
        io_timeout: Duration::from_secs(10),
        ..NetConfig::default()
    }
}

#[test]
fn live_verdicts_agree_with_the_simulator() {
    let algorithms = [
        AlgorithmId::Reno,
        AlgorithmId::CubicV2,
        AlgorithmId::Htcp,
        AlgorithmId::Vegas,
    ];
    let servers: Vec<EmulatedServer> = algorithms
        .iter()
        .map(|&a| EmulatedServer::spawn(ServerProfile::ideal(a), Behavior::Normal).unwrap())
        .collect();
    let targets: Vec<Target> = servers.iter().map(|s| s.target()).collect();
    let classifier = classifier();
    let obs = Arc::new(MetricsSubscriber::new());
    let transport =
        NetTransport::new(targets, classifier.clone(), fast_config(), Arc::clone(&obs)).unwrap();
    assert_eq!(transport.population(), algorithms.len() as u64);
    assert!(transport.resolution_failures().is_empty());

    for (id, &algorithm) in algorithms.iter().enumerate() {
        let live = transport.probe(id as u32, 0, &*obs);
        let mut rng = seeded(id as u64);
        let sim_outcome = Prober::new(ProberConfig::default()).gather(
            &ServerUnderTest::ideal(algorithm),
            &PathConfig::clean(),
            &mut rng,
        );
        let (sim_verdict, _) = verdict_for_outcome(&sim_outcome, &classifier);
        assert_eq!(
            live.verdict, sim_verdict,
            "{algorithm:?}: live verdict diverged from the simulator's"
        );
    }

    let snap = obs.snapshot();
    assert_eq!(snap.counters["net.sessions"], algorithms.len() as u64);
    assert_eq!(snap.counters["net.sessions_aborted"], 0);
    // Two usable rungs (env A + env B) = at least two connections each.
    assert!(snap.counters["net.connections"] >= 2 * algorithms.len() as u64);
    assert!(snap.counters["net.reactor_ticks"] > 0);
    // Rung attempts were replayed into the probe-side subscriber.
    assert_eq!(snap.counters["gather.runs"], algorithms.len() as u64);
    assert!(snap.counters["gather.attempts"] >= 2 * algorithms.len() as u64);
}

#[test]
fn reactor_sustains_256_concurrent_sessions() {
    let servers: Vec<EmulatedServer> = (0..8)
        .map(|_| {
            EmulatedServer::spawn(ServerProfile::ideal(AlgorithmId::CubicV2), Behavior::Normal)
                .unwrap()
        })
        .collect();
    // 256 targets round-robining over 8 listeners.
    let targets: Vec<Target> = (0..256).map(|i| servers[i % 8].target()).collect();
    let obs = Arc::new(MetricsSubscriber::new());
    let config = NetConfig {
        max_sessions: 512,
        ..fast_config()
    };
    let transport = NetTransport::new(targets, classifier(), config, Arc::clone(&obs)).unwrap();

    // Submit every probe before collecting any result: the reactor must
    // hold all 256 sessions in flight at once.
    let receivers: Vec<_> = (0..256).map(|id| transport.probe_async(id)).collect();
    for (id, rx) in receivers.into_iter().enumerate() {
        let result = rx
            .recv_timeout(Duration::from_secs(120))
            .unwrap_or_else(|e| panic!("session {id} never finished: {e}"));
        assert!(
            result.outcome.pair.is_some(),
            "session {id} failed: {:?}",
            result.outcome.failure_reason()
        );
        assert!(!result.stats.aborted);
    }

    let snap = obs.snapshot();
    assert!(
        snap.histograms["net.active_sessions"].max >= 256,
        "reactor never held 256 concurrent sessions (peak {})",
        snap.histograms["net.active_sessions"].max
    );
}

#[test]
fn rate_limiter_paces_admissions_and_reports_stalls() {
    let server =
        EmulatedServer::spawn(ServerProfile::ideal(AlgorithmId::Reno), Behavior::Normal).unwrap();
    let targets: Vec<Target> = (0..4).map(|_| server.target()).collect();
    let obs = Arc::new(MetricsSubscriber::new());
    let config = NetConfig {
        rate: 10.0, // session 1 admits instantly; 2..4 must wait ~100 ms each
        ..fast_config()
    };
    let transport = NetTransport::new(targets, classifier(), config, Arc::clone(&obs)).unwrap();
    let receivers: Vec<_> = (0..4).map(|id| transport.probe_async(id)).collect();
    for rx in receivers {
        let result = rx.recv_timeout(Duration::from_secs(60)).unwrap();
        assert!(result.outcome.pair.is_some());
    }
    let snap = obs.snapshot();
    assert!(
        snap.counters["net.rate_limiter_stalls"] >= 1,
        "pacing 4 sessions at 10/s must stall at least once"
    );
    assert!(snap.histograms["net.limiter_wait_us"].count >= 1);
}

#[test]
fn stalled_server_times_out_retries_and_aborts() {
    let server = EmulatedServer::spawn(
        ServerProfile::ideal(AlgorithmId::Reno),
        Behavior::StallAfterAccept,
    )
    .unwrap();
    let obs = Arc::new(MetricsSubscriber::new());
    let config = NetConfig {
        io_timeout: Duration::from_millis(200),
        backoff: Duration::from_millis(10),
        retries: 1,
        ..NetConfig::default()
    };
    let transport = NetTransport::new(
        vec![server.target()],
        classifier(),
        config,
        Arc::clone(&obs),
    )
    .unwrap();
    let result = transport
        .probe_async(0)
        .recv_timeout(Duration::from_secs(30))
        .unwrap();
    assert!(
        result.stats.aborted,
        "a stalled peer must abort the session"
    );
    assert_eq!(result.stats.retries, 1, "one transport retry was budgeted");
    assert!(result.stats.timeouts >= 2, "both attempts time out");
    assert_eq!(
        result.outcome.failure_reason(),
        Some(InvalidReason::TransportAborted)
    );

    // Through the ProbeTransport seam the same target is a clean
    // Invalid record, not a panic or a hang — and its session stats
    // land in the caller's subscriber.
    let record = transport.probe(0, 0, &*obs);
    assert_eq!(record.server_id, 0);
    let snap = obs.snapshot();
    assert_eq!(snap.counters["net.sessions"], 1);
    assert_eq!(snap.counters["net.sessions_aborted"], 1);
    assert!(snap.counters["net.timeouts"] >= 2);
    assert!(snap.counters["net.retries"] >= 1);
}

#[test]
fn rst_mid_ladder_reduces_to_transport_aborted() {
    let server = EmulatedServer::spawn(
        ServerProfile::ideal(AlgorithmId::CubicV2),
        Behavior::RstAfterBursts(3),
    )
    .unwrap();
    let obs = Arc::new(MetricsSubscriber::new());
    let config = NetConfig {
        retries: 0,
        ..fast_config()
    };
    let transport = NetTransport::new(
        vec![server.target()],
        classifier(),
        config,
        Arc::clone(&obs),
    )
    .unwrap();
    let result = transport
        .probe_async(0)
        .recv_timeout(Duration::from_secs(30))
        .unwrap();
    assert!(result.stats.aborted);
    assert_eq!(
        result.outcome.failure_reason(),
        Some(InvalidReason::TransportAborted),
        "a mid-ladder RST is an invalid probe, not a crash"
    );
    let snap = obs.snapshot();
    assert_eq!(snap.counters["net.sessions"], 0, "no probe() call yet");
}

#[test]
fn unresolvable_targets_reduce_to_aborted_records() {
    let target = Target {
        host: "definitely-not-a-real-host.invalid".to_string(),
        port: 80,
    };
    let obs = Arc::new(MetricsSubscriber::new());
    let transport =
        NetTransport::new(vec![target], classifier(), fast_config(), Arc::clone(&obs)).unwrap();
    let failures = transport.resolution_failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, 0);
    let result = transport
        .probe_async(0)
        .recv_timeout(Duration::from_secs(5))
        .unwrap();
    assert!(result.stats.aborted);
    assert_eq!(
        result.outcome.failure_reason(),
        Some(InvalidReason::TransportAborted)
    );
}
