//! The measured-network-condition database of §VII-A.
//!
//! The paper characterizes real paths to 5000 popular web servers by
//! (average RTT, RTT standard deviation, packet-loss rate), publishing the
//! three marginal CDFs as Figs. 4, 10 and 11, and replays randomly drawn
//! triples with Netem while collecting the 5600-vector training set.
//!
//! The raw measurements are not available, so this module encodes the three
//! CDFs as piecewise-linear curves matched to the shapes the paper reports
//! (e.g. "almost all actual RTTs are less than 0.8 s" in Fig. 4) — the
//! substitution documented in `DESIGN.md`. Conditions are drawn with
//! independent marginals, exactly like the paper's random triple selection.

use crate::stats::Cdf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One measured network condition: the triple the paper replays per
/// training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkCondition {
    /// Average path RTT in seconds.
    pub rtt_mean: f64,
    /// Standard deviation of the path RTT in seconds.
    pub rtt_std: f64,
    /// Packet-loss rate (both directions, i.i.d. per packet).
    pub loss_rate: f64,
}

/// The empirical condition database (Figs. 4, 10, 11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionDb {
    rtt: Cdf,
    rtt_std: Cdf,
    loss: Cdf,
}

impl ConditionDb {
    /// The distributions measured in 2010/2011 from the paper's vantage
    /// point, reconstructed from the published CDF shapes.
    pub fn paper_2011() -> Self {
        ConditionDb {
            // Fig. 4: median well under 0.2 s, ~99% below 0.8 s.
            rtt: Cdf::from_points(vec![
                (0.005, 0.00),
                (0.020, 0.08),
                (0.050, 0.28),
                (0.100, 0.52),
                (0.150, 0.68),
                (0.200, 0.78),
                (0.300, 0.90),
                (0.400, 0.95),
                (0.600, 0.98),
                (0.800, 0.995),
                (1.500, 1.00),
            ]),
            // Fig. 10: RTT standard deviations, mostly a few ms.
            rtt_std: Cdf::from_points(vec![
                (0.000, 0.00),
                (0.002, 0.25),
                (0.005, 0.45),
                (0.010, 0.62),
                (0.020, 0.75),
                (0.050, 0.87),
                (0.100, 0.93),
                (0.200, 0.97),
                (0.500, 1.00),
            ]),
            // Fig. 11: packet-loss rates, mostly near zero with a tail.
            loss: Cdf::from_points(vec![
                (0.000, 0.00),
                (0.0005, 0.42),
                (0.001, 0.55),
                (0.005, 0.72),
                (0.010, 0.80),
                (0.020, 0.87),
                (0.050, 0.94),
                (0.100, 0.98),
                (0.200, 1.00),
            ]),
        }
    }

    /// Builds a database from explicit CDFs (used by ablation benches).
    pub fn from_cdfs(rtt: Cdf, rtt_std: Cdf, loss: Cdf) -> Self {
        ConditionDb { rtt, rtt_std, loss }
    }

    /// Draws one condition with independent marginals (§VII-A: "randomly
    /// selects an average RTT, an RTT standard deviation, and a packet-loss
    /// rate").
    pub fn sample(&self, rng: &mut impl Rng) -> NetworkCondition {
        NetworkCondition {
            rtt_mean: self.rtt.sample(rng),
            rtt_std: self.rtt_std.sample(rng),
            loss_rate: self.loss.sample(rng).clamp(0.0, 1.0),
        }
    }

    /// The RTT CDF (Fig. 4).
    pub fn rtt_cdf(&self) -> &Cdf {
        &self.rtt
    }

    /// The RTT standard-deviation CDF (Fig. 10).
    pub fn rtt_std_cdf(&self) -> &Cdf {
        &self.rtt_std
    }

    /// The packet-loss-rate CDF (Fig. 11).
    pub fn loss_cdf(&self) -> &Cdf {
        &self.loss
    }
}

impl Default for ConditionDb {
    fn default() -> Self {
        Self::paper_2011()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn almost_all_rtts_below_point_eight() {
        // The property §IV-B relies on to justify the 1.0 s emulated RTT.
        let db = ConditionDb::paper_2011();
        assert!(db.rtt_cdf().eval(0.8) >= 0.99);
        let mut rng = seeded(11);
        let n = 5000;
        let below = (0..n)
            .filter(|_| db.sample(&mut rng).rtt_mean < 0.8)
            .count();
        assert!(below as f64 / n as f64 > 0.98);
    }

    #[test]
    fn median_rtt_is_around_100ms() {
        let db = ConditionDb::paper_2011();
        let median = db.rtt_cdf().quantile(0.5);
        assert!((0.05..=0.15).contains(&median), "median {median}");
    }

    #[test]
    fn loss_is_mostly_negligible() {
        let db = ConditionDb::paper_2011();
        assert!(
            db.loss_cdf().eval(0.01) >= 0.75,
            "80% of paths lose under 1%"
        );
        assert!(db.loss_cdf().eval(0.2) >= 0.999);
    }

    #[test]
    fn samples_are_valid_conditions() {
        let db = ConditionDb::paper_2011();
        let mut rng = seeded(12);
        for _ in 0..1000 {
            let c = db.sample(&mut rng);
            assert!(c.rtt_mean > 0.0 && c.rtt_mean < 2.0);
            assert!(c.rtt_std >= 0.0 && c.rtt_std <= 0.5);
            assert!((0.0..=0.2).contains(&c.loss_rate));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let db = ConditionDb::paper_2011();
        let a = db.sample(&mut seeded(99));
        let b = db.sample(&mut seeded(99));
        assert_eq!(a, b);
    }
}
