//! Server-side traffic-analysis defenses against CAAI probing.
//!
//! ROADMAP item 4: a server that suspects it is being fingerprinted can
//! deploy maybenot-style defenses — dummy-packet padding, timing jitter,
//! burst shaping — to distort the window trace the prober measures. This
//! module models those defenses as composable transforms over the server's
//! per-round transmit burst, under a configurable overhead budget.
//!
//! The defense sits between the server's congestion-controlled sender and
//! the path: it sees the burst of real segments the server released this
//! round and decides what actually goes on the wire. Three transforms are
//! modelled:
//!
//! * **Padding** ([`DefenseConfig::Padding`]): inject dummy packets at the
//!   top of the wire sequence space, inflating the window the prober
//!   measures (§IV-D measures windows from sequence-number progress, so
//!   extra distinct sequence numbers directly inflate `w`).
//! * **Jitter** ([`DefenseConfig::Jitter`]): hold randomly chosen packets
//!   until the next round, smearing the burst across round boundaries the
//!   way path-induced late arrivals do — but adversarially, at a chosen
//!   rate.
//! * **Shaping** ([`DefenseConfig::Shaping`]): cap the packets released
//!   per round, flattening the very window growth curve the classifier
//!   keys on.
//!
//! Because padding renumbers real data into an inflated wire sequence
//! space, the defense also answers the reverse question: given a
//! cumulative ACK in wire space, what does it acknowledge in real
//! (server) space? [`DefenseState::unmap_ack`] is that translation — the
//! same bookkeeping a real padding middlebox must do to strip dummy
//! acknowledgements before they reach the TCP stack.
//!
//! Every transform is bounded by [`DefenseSpec::budget`]: the fraction of
//! overhead actions (dummies injected + packets delayed) relative to real
//! packets carried. A defense that has spent its budget passes traffic
//! through unchanged, so the degradation curve measured by
//! `caai defense-sweep` is monotone in the budget.

use caai_tcpsim::{Segment, WirePacket};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One composable defense transform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DefenseConfig {
    /// Inject dummy packets: `rate` expected dummies per real packet
    /// (deterministic accumulator, so overhead is exactly `rate` until the
    /// budget binds).
    Padding {
        /// Expected dummy packets per real packet (≥ 0).
        rate: f64,
    },
    /// Hold each wire packet until the next round with probability
    /// `delay_prob`.
    Jitter {
        /// Per-packet probability of being delayed one round.
        delay_prob: f64,
    },
    /// Release at most `burst_cap` packets per round; the excess carries
    /// into later rounds.
    Shaping {
        /// Maximum packets released per round (≥ 1).
        burst_cap: u32,
    },
}

impl DefenseConfig {
    /// A short stable name for reports and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            DefenseConfig::Padding { .. } => "padding",
            DefenseConfig::Jitter { .. } => "jitter",
            DefenseConfig::Shaping { .. } => "shaping",
        }
    }
}

/// A composed defense: transforms applied in order, under one shared
/// overhead budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefenseSpec {
    /// Transforms, applied in declaration order each round.
    pub defenses: Vec<DefenseConfig>,
    /// Maximum overhead fraction: (dummies + delayed) / real packets.
    /// `0.0` disables every transform; `0.3` allows ~30% overhead.
    pub budget: f64,
}

impl DefenseSpec {
    /// A single-transform spec.
    pub fn single(defense: DefenseConfig, budget: f64) -> Self {
        DefenseSpec {
            defenses: vec![defense],
            budget,
        }
    }

    /// Validates rates and the budget.
    pub fn validate(&self) -> Result<(), String> {
        if !self.budget.is_finite() || self.budget < 0.0 {
            return Err(format!("defense budget out of range: {}", self.budget));
        }
        for d in &self.defenses {
            match *d {
                DefenseConfig::Padding { rate } => {
                    if !rate.is_finite() || rate < 0.0 {
                        return Err(format!("padding rate out of range: {rate}"));
                    }
                }
                DefenseConfig::Jitter { delay_prob } => {
                    if !(0.0..=1.0).contains(&delay_prob) || !delay_prob.is_finite() {
                        return Err(format!("jitter delay_prob out of range: {delay_prob}"));
                    }
                }
                DefenseConfig::Shaping { burst_cap } => {
                    if burst_cap == 0 {
                        return Err("shaping burst_cap must be >= 1".to_string());
                    }
                }
            }
        }
        Ok(())
    }
}

/// Overhead accounting for one defended connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefenseOverhead {
    /// Real data packets carried.
    pub real: u64,
    /// Dummy packets injected.
    pub dummy: u64,
    /// Real packets delayed at least one round (jitter + shaping).
    pub delayed: u64,
}

impl DefenseOverhead {
    /// Folds another connection's overhead into this accumulator.
    pub fn absorb(&mut self, other: DefenseOverhead) {
        self.real += other.real;
        self.dummy += other.dummy;
        self.delayed += other.delayed;
    }

    /// Overhead actions per real packet (0 when nothing real flowed).
    pub fn fraction(&self) -> f64 {
        if self.real == 0 {
            0.0
        } else {
            (self.dummy + self.delayed) as f64 / self.real as f64
        }
    }
}

/// Wire-sequence renumbering: real sequence space → inflated wire space.
///
/// Kept as a monotone breakpoint list `(real_start, offset)`: a real
/// sequence `r` in region `[real_start_i, real_start_{i+1})` maps to
/// `r + offset_i`. Dummies occupy the gaps between regions, always
/// allocated at the current top of the wire space, so offsets only grow.
#[derive(Debug, Clone, Default)]
struct SeqMap {
    /// `(real_start, offset)` pairs, both strictly increasing.
    breakpoints: Vec<(u64, u64)>,
    /// Next never-mapped real sequence number.
    max_real: u64,
    /// Next unused wire sequence number.
    frontier: u64,
    /// Offset the next *new* real packet will get.
    cur_offset: u64,
}

impl SeqMap {
    fn new() -> Self {
        SeqMap {
            breakpoints: vec![(0, 0)],
            max_real: 0,
            frontier: 0,
            cur_offset: 0,
        }
    }

    /// Maps one real segment to wire space. Retransmissions reuse their
    /// original mapping; new data extends the frontier.
    fn map(&mut self, real: u64) -> u64 {
        if real < self.max_real {
            // Retransmission: find its historical region.
            let i = self
                .breakpoints
                .partition_point(|&(start, _)| start <= real)
                - 1;
            return real + self.breakpoints[i].1;
        }
        let last = self.breakpoints.last_mut().expect("never empty");
        if last.1 != self.cur_offset {
            if last.0 == real {
                last.1 = self.cur_offset;
            } else {
                self.breakpoints.push((real, self.cur_offset));
            }
        }
        let wire = real + self.cur_offset;
        self.max_real = real + 1;
        self.frontier = self.frontier.max(wire + 1);
        wire
    }

    /// Allocates one dummy at the top of the wire space.
    fn alloc_dummy(&mut self) -> u64 {
        let wire = self.frontier;
        self.frontier += 1;
        self.cur_offset = self.frontier - self.max_real;
        wire
    }

    /// Translates a wire-space cumulative ACK back to real space: the
    /// number of real packets fully acknowledged by `wire_cum`.
    fn unmap_cum(&self, wire_cum: u64) -> u64 {
        // Last region whose wire start is <= the ACK.
        let i = self
            .breakpoints
            .partition_point(|&(start, off)| start + off <= wire_cum)
            .saturating_sub(1);
        let (start, off) = self.breakpoints[i];
        let next_start = self.breakpoints.get(i + 1).map_or(u64::MAX, |&(s, _)| s);
        if wire_cum < start + off {
            // ACK predates even the first region's wire start.
            return 0;
        }
        (wire_cum - off).min(next_start).min(self.max_real)
    }
}

/// Per-connection runtime state of a [`DefenseSpec`].
///
/// Create one per probing connection; feed every transmitted burst through
/// [`on_burst`](Self::on_burst) and translate every outgoing cumulative
/// ACK with [`unmap_ack`](Self::unmap_ack).
#[derive(Debug, Clone)]
pub struct DefenseState {
    spec: DefenseSpec,
    map: SeqMap,
    /// Packets held by jitter/shaping for a later round.
    held: Vec<WirePacket>,
    /// Fractional-dummy accumulator for the padding transform.
    pad_acc: f64,
    overhead: DefenseOverhead,
}

impl DefenseState {
    /// Fresh per-connection state for a spec.
    pub fn new(spec: &DefenseSpec) -> Self {
        DefenseState {
            spec: spec.clone(),
            map: SeqMap::new(),
            held: Vec::new(),
            pad_acc: 0.0,
            overhead: DefenseOverhead::default(),
        }
    }

    /// True when jitter/shaping still holds packets for a later round. The
    /// prober must keep running rounds until these drain even if the
    /// server has nothing new to send.
    pub fn has_held(&self) -> bool {
        !self.held.is_empty()
    }

    /// Drops packets still held across a phase boundary (the prober's
    /// emulated timeout): the round structure they were delayed into no
    /// longer exists.
    pub fn drop_held(&mut self) {
        self.held.clear();
    }

    /// Overhead accounted so far.
    pub fn overhead(&self) -> DefenseOverhead {
        self.overhead
    }

    /// How many more overhead actions fit the budget right now.
    fn budget_headroom(&self) -> u64 {
        let spent = (self.overhead.dummy + self.overhead.delayed) as f64;
        let allowed = self.spec.budget * self.overhead.real.max(1) as f64;
        (allowed - spent).max(0.0).floor() as u64
    }

    /// True when one more overhead action still fits the budget.
    fn budget_allows(&self) -> bool {
        self.budget_headroom() >= 1
    }

    /// Transforms one round's transmit burst into the wire packets that
    /// actually leave the server this round.
    ///
    /// Previously held packets are released first (subject to shaping),
    /// then the new burst, then padding dummies. Transforms apply in the
    /// spec's declaration order; every overhead action checks the shared
    /// budget first.
    pub fn on_burst(&mut self, burst: &[Segment], rng: &mut impl Rng) -> Vec<WirePacket> {
        // Map the real burst into wire space and merge the held backlog.
        let mut round: Vec<WirePacket> = std::mem::take(&mut self.held);
        for seg in burst {
            self.overhead.real += 1;
            round.push(WirePacket::data(self.map.map(seg.seq)));
        }

        for defense in self.spec.defenses.clone() {
            match defense {
                DefenseConfig::Padding { rate } => {
                    // One accumulator tick per real packet this round.
                    self.pad_acc += rate * burst.len() as f64;
                    while self.pad_acc >= 1.0 {
                        self.pad_acc -= 1.0;
                        if !self.budget_allows() {
                            self.pad_acc = 0.0;
                            break;
                        }
                        self.overhead.dummy += 1;
                        round.push(WirePacket::padding(self.map.alloc_dummy()));
                    }
                }
                DefenseConfig::Jitter { delay_prob } => {
                    let mut kept = Vec::with_capacity(round.len());
                    for p in round.drain(..) {
                        if rng.random::<f64>() < delay_prob && self.budget_allows() {
                            self.overhead.delayed += 1;
                            self.held.push(p);
                        } else {
                            kept.push(p);
                        }
                    }
                    round = kept;
                }
                DefenseConfig::Shaping { burst_cap } => {
                    // Delay the tail of the burst: the highest sequence
                    // numbers are the window growth the defense wants to
                    // hide. The tail is held as a slice (order preserved)
                    // so the backlog drains lowest-sequence-first — a
                    // LIFO drain would re-expose the full seq span in one
                    // round and hide nothing.
                    let cap = burst_cap as usize;
                    let hold = round
                        .len()
                        .saturating_sub(cap)
                        .min(self.budget_headroom() as usize);
                    if hold > 0 {
                        let tail = round.split_off(round.len() - hold);
                        self.overhead.delayed += tail.len() as u64;
                        self.held.extend(tail);
                    }
                }
            }
        }
        round
    }

    /// Translates a wire-space cumulative ACK to the real-space cumulative
    /// ACK the server's TCP stack should see.
    pub fn unmap_ack(&self, wire_cum: u64) -> u64 {
        self.map.unmap_cum(wire_cum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn segs(range: std::ops::Range<u64>) -> Vec<Segment> {
        range
            .map(|seq| Segment {
                seq,
                retransmit: false,
            })
            .collect()
    }

    #[test]
    fn no_defenses_is_identity() {
        let spec = DefenseSpec {
            defenses: vec![],
            budget: 1.0,
        };
        let mut st = DefenseState::new(&spec);
        let out = st.on_burst(&segs(0..5), &mut seeded(1));
        assert_eq!(
            out,
            (0..5).map(WirePacket::data).collect::<Vec<_>>(),
            "no transform, no renumbering"
        );
        assert_eq!(st.unmap_ack(5), 5);
        assert_eq!(st.overhead().fraction(), 0.0);
    }

    #[test]
    fn padding_inflates_wire_space_and_unmaps() {
        let spec = DefenseSpec::single(DefenseConfig::Padding { rate: 0.5 }, 10.0);
        let mut st = DefenseState::new(&spec);
        // Round 1: reals 0..4 -> wires 0..4, then 2 dummies at 4,5.
        let out = st.on_burst(&segs(0..4), &mut seeded(1));
        assert_eq!(out.len(), 6);
        assert_eq!(out[4], WirePacket::padding(4));
        assert_eq!(out[5], WirePacket::padding(5));
        // Round 2: reals 4..8 -> wires 6..10 (offset 2).
        let out = st.on_burst(&segs(4..8), &mut seeded(1));
        assert_eq!(out[0], WirePacket::data(6));
        assert_eq!(out[3], WirePacket::data(9));
        // A wire cum-ack covering everything (including dummies) unmaps to
        // the real count.
        assert_eq!(st.unmap_ack(12), 8);
        // A cum-ack inside the dummy gap acknowledges reals before it.
        assert_eq!(st.unmap_ack(5), 4);
        assert_eq!(st.unmap_ack(6), 4);
        assert_eq!(st.unmap_ack(7), 5);
        assert_eq!(st.overhead().dummy, 4);
    }

    #[test]
    fn retransmissions_reuse_their_original_mapping() {
        let spec = DefenseSpec::single(DefenseConfig::Padding { rate: 1.0 }, 10.0);
        let mut st = DefenseState::new(&spec);
        let r1 = st.on_burst(&segs(0..2), &mut seeded(1));
        assert_eq!(r1[0], WirePacket::data(0));
        assert_eq!(r1[1], WirePacket::data(1));
        let _r2 = st.on_burst(&segs(2..4), &mut seeded(1));
        // Retransmit real 0: must map back to wire 0, not the frontier.
        let rt = st.on_burst(&segs(0..1), &mut seeded(1));
        assert_eq!(rt[0], WirePacket::data(0));
    }

    #[test]
    fn jitter_holds_packets_for_the_next_round() {
        let spec = DefenseSpec::single(DefenseConfig::Jitter { delay_prob: 1.0 }, 10.0);
        let mut st = DefenseState::new(&spec);
        let out = st.on_burst(&segs(0..3), &mut seeded(2));
        assert!(out.is_empty(), "everything held: {out:?}");
        assert!(st.has_held());
        // Next round with an empty burst releases them (jitter re-rolls,
        // but budget: 3 delays already spent vs 10*3 allowed -> re-held
        // only while budget lasts; with delay_prob 1.0 and budget 10 they
        // keep being held. Use a zero-prob follow-up spec instead: the
        // held queue drains through on_burst of the *same* state, so
        // model the drain by exhausting the budget.)
        let mut st = DefenseState::new(&DefenseSpec::single(
            DefenseConfig::Jitter { delay_prob: 1.0 },
            1.0,
        ));
        let r1 = st.on_burst(&segs(0..2), &mut seeded(2));
        assert!(r1.len() < 2, "at least one held");
        let r2 = st.on_burst(&[], &mut seeded(3));
        let r3 = st.on_burst(&[], &mut seeded(4));
        assert_eq!(
            r1.len() + r2.len() + r3.len(),
            2,
            "every real packet eventually released"
        );
    }

    #[test]
    fn shaping_caps_each_round() {
        let spec = DefenseSpec::single(DefenseConfig::Shaping { burst_cap: 4 }, 10.0);
        let mut st = DefenseState::new(&spec);
        let r1 = st.on_burst(&segs(0..10), &mut seeded(5));
        assert_eq!(r1.len(), 4);
        let r2 = st.on_burst(&[], &mut seeded(5));
        assert_eq!(r2.len(), 4);
        let r3 = st.on_burst(&[], &mut seeded(5));
        assert_eq!(r3.len(), 2);
        assert!(!st.has_held());
        assert_eq!(st.overhead().delayed, 6 + 2);
    }

    #[test]
    fn budget_zero_disables_every_transform() {
        let spec = DefenseSpec {
            defenses: vec![
                DefenseConfig::Padding { rate: 1.0 },
                DefenseConfig::Jitter { delay_prob: 1.0 },
                DefenseConfig::Shaping { burst_cap: 1 },
            ],
            budget: 0.0,
        };
        let mut st = DefenseState::new(&spec);
        let out = st.on_burst(&segs(0..8), &mut seeded(6));
        assert_eq!(out.len(), 8, "budget 0 passes traffic through");
        assert_eq!(st.overhead().fraction(), 0.0);
    }

    #[test]
    fn budget_caps_overhead_fraction() {
        let spec = DefenseSpec::single(DefenseConfig::Padding { rate: 2.0 }, 0.5);
        let mut st = DefenseState::new(&spec);
        for r in 0..20u64 {
            let _ = st.on_burst(&segs(r * 10..(r + 1) * 10), &mut seeded(7));
        }
        let o = st.overhead();
        assert!(
            o.fraction() <= 0.5 + 1e-9,
            "overhead {} exceeds budget",
            o.fraction()
        );
        assert!(o.dummy > 0, "budget 0.5 still allows dummies");
    }

    #[test]
    fn unmap_is_monotone_under_composed_defenses() {
        let spec = DefenseSpec {
            defenses: vec![
                DefenseConfig::Padding { rate: 0.7 },
                DefenseConfig::Jitter { delay_prob: 0.3 },
            ],
            budget: 2.0,
        };
        let mut st = DefenseState::new(&spec);
        let mut rng = seeded(8);
        for r in 0..30u64 {
            let _ = st.on_burst(&segs(r * 7..(r + 1) * 7), &mut rng);
        }
        let mut prev = 0;
        for wire in 0..400u64 {
            let real = st.unmap_ack(wire);
            assert!(real >= prev, "unmap must be monotone at wire {wire}");
            assert!(real <= 210, "never unmaps past data sent");
            prev = real;
        }
        assert_eq!(st.unmap_ack(u64::MAX), 210, "full ack covers all reals");
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(
            DefenseSpec::single(DefenseConfig::Padding { rate: -1.0 }, 1.0)
                .validate()
                .is_err()
        );
        assert!(
            DefenseSpec::single(DefenseConfig::Jitter { delay_prob: 1.5 }, 1.0)
                .validate()
                .is_err()
        );
        assert!(
            DefenseSpec::single(DefenseConfig::Shaping { burst_cap: 0 }, 1.0)
                .validate()
                .is_err()
        );
        let mut s = DefenseSpec::single(DefenseConfig::Padding { rate: 0.5 }, 0.3);
        assert!(s.validate().is_ok());
        s.budget = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let spec = DefenseSpec {
            defenses: vec![
                DefenseConfig::Padding { rate: 0.25 },
                DefenseConfig::Shaping { burst_cap: 32 },
            ],
            budget: 0.15,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: DefenseSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
