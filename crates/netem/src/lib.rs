//! # caai-netem
//!
//! Network emulation substrate for the CAAI reproduction.
//!
//! The paper's measurement campaign has two network layers:
//!
//! 1. The **emulated environments A and B** (§IV-B) that CAAI imposes on a
//!    web server purely by scheduling its own ACKs — fixed 1.0 s RTT in A, a
//!    0.8 s → 1.0 s step schedule in B ([`schedule`]).
//! 2. The **real Internet path** underneath, which CAAI cannot control:
//!    packet loss in both directions, RTT jitter, duplication ([`path`]).
//!    The paper characterizes these conditions by measuring 5000 popular
//!    web servers (Figs. 4, 10, 11) and replays them with Netem when
//!    collecting the training set; [`conditions`] encodes those empirical
//!    distributions and samples training conditions from them.
//!
//! A third, adversarial layer models the **server's own countermeasures**:
//! [`defense`] implements maybenot-style traffic-analysis defenses
//! (dummy-packet padding, timing jitter, burst shaping) that a server can
//! deploy against CAAI probing, under a configurable overhead budget.
//!
//! [`stats`] provides the piecewise-linear CDF type used throughout, plus
//! the mean-and-95%-confidence-interval estimator from the paper's ACK-loss
//! equation (1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod defense;
pub mod path;
pub mod rng;
pub mod schedule;
pub mod stats;

pub use conditions::{ConditionDb, NetworkCondition};
pub use defense::{DefenseConfig, DefenseOverhead, DefenseSpec, DefenseState};
pub use path::{AckFate, DataFate, PathConfig};
pub use schedule::{EnvironmentId, Phase, RttSchedule};
pub use stats::Cdf;
