//! The uncontrolled Internet path between a CAAI prober and a web server.
//!
//! CAAI defers ACKs to emulate its RTT schedule, but the real path under it
//! still loses, duplicates, and jitters packets (§IV design challenge 2).
//! Three effects are observable in a window trace:
//!
//! * **data-packet loss / duplication** (server → prober): distorts the
//!   per-round window measurement (CAAI still ACKs "as if no loss", so the
//!   server never notices);
//! * **ACK loss** (prober → server): slows the server's per-ACK window
//!   growth — the noise the paper's equation (1) estimates;
//! * **RTT jitter**: a data packet can slip past the prober's round
//!   boundary and be counted one round late.

use crate::conditions::NetworkCondition;
use crate::schedule::RTT_SHORT;
use crate::stats::normal_cdf;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fate of a data packet crossing the server → prober direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataFate {
    /// Arrives in the round it was sent.
    Delivered,
    /// Dropped by the path.
    Lost,
    /// Arrives, plus a spurious copy in the next round.
    Duplicated,
    /// Arrives but only after the prober closed the round (jitter).
    Late,
}

/// Fate of an ACK crossing the prober → server direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AckFate {
    /// Delivered to the server.
    Delivered,
    /// Dropped by the path.
    Lost,
}

/// Stochastic model of one Internet path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathConfig {
    /// Per-packet loss probability, server → prober.
    pub data_loss: f64,
    /// Per-packet loss probability, prober → server (ACKs).
    pub ack_loss: f64,
    /// Per-packet duplication probability, server → prober.
    pub data_dup: f64,
    /// Probability that a delivered data packet lands one measurement round
    /// late due to RTT jitter.
    pub late_prob: f64,
}

impl PathConfig {
    /// A perfect path: the paper's local-testbed baseline for Fig. 3
    /// ("measured on our local testbed with a 0% packet-loss rate").
    pub fn clean() -> Self {
        PathConfig {
            data_loss: 0.0,
            ack_loss: 0.0,
            data_dup: 0.0,
            late_prob: 0.0,
        }
    }

    /// A path with symmetric random loss and no jitter or duplication.
    pub fn lossy(loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        PathConfig {
            data_loss: loss,
            ack_loss: loss,
            data_dup: 0.0,
            late_prob: 0.0,
        }
    }

    /// Derives a path model from a measured network condition, the way the
    /// testbed replays conditions with Netem (§VII-A).
    ///
    /// Loss applies independently in each direction. Jitter is converted to
    /// a late-arrival probability: a packet is late when its extra one-way
    /// delay exceeds the slack between the real RTT and the shortest
    /// emulated RTT (0.8 s), i.e. `P(N(0, σ) > slack)`.
    pub fn from_condition(cond: &NetworkCondition) -> Self {
        let slack = (RTT_SHORT - cond.rtt_mean).max(0.02);
        let late_prob = if cond.rtt_std > 1e-9 {
            (1.0 - normal_cdf(slack / cond.rtt_std)).clamp(0.0, 0.25)
        } else {
            0.0
        };
        PathConfig {
            data_loss: cond.loss_rate,
            ack_loss: cond.loss_rate,
            data_dup: (cond.loss_rate / 10.0).min(0.01),
            late_prob,
        }
    }

    /// Samples the fate of one data packet.
    pub fn data_fate(&self, rng: &mut impl Rng) -> DataFate {
        let u: f64 = rng.random();
        if u < self.data_loss {
            DataFate::Lost
        } else if u < self.data_loss + self.data_dup {
            DataFate::Duplicated
        } else if u < self.data_loss + self.data_dup + self.late_prob {
            DataFate::Late
        } else {
            DataFate::Delivered
        }
    }

    /// Samples the fate of one ACK.
    pub fn ack_fate(&self, rng: &mut impl Rng) -> AckFate {
        if rng.random::<f64>() < self.ack_loss {
            AckFate::Lost
        } else {
            AckFate::Delivered
        }
    }

    /// Validates that all probabilities are in range and jointly feasible.
    pub fn validate(&self) -> Result<(), InvalidPathConfig> {
        let fields = [
            ("data_loss", self.data_loss),
            ("ack_loss", self.ack_loss),
            ("data_dup", self.data_dup),
            ("late_prob", self.late_prob),
        ];
        for (name, v) in fields {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(InvalidPathConfig {
                    field: name,
                    value: v,
                });
            }
        }
        let total = self.data_loss + self.data_dup + self.late_prob;
        if total > 1.0 {
            return Err(InvalidPathConfig {
                field: "data_loss+data_dup+late_prob",
                value: total,
            });
        }
        Ok(())
    }
}

impl Default for PathConfig {
    fn default() -> Self {
        Self::clean()
    }
}

/// Error returned by [`PathConfig::validate`] for out-of-range
/// probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidPathConfig {
    /// Name of the offending field.
    pub field: &'static str,
    /// The invalid value.
    pub value: f64,
}

impl std::fmt::Display for InvalidPathConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "path probability `{}` out of range: {}",
            self.field, self.value
        )
    }
}

impl std::error::Error for InvalidPathConfig {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn clean_path_never_drops() {
        let p = PathConfig::clean();
        let mut rng = seeded(3);
        for _ in 0..1000 {
            assert_eq!(p.data_fate(&mut rng), DataFate::Delivered);
            assert_eq!(p.ack_fate(&mut rng), AckFate::Delivered);
        }
    }

    #[test]
    fn loss_rates_are_respected() {
        let p = PathConfig::lossy(0.2);
        let mut rng = seeded(4);
        let n = 50_000;
        let lost = (0..n)
            .filter(|_| p.data_fate(&mut rng) == DataFate::Lost)
            .count();
        let frac = lost as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn condition_with_no_jitter_has_no_late_packets() {
        let cond = NetworkCondition {
            rtt_mean: 0.1,
            rtt_std: 0.0,
            loss_rate: 0.01,
        };
        let p = PathConfig::from_condition(&cond);
        assert_eq!(p.late_prob, 0.0);
        assert_eq!(p.data_loss, 0.01);
    }

    #[test]
    fn heavy_jitter_produces_late_packets_but_is_capped() {
        let cond = NetworkCondition {
            rtt_mean: 0.7,
            rtt_std: 0.5,
            loss_rate: 0.0,
        };
        let p = PathConfig::from_condition(&cond);
        assert!(p.late_prob > 0.1, "late_prob {}", p.late_prob);
        assert!(p.late_prob <= 0.25, "cap respected: {}", p.late_prob);
    }

    #[test]
    fn validate_catches_bad_probabilities() {
        let mut p = PathConfig::clean();
        p.data_loss = 1.5;
        assert!(p.validate().is_err());
        let mut p = PathConfig::clean();
        p.data_loss = 0.6;
        p.late_prob = 0.6;
        assert!(p.validate().is_err(), "joint mass above 1 rejected");
        assert!(PathConfig::lossy(0.3).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn lossy_rejects_out_of_range() {
        let _ = PathConfig::lossy(2.0);
    }
}
