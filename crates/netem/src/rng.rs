//! Deterministic randomness helpers.
//!
//! Every stochastic component in the workspace takes `&mut impl Rng` so that
//! experiments are reproducible from a single seed; this module centralizes
//! construction.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded standard RNG. Two calls with the same seed produce identical
/// streams, which the integration tests rely on.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent child RNG for a shard of work (e.g. one census
/// worker thread) without correlating the streams.
pub fn child(seed: u64, shard: u64) -> StdRng {
    // SplitMix64-style mixing of the shard index into the seed.
    let mut z = seed ^ shard.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_shards_diverge() {
        let mut a = child(42, 0);
        let mut b = child(42, 1);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 2, "shard streams must not correlate");
    }
}
