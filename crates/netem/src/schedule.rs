//! The two emulated network environments of §IV-B (Fig. 2).
//!
//! CAAI cannot shorten a path's RTT, only lengthen it by deferring its own
//! ACKs, so both environments use RTTs (0.8 s, 1.0 s) longer than nearly
//! every real path (Fig. 4) yet shorter than the initial RTO (§IV-B "Why
//! emulating an RTT of 1.0 s?").
//!
//! * **Environment A** — RTT fixed at 1.0 s before and after the timeout.
//! * **Environment B** — RTT 0.8 s for the first 3 rounds before the
//!   timeout, then 1.0 s; after the timeout 0.8 s for 12 rounds, then
//!   1.0 s. The pre-timeout step exposes RTT-dependent *decreases*
//!   (ILLINOIS, VENO); the post-timeout step exposes RTT-dependent *growth*
//!   (CTCP v2, YEAH).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The long emulated RTT (seconds).
pub const RTT_LONG: f64 = 1.0;
/// The short emulated RTT (seconds).
pub const RTT_SHORT: f64 = 0.8;
/// Environment B switches RTT after this many pre-timeout rounds.
pub const ENV_B_PRE_STEP_ROUND: u32 = 3;
/// Environment B switches RTT after this many post-timeout rounds.
pub const ENV_B_POST_STEP_ROUND: u32 = 12;

/// Which emulated environment a trace-gathering run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvironmentId {
    /// Fixed 1.0 s RTT.
    A,
    /// Stepped 0.8 s → 1.0 s RTT (Fig. 2).
    B,
}

impl fmt::Display for EnvironmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EnvironmentId::A => "A",
            EnvironmentId::B => "B",
        })
    }
}

/// Whether the connection is before or after the emulated timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// From connection establishment until the emulated timeout fires.
    BeforeTimeout,
    /// From the first retransmission after the timeout onward.
    AfterTimeout,
}

/// The emulated RTT schedule of one environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RttSchedule {
    env: EnvironmentId,
}

impl RttSchedule {
    /// Schedule for the given environment.
    pub fn new(env: EnvironmentId) -> Self {
        RttSchedule { env }
    }

    /// The environment this schedule belongs to.
    pub fn environment(&self) -> EnvironmentId {
        self.env
    }

    /// Emulated RTT (seconds) for 1-based round `round` of `phase`.
    pub fn rtt(&self, phase: Phase, round: u32) -> f64 {
        assert!(round >= 1, "rounds are 1-based");
        match self.env {
            EnvironmentId::A => RTT_LONG,
            EnvironmentId::B => match phase {
                Phase::BeforeTimeout => {
                    if round <= ENV_B_PRE_STEP_ROUND {
                        RTT_SHORT
                    } else {
                        RTT_LONG
                    }
                }
                Phase::AfterTimeout => {
                    if round <= ENV_B_POST_STEP_ROUND {
                        RTT_SHORT
                    } else {
                        RTT_LONG
                    }
                }
            },
        }
    }

    /// The full schedule table of Fig. 2, as `(phase, round, rtt)` rows up
    /// to `rounds` rounds per phase.
    pub fn table(&self, rounds: u32) -> Vec<(Phase, u32, f64)> {
        let mut rows = Vec::new();
        for phase in [Phase::BeforeTimeout, Phase::AfterTimeout] {
            for r in 1..=rounds {
                rows.push((phase, r, self.rtt(phase, r)));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_a_is_flat() {
        let s = RttSchedule::new(EnvironmentId::A);
        for phase in [Phase::BeforeTimeout, Phase::AfterTimeout] {
            for r in 1..30 {
                assert_eq!(s.rtt(phase, r), RTT_LONG);
            }
        }
    }

    #[test]
    fn environment_b_steps_after_round_three_before_timeout() {
        let s = RttSchedule::new(EnvironmentId::B);
        assert_eq!(s.rtt(Phase::BeforeTimeout, 1), RTT_SHORT);
        assert_eq!(s.rtt(Phase::BeforeTimeout, 3), RTT_SHORT);
        assert_eq!(s.rtt(Phase::BeforeTimeout, 4), RTT_LONG);
        assert_eq!(s.rtt(Phase::BeforeTimeout, 20), RTT_LONG);
    }

    #[test]
    fn environment_b_steps_after_round_twelve_after_timeout() {
        let s = RttSchedule::new(EnvironmentId::B);
        assert_eq!(s.rtt(Phase::AfterTimeout, 1), RTT_SHORT);
        assert_eq!(s.rtt(Phase::AfterTimeout, 12), RTT_SHORT);
        assert_eq!(s.rtt(Phase::AfterTimeout, 13), RTT_LONG);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn round_zero_is_rejected() {
        let s = RttSchedule::new(EnvironmentId::A);
        let _ = s.rtt(Phase::BeforeTimeout, 0);
    }

    #[test]
    fn table_covers_both_phases() {
        let s = RttSchedule::new(EnvironmentId::B);
        let t = s.table(15);
        assert_eq!(t.len(), 30);
        // Post-timeout row 13 carries the step.
        let row = t
            .iter()
            .find(|(p, r, _)| *p == Phase::AfterTimeout && *r == 13)
            .unwrap();
        assert_eq!(row.2, RTT_LONG);
    }
}
