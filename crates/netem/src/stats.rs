//! Statistical utilities: piecewise-linear empirical CDFs and the
//! mean-plus-95%-confidence-interval estimator of the paper's equation (1).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A piecewise-linear cumulative distribution function.
///
/// Used to encode the paper's measured network-condition distributions
/// (Figs. 4, 10, 11) and the web-population marginals (Figs. 6, 7), to
/// sample from them (inverse-transform), and to print them back out when
/// regenerating the figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// `(value, probability)` knots; probabilities rise from 0 to 1.
    points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Builds a CDF from `(value, cumulative probability)` knots.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two knots are given, if values or probabilities
    /// are not nondecreasing, or if the probabilities do not span [0, 1].
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "a CDF needs at least two knots");
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must be nondecreasing");
            assert!(w[0].1 <= w[1].1, "probabilities must be nondecreasing");
        }
        let first = points.first().expect("nonempty");
        let last = points.last().expect("nonempty");
        assert!(
            first.1 >= 0.0 && (first.1 - 0.0).abs() < 1e-9,
            "first probability must be 0"
        );
        assert!((last.1 - 1.0).abs() < 1e-9, "last probability must be 1");
        Cdf { points }
    }

    /// Builds an empirical CDF from raw samples.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "cannot build a CDF from no samples");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let n = samples.len();
        let mut points = Vec::with_capacity(n + 1);
        points.push((samples[0], 0.0));
        for (i, v) in samples.iter().enumerate() {
            points.push((*v, (i + 1) as f64 / n as f64));
        }
        Cdf { points }
    }

    /// Evaluates `F(x)`: the fraction of the distribution at or below `x`.
    pub fn eval(&self, x: f64) -> f64 {
        let first = self.points[0];
        if x <= first.0 {
            return first.1;
        }
        let last = self.points[self.points.len() - 1];
        if x >= last.0 {
            return last.1;
        }
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if x >= x0 && x <= x1 {
                if x1 == x0 {
                    return p1;
                }
                return p0 + (p1 - p0) * (x - x0) / (x1 - x0);
            }
        }
        last.1
    }

    /// Inverse CDF: the value at cumulative probability `p` (clamped to
    /// [0, 1]).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let first = self.points[0];
        if p <= first.1 {
            return first.0;
        }
        for w in self.points.windows(2) {
            let (x0, p0) = w[0];
            let (x1, p1) = w[1];
            if p >= p0 && p <= p1 {
                if p1 == p0 {
                    return x1;
                }
                return x0 + (x1 - x0) * (p - p0) / (p1 - p0);
            }
        }
        self.points[self.points.len() - 1].0
    }

    /// Draws one sample by inverse transform.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.quantile(rng.random::<f64>())
    }

    /// The knots, for figure regeneration.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Renders the CDF as `(x, F(x))` rows over an even grid, for plots.
    pub fn series(&self, n: usize) -> Vec<(f64, f64)> {
        let lo = self.points[0].0;
        let hi = self.points[self.points.len() - 1].0;
        (0..=n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / n as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Mean and upper edge of the 95% confidence interval: `mean + 1.96·s/√n`,
/// the estimator CAAI's equation (1) applies to per-round ACK loss rates.
/// Returns `None` for an empty slice; with one sample the interval
/// degenerates to the mean.
pub fn mean_plus_ci95(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() == 1 {
        return Some(mean);
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    Some(mean + 1.96 * (var / n).sqrt())
}

/// Sample mean. Returns `None` for an empty slice.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

/// Approximate standard normal CDF Φ (Abramowitz & Stegun 7.1.26 via erf),
/// used to turn RTT jitter into a late-packet probability.
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun formula 7.1.26, |error| ≤ 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn unit_cdf() -> Cdf {
        Cdf::from_points(vec![(0.0, 0.0), (1.0, 1.0)])
    }

    #[test]
    fn eval_interpolates_linearly() {
        let cdf = unit_cdf();
        assert_eq!(cdf.eval(-1.0), 0.0);
        assert_eq!(cdf.eval(0.25), 0.25);
        assert_eq!(cdf.eval(2.0), 1.0);
    }

    #[test]
    fn quantile_is_inverse_of_eval() {
        let cdf = Cdf::from_points(vec![(0.0, 0.0), (0.1, 0.5), (1.0, 0.9), (2.0, 1.0)]);
        for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let x = cdf.quantile(p);
            assert!((cdf.eval(x) - p).abs() < 1e-9, "p={p} x={x}");
        }
    }

    #[test]
    fn samples_follow_the_distribution() {
        let cdf = Cdf::from_points(vec![(0.0, 0.0), (0.1, 0.8), (1.0, 1.0)]);
        let mut rng = seeded(1);
        let n = 20_000;
        let below = (0..n).filter(|_| cdf.sample(&mut rng) <= 0.1).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn from_samples_recovers_quantiles() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let cdf = Cdf::from_samples(samples);
        let median = cdf.quantile(0.5);
        assert!((49.0..=52.0).contains(&median), "median {median}");
    }

    #[test]
    #[should_panic(expected = "at least two knots")]
    fn rejects_single_knot() {
        let _ = Cdf::from_points(vec![(0.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn rejects_decreasing_probabilities() {
        let _ = Cdf::from_points(vec![(0.0, 0.0), (1.0, 0.7), (2.0, 0.5), (3.0, 1.0)]);
    }

    #[test]
    fn ci95_matches_hand_computation() {
        let xs = [0.1, 0.2, 0.3, 0.4];
        let got = mean_plus_ci95(&xs).unwrap();
        // mean 0.25, s = 0.1291, 1.96·s/2 = 0.1265
        assert!((got - 0.3765).abs() < 1e-3, "got {got}");
        assert_eq!(mean_plus_ci95(&[]), None);
        assert_eq!(mean_plus_ci95(&[0.5]), Some(0.5));
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn series_spans_the_support() {
        let cdf = unit_cdf();
        let s = cdf.series(10);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], (0.0, 0.0));
        assert_eq!(s[10], (1.0, 1.0));
    }
}
